//! Minimal vendored stand-in for `serde`, built around a concrete JSON-shaped
//! value model instead of the real crate's generic serializer/deserializer
//! machinery.
//!
//! The workspace builds offline, so the real serde cannot be fetched.  All
//! in-repo uses funnel through `#[derive(Serialize, Deserialize)]` plus
//! `serde_json::{to_string, from_str}`, which a value model covers exactly:
//!
//! * [`Serialize`] renders a value into a [`JsonValue`] tree;
//! * [`Deserialize`] rebuilds a value from a [`JsonValue`] tree;
//! * the companion `serde_derive` shim generates both impls with the same
//!   externally-tagged enum / field-name conventions real serde uses, so the
//!   JSON text on the wire is byte-compatible for the shapes in this repo.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The data model: a JSON document tree.
///
/// Object keys keep insertion order (a `Vec` of pairs, not a map) so that
/// serialized output is deterministic and matches field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if numeric (or null, read as NaN so
    /// non-finite floats round-trip through their `null` encoding).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::I64(i) => Some(*i as f64),
            JsonValue::U64(u) => Some(*u as f64),
            JsonValue::F64(f) => Some(*f),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Integer value, if it fits `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::I64(i) => Some(*i),
            JsonValue::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Unsigned integer value, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::I64(i) => u64::try_from(*i).ok(),
            JsonValue::U64(u) => Some(*u),
            _ => None,
        }
    }

    /// Boolean value, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X while deserializing T" helper used by generated code.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} while deserializing {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a field in an object; generated code calls this.
pub fn field<'a>(
    obj: &'a [(String, JsonValue)],
    name: &str,
    ty: &str,
) -> Result<&'a JsonValue, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{name}` while deserializing {ty}")))
}

/// Wraps a value in the externally-tagged enum representation
/// `{"Variant": value}`; generated code calls this.
pub fn variant(name: &str, value: JsonValue) -> JsonValue {
    JsonValue::Object(vec![(name.to_string(), value)])
}

/// Unpacks `{"Variant": value}`; generated code calls this.
pub fn single_entry<'a>(v: &'a JsonValue, ty: &str) -> Result<(&'a str, &'a JsonValue), Error> {
    match v {
        JsonValue::Object(o) if o.len() == 1 => Ok((o[0].0.as_str(), &o[0].1)),
        _ => Err(Error::expected("single-entry variant object", ty)),
    }
}

impl Serialize for JsonValue {
    fn serialize_value(&self) -> JsonValue {
        self.clone()
    }
}

impl Deserialize for JsonValue {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Renders `self` into the [`JsonValue`] data model.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize_value(&self) -> JsonValue;
}

/// Rebuilds `Self` from the [`JsonValue`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a value tree.
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> JsonValue {
                JsonValue::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> JsonValue {
                let u = *self as u64;
                match i64::try_from(u) {
                    Ok(i) => JsonValue::I64(i),
                    Err(_) => JsonValue::U64(u),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);
unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::Str(self.to_owned())
    }
}

impl Serialize for Arc<str> {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for Arc<str> {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        v.as_str()
            .map(Arc::from)
            .ok_or_else(|| Error::expected("string", "Arc<str>"))
    }
}

impl Serialize for Arc<[String]> {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(|s| JsonValue::Str(s.clone())).collect())
    }
}

impl Deserialize for Arc<[String]> {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::expected("array", "Arc<[String]>"))?;
        let strings: Result<Vec<String>, Error> =
            arr.iter().map(String::deserialize_value).collect();
        Ok(Arc::from(strings?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> JsonValue {
        match self {
            Some(t) => t.serialize_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> JsonValue {
        // Sorted so the rendered text is deterministic regardless of the
        // map's hash order (snapshot encodings compare byte-for-byte).
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by_key(|(k, _)| k.as_str());
        JsonValue::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> JsonValue {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn serialize_value(&self) -> JsonValue {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
        T::deserialize_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize_value(&self) -> JsonValue {
        (**self).serialize_value()
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> JsonValue {
                JsonValue::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &JsonValue) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                let mut it = a.iter();
                Ok(($(
                    $t::deserialize_value(
                        it.next().ok_or_else(|| Error::expected("tuple element", "tuple"))?,
                    )?,
                )+))
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::deserialize_value(&5i64.serialize_value()).unwrap(), 5);
        assert_eq!(
            u64::deserialize_value(&u64::MAX.serialize_value()).unwrap(),
            u64::MAX
        );
        assert_eq!(
            String::deserialize_value(&"hi".serialize_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<i64>::deserialize_value(&None::<i64>.serialize_value()).unwrap(),
            None
        );
        let v: Vec<f64> = vec![1.0, 2.5];
        assert_eq!(
            Vec::<f64>::deserialize_value(&v.serialize_value()).unwrap(),
            v
        );
    }

    #[test]
    fn arc_impls_round_trip() {
        let s: Arc<str> = Arc::from("abc");
        assert_eq!(
            &*Arc::<str>::deserialize_value(&s.serialize_value()).unwrap(),
            "abc"
        );
        let a: Arc<[String]> = Arc::from(vec!["x".to_string(), "y".to_string()]);
        let back = Arc::<[String]>::deserialize_value(&a.serialize_value()).unwrap();
        assert_eq!(&*back, &["x".to_string(), "y".to_string()][..]);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = vec![("a".to_string(), JsonValue::I64(1))];
        assert!(field(&obj, "a", "T").is_ok());
        assert!(field(&obj, "b", "T").is_err());
    }
}

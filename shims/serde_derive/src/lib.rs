//! Dependency-free `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The workspace builds offline, so `syn`/`quote` are unavailable; this macro
//! walks the raw [`proc_macro::TokenStream`] by hand.  It supports exactly
//! the shapes this repo uses:
//!
//! * structs with named fields (honoring `#[serde(skip)]`),
//! * tuple structs (newtypes serialize transparently, larger ones as arrays),
//! * unit structs,
//! * enums with unit / newtype / tuple / struct variants, encoded with real
//!   serde's externally-tagged convention (`"Variant"` or `{"Variant": ...}`).
//!
//! Generics and lifetimes are rejected with a compile-time panic rather than
//! silently miscompiled.

extern crate proc_macro;

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Derives `serde::Serialize` (value-model variant).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, item) = parse_item(input);
    gen_serialize(&name, &item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-model variant).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, item) = parse_item(input);
    gen_deserialize(&name, &item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Item) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected type name, found {t}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored shim");
        }
    }

    let item = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct,
            t => panic!("serde_derive: unexpected struct body {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(parse_variants(g.stream()))
            }
            t => panic!("serde_derive: unexpected enum body {t:?}"),
        },
        k => panic!("serde_derive: cannot derive for item kind `{k}`"),
    };
    (name, item)
}

/// Skips leading attributes (including doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Punct(p2)) = tokens.get(*i) {
                    if p2.as_char() == '!' {
                        *i += 1;
                    }
                }
                *i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Collects attributes in front of a field/variant, returning whether a
/// `#[serde(skip)]` was among them.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for t in args.stream() {
                            if let TokenTree::Ident(a) = &t {
                                match a.to_string().as_str() {
                                    "skip" | "default" => skip = true,
                                    other => panic!(
                                        "serde_derive: unsupported serde attribute `{other}`"
                                    ),
                                }
                            }
                        }
                    }
                }
            }
            *i += 1;
        }
    }
    skip
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = take_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected field name, found {t}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("serde_derive: expected `:` after field `{name}`, found {t}"),
        }
        skip_type(&tokens, &mut i);
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket aware,
/// since e.g. `HashMap<K, V>` has a comma outside any delimiter group).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected variant name, found {t}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn push_named_obj(out: &mut String, fields: &[Field], access: &dyn Fn(&str) -> String) {
    out.push_str(
        "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::JsonValue)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "__o.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::serialize_value({a})));\n",
            n = f.name,
            a = access(&f.name),
        ));
    }
}

fn gen_serialize(name: &str, item: &Item) -> String {
    let mut body = String::new();
    match item {
        Item::NamedStruct(fields) => {
            push_named_obj(&mut body, fields, &|n| format!("&self.{n}"));
            body.push_str("::serde::JsonValue::Object(__o)\n");
        }
        Item::TupleStruct(0) | Item::UnitStruct => {
            body.push_str("::serde::JsonValue::Null\n");
        }
        Item::TupleStruct(1) => {
            body.push_str("::serde::Serialize::serialize_value(&self.0)\n");
        }
        Item::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize_value(&self.{k})"))
                .collect();
            body.push_str(&format!(
                "::serde::JsonValue::Array(vec![{}])\n",
                elems.join(", ")
            ));
        }
        Item::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => body.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::JsonValue::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(1) => body.push_str(&format!(
                        "{name}::{vn}(__f0) => \
                         ::serde::variant(\"{vn}\", ::serde::Serialize::serialize_value(__f0)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::serialize_value(__f{k})"))
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::variant(\"{vn}\", \
                             ::serde::JsonValue::Array(vec![{}])),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    format!("{n}: __b_{n}", n = f.name)
                                }
                            })
                            .collect();
                        let mut inner = String::new();
                        push_named_obj(&mut inner, fields, &|n| format!("__b_{n}"));
                        body.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} \
                             ::serde::variant(\"{vn}\", ::serde::JsonValue::Object(__o)) }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::JsonValue {{\n{body}}}\n}}\n"
    )
}

fn named_ctor(name: &str, path_suffix: &str, fields: &[Field], obj: &str, ty: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default()", f.name)
            } else {
                format!(
                    "{n}: ::serde::Deserialize::deserialize_value(\
                     ::serde::field({obj}, \"{n}\", \"{ty}\")?)?",
                    n = f.name
                )
            }
        })
        .collect();
    format!("{name}{path_suffix} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(name: &str, item: &Item) -> String {
    let mut body = String::new();
    match item {
        Item::NamedStruct(fields) => {
            body.push_str(&format!(
                "let __o = match __v.as_object() {{ Some(o) => o, None => return \
                 ::std::result::Result::Err(::serde::Error::expected(\"object\", \"{name}\")) }};\n"
            ));
            body.push_str(&format!(
                "::std::result::Result::Ok({})\n",
                named_ctor(name, "", fields, "__o", name)
            ));
        }
        Item::TupleStruct(0) | Item::UnitStruct => {
            let ctor = if matches!(item, Item::UnitStruct) {
                name.to_string()
            } else {
                format!("{name}()")
            };
            body.push_str(&format!("::std::result::Result::Ok({ctor})\n"));
        }
        Item::TupleStruct(1) => {
            body.push_str(&format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize_value(__v)?))\n"
            ));
        }
        Item::TupleStruct(n) => {
            body.push_str(&format!(
                "let __a = match __v.as_array() {{ Some(a) => a, None => return \
                 ::std::result::Result::Err(::serde::Error::expected(\"array\", \"{name}\")) }};\n\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::expected(\"{n}-element array\", \"{name}\")); }}\n"
            ));
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_value(&__a[{k}])?"))
                .collect();
            body.push_str(&format!(
                "::std::result::Result::Ok({name}({}))\n",
                elems.join(", ")
            ));
        }
        Item::Enum(variants) => {
            // Unit variants arrive as bare strings.
            body.push_str("if let ::serde::JsonValue::Str(__s) = __v {\n");
            body.push_str("return match __s.as_str() {\n");
            for v in variants {
                if matches!(v.shape, Shape::Unit) {
                    body.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            body.push_str(&format!(
                "_ => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"known unit variant\", \"{name}\")),\n}};\n}}\n"
            ));
            // Everything else arrives as {"Variant": content}.
            body.push_str(&format!(
                "let (__tag, __content) = ::serde::single_entry(__v, \"{name}\")?;\n"
            ));
            body.push_str("match __tag {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => body.push_str(&format!(
                        "\"{vn}\" => {{ let _ = __content; \
                         ::std::result::Result::Ok({name}::{vn}) }}\n"
                    )),
                    Shape::Tuple(1) => body.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(__content)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize_value(&__a[{k}])?"))
                            .collect();
                        body.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = match __content.as_array() {{ Some(a) => a, None => \
                             return ::std::result::Result::Err(::serde::Error::expected(\
                             \"array\", \"{name}::{vn}\")) }};\n\
                             if __a.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::expected(\"{n}-element array\", \"{name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let ty = format!("{name}::{vn}");
                        body.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __o = match __content.as_object() {{ Some(o) => o, None => \
                             return ::std::result::Result::Err(::serde::Error::expected(\
                             \"object\", \"{ty}\")) }};\n\
                             ::std::result::Result::Ok({})\n}}\n",
                            named_ctor(name, &format!("::{vn}"), fields, "__o", &ty)
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "_ => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"known variant\", \"{name}\")),\n}}\n"
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::JsonValue) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}}}\n}}\n"
    )
}

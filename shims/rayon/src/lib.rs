//! Minimal vendored stand-in for the `rayon` surface used by this workspace:
//!
//! * `slice.par_chunks_mut(n).for_each(..)` / `.enumerate().for_each(..)` —
//!   the drnn GEMM row-band parallelism;
//! * `(0..n).into_par_iter().for_each(..)` / `.map(..).collect::<Vec<_>>()` —
//!   index-range fan-out for batch evaluation and per-model experiments;
//! * `parallel_for(count, f)` — the primitive both are built on.
//!
//! Unlike the previous incarnation (which spawned a `thread::scope` and a
//! Mutex-per-item slot queue on every call), work now runs on a single
//! **persistent worker pool**: `available_parallelism() - 1` daemon threads
//! parked on a condvar, woken per job, claiming indices from an atomic chunk
//! cursor.  The submitting thread participates in the job, so small fan-outs
//! cost one wake/park round-trip instead of N thread spawns.
//!
//! Nested parallelism is handled by flattening: a task that itself calls
//! into this module runs its inner loop serially on the current thread
//! (matching rayon's "already inside the pool" behaviour closely enough for
//! GEMM-inside-batch-parallel workloads, without oversubscription).

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Persistent pool
// ---------------------------------------------------------------------------

thread_local! {
    /// True while this thread is executing pool work (worker threads always;
    /// the submitting thread while its job is live).  Nested `run` calls on
    /// such a thread execute inline instead of deadlocking on the job slot.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// `&dyn Fn(usize)` with its lifetime erased.  Sound because `run` does not
/// return until every index has been executed (`pending == 0`), so the
/// borrow outlives all uses.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One fan-out job: `count` indices claimed via `cursor`.
struct Job {
    task: TaskPtr,
    count: usize,
    cursor: AtomicUsize,
    pending: AtomicUsize,
    panicked: AtomicBool,
}

impl Job {
    /// Claims and runs indices until the cursor drains.  Panics in the task
    /// are caught and recorded so worker threads survive; the submitter
    /// re-raises after the job completes.
    fn work(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                return;
            }
            let task = unsafe { &*self.task.0 };
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            self.pending.fetch_sub(1, Ordering::Release);
        }
    }

    fn done(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }
}

struct Slot {
    job: Option<Arc<Job>>,
    epoch: u64,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// Submitters wait here for job completion / slot availability.
    done_cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    threads: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                job: None,
                epoch: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        // N-1 workers; the submitting thread is the N-th.
        for _ in 1..threads {
            let sh = shared.clone();
            std::thread::Builder::new()
                .name("rayon-shim-worker".into())
                .spawn(move || worker_loop(sh))
                .expect("spawn pool worker");
        }
        Pool { shared, threads }
    })
}

fn worker_loop(shared: Arc<Shared>) {
    IN_POOL.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if slot.epoch != seen {
                    seen = slot.epoch;
                    if let Some(j) = slot.job.clone() {
                        break j;
                    }
                }
                slot = shared.work_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.work();
        if job.done() {
            // Lock-then-notify so a submitter between its final pending
            // check and its wait cannot miss the wakeup.
            drop(shared.slot.lock().unwrap_or_else(|e| e.into_inner()));
            shared.done_cv.notify_all();
        }
    }
}

/// The number of threads fan-out work is spread across.
pub fn current_num_threads() -> usize {
    pool().threads
}

/// Runs `task(i)` for every `i in 0..count`, distributing across the pool.
/// Returns when all indices have executed.  Panics (once) if any task
/// panicked.
fn run(count: usize, task: &(dyn Fn(usize) + Sync)) {
    if count == 0 {
        return;
    }
    let serial = count == 1 || IN_POOL.with(|f| f.get()) || pool().threads <= 1;
    if serial {
        for i in 0..count {
            task(i);
        }
        return;
    }

    let shared = &pool().shared;
    let job = Arc::new(Job {
        task: TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        }),
        count,
        cursor: AtomicUsize::new(0),
        pending: AtomicUsize::new(count),
        panicked: AtomicBool::new(false),
    });

    {
        let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        // Another thread may have a job in flight; queue behind it.
        while slot.job.is_some() {
            slot = shared.done_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        slot.job = Some(job.clone());
        slot.epoch = slot.epoch.wrapping_add(1);
        shared.work_cv.notify_all();
    }

    // Participate, flattening any nested parallelism onto this thread.
    IN_POOL.with(|f| f.set(true));
    job.work();
    IN_POOL.with(|f| f.set(false));

    {
        let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        while !job.done() {
            slot = shared.done_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        slot.job = None;
    }
    // Wake submitters queued on the slot.
    shared.done_cv.notify_all();

    if job.panicked.load(Ordering::Relaxed) {
        panic!("a parallel task panicked");
    }
}

/// Public index fan-out primitive: `f(i)` for every `i in 0..count`.
pub fn parallel_for<F: Fn(usize) + Sync>(count: usize, f: F) {
    run(count, &f);
}

/// Raw pointer that may cross threads (each index touches disjoint data).
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor that forces closures to capture the whole wrapper (field-
    /// precise capture of `.0` alone would reintroduce the raw pointer's
    /// `!Sync`).
    fn get(self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Slice surface: par_chunks_mut
// ---------------------------------------------------------------------------

/// Entry point trait, mirroring `rayon::prelude::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into parallelizable mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: chunk size must be non-zero");
        ParChunksMut { data: self, size }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T: Send> {
    data: &'a mut [T],
    size: usize,
}

fn for_each_chunk<T: Send, F>(data: &mut [T], size: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Send + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunks = len.div_ceil(size);
    let base = SendPtr(data.as_mut_ptr());
    run(chunks, &|i| {
        let start = i * size;
        let end = (start + size).min(len);
        // SAFETY: indices are claimed exactly once, so chunk ranges are
        // disjoint; the borrow of `data` outlives `run`.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, chunk);
    });
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            data: self.data,
            size: self.size,
        }
    }

    /// Runs `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        for_each_chunk(self.data, self.size, |_, c| f(c));
    }
}

/// Enumerated parallel iterator over mutable chunks.
pub struct EnumerateChunksMut<'a, T: Send> {
    data: &'a mut [T],
    size: usize,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Runs `f` on every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Send + Sync,
    {
        for_each_chunk(self.data, self.size, |i, c| f((i, c)));
    }
}

// ---------------------------------------------------------------------------
// Range surface: into_par_iter
// ---------------------------------------------------------------------------

/// Mirrors `rayon::iter::IntoParallelIterator` for the types we need.
pub trait IntoParallelIterator {
    /// The parallel iterator.
    type Iter;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// Parallel iterator over a `usize` index range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParRange {
    /// Runs `f` on every index, in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let start = self.start;
        run(self.end - self.start, &|i| f(start + i));
    }

    /// Maps every index through `f`; terminate with
    /// [`collect`](ParRangeMap::collect).
    pub fn map<R: Send, F: Fn(usize) -> R + Sync>(self, f: F) -> ParRangeMap<R, F> {
        ParRangeMap {
            start: self.start,
            end: self.end,
            f,
            _r: std::marker::PhantomData,
        }
    }
}

/// A mapped parallel range, pending collection.
pub struct ParRangeMap<R, F> {
    start: usize,
    end: usize,
    f: F,
    _r: std::marker::PhantomData<R>,
}

impl<R: Send, F: Fn(usize) -> R + Sync> ParRangeMap<R, F> {
    /// Evaluates the map in parallel, preserving index order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.end - self.start;
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let base = SendPtr(out.as_mut_ptr());
        let start = self.start;
        let f = &self.f;
        run(n, &|i| {
            let v = f(start + i);
            // SAFETY: each index written exactly once; overwriting `None`
            // needs no drop.
            unsafe { std::ptr::write(base.get().add(i), Some(v)) };
        });
        out.into_iter()
            .map(|v| v.expect("parallel map slot unfilled"))
            .collect()
    }
}

/// Mirrors `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn enumerated_chunks_see_their_own_rows() {
        let mut data = vec![0usize; 64];
        data.par_chunks_mut(8)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|v| *v = i));
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 8);
        }
    }

    #[test]
    fn plain_for_each_touches_every_chunk() {
        let mut data = vec![1i64; 100];
        data.par_chunks_mut(7).for_each(|chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn uneven_tail_chunk_is_processed() {
        let mut data = [0u8; 10];
        data.par_chunks_mut(4).for_each(|chunk| chunk.fill(1));
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn par_range_for_each_covers_every_index() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        (0..100).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let out: Vec<usize> = (3..40).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out.len(), 37);
        for (k, v) in out.iter().enumerate() {
            assert_eq!(*v, (k + 3) * (k + 3));
        }
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // deliberately tests an inverted range
    fn empty_range_is_a_noop() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        (7..3).into_par_iter().for_each(|_| panic!("must not run"));
    }

    #[test]
    fn nested_parallelism_flattens_instead_of_deadlocking() {
        let total = AtomicUsize::new(0);
        (0..8).into_par_iter().for_each(|_| {
            (0..8).into_par_iter().for_each(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn sequential_jobs_reuse_the_pool() {
        for round in 0..50 {
            let mut data = vec![0usize; 97];
            data.par_chunks_mut(5)
                .for_each(|chunk| chunk.iter_mut().for_each(|v| *v = round));
            assert!(data.iter().all(|&v| v == round));
        }
    }

    #[test]
    fn task_panic_propagates_to_submitter() {
        let caught = std::panic::catch_unwind(|| {
            (0..16).into_par_iter().for_each(|i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
        // Pool must still be usable afterwards.
        let out: Vec<usize> = (0..10).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out[9], 10);
    }
}

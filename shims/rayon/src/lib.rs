//! Minimal vendored stand-in for the `rayon` surface used by the drnn GEMM
//! kernel: `slice.par_chunks_mut(n).enumerate().for_each(f)`.
//!
//! Work is distributed over `std::thread::scope` workers pulling chunks from
//! a shared cursor — no work stealing, but row-parallel GEMM has uniform
//! chunk costs, so a striped queue is a close substitute.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Entry point trait, mirroring `rayon::prelude::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into parallelizable mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: chunk size must be non-zero");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            chunks: self.chunks,
        }
    }

    /// Runs `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Send + Sync,
    {
        run_parallel(self.chunks, &|chunk| f(chunk));
    }
}

/// Enumerated parallel iterator over mutable chunks.
pub struct EnumerateChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Send + Sync,
    {
        let indexed: Vec<(usize, &'a mut [T])> = self.chunks.into_iter().enumerate().collect();
        run_parallel(indexed, &f);
    }
}

fn run_parallel<I: Send, F: Fn(I) + Send + Sync + ?Sized>(items: Vec<I>, f: &F) {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    // Option slots + an atomic cursor: each worker claims the next
    // unprocessed item, which keeps all workers busy without slicing the
    // input into uneven static stripes.
    let slots: Vec<std::sync::Mutex<Option<I>>> = items
        .into_iter()
        .map(|i| std::sync::Mutex::new(Some(i)))
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(idx) else { break };
                let item = slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("item claimed twice");
                f(item);
            });
        }
    });
}

/// Mirrors `rayon::prelude`.
pub mod prelude {
    pub use super::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn enumerated_chunks_see_their_own_rows() {
        let mut data = vec![0usize; 64];
        data.par_chunks_mut(8)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|v| *v = i));
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 8);
        }
    }

    #[test]
    fn plain_for_each_touches_every_chunk() {
        let mut data = vec![1i64; 100];
        data.par_chunks_mut(7).for_each(|chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn uneven_tail_chunk_is_processed() {
        let mut data = [0u8; 10];
        data.par_chunks_mut(4).for_each(|chunk| chunk.fill(1));
        assert!(data.iter().all(|&v| v == 1));
    }
}

//! Minimal vendored stand-in for the `rand` 0.8 call surface used by this
//! workspace: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! and `seq::SliceRandom::shuffle`.
//!
//! The generator is a splitmix64 stream — not the real crate's ChaCha12, so
//! sequences differ from upstream rand, but every consumer in this repo
//! seeds explicitly and only relies on determinism and reasonable
//! uniformity, both of which splitmix64 provides.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministically seedable generator.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard PRNG (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A 53-bit uniform draw in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named-generator module, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u: usize = rng.gen_range(0..10usize);
            assert!(u < 10);
            let f: f64 = rng.gen_range(-1.5..=1.5);
            assert!((-1.5..=1.5).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice unchanged"
        );
    }
}

//! Minimal vendored stand-in for the `crossbeam::channel` API surface used
//! by the threaded runtime: bounded/unbounded MPMC channels with timeout
//! send/receive and disconnect semantics, built on `Mutex` + `Condvar`.
//!
//! Not as fast as real crossbeam's lock-free queues, but semantics match:
//! `send_timeout` blocks while full, `recv_timeout` blocks while empty, and
//! dropping all peers on one side disconnects the other.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Receivers currently parked on `not_empty` — senders only touch
        /// the condvar when someone is actually waiting, so the uncontended
        /// fast path is lock/push/unlock with no wakeup call.
        waiting_recv: usize,
        /// Senders currently parked on `not_full` (bounded channels only).
        waiting_send: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::send_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The channel stayed full for the whole timeout; the value is
        /// handed back.
        Timeout(T),
        /// All receivers are gone; the value is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The channel stayed empty for the whole timeout.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// `cap == 0` (a rendezvous channel in real crossbeam) is clamped to 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                waiting_recv: 0,
                waiting_send: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self.send_deadline(value, None) {
                Ok(()) => Ok(()),
                Err(SendTimeoutError::Disconnected(v)) => Err(SendError(v)),
                Err(SendTimeoutError::Timeout(_)) => unreachable!("no deadline"),
            }
        }

        /// Sends `value`, blocking at most `timeout` while the channel is
        /// full.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            self.send_deadline(value, Some(Instant::now() + timeout))
        }

        fn send_deadline(
            &self,
            value: T,
            deadline: Option<Instant>,
        ) -> Result<(), SendTimeoutError<T>> {
            let mut inner = self.0.lock();
            loop {
                if inner.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if self.0.cap.is_none_or(|cap| inner.queue.len() < cap) {
                    inner.queue.push_back(value);
                    if inner.waiting_recv > 0 {
                        self.0.not_empty.notify_one();
                    }
                    return Ok(());
                }
                inner = match deadline {
                    None => {
                        inner.waiting_send += 1;
                        let mut g = self
                            .0
                            .not_full
                            .wait(inner)
                            .unwrap_or_else(|e| e.into_inner());
                        g.waiting_send -= 1;
                        g
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(SendTimeoutError::Timeout(value));
                        }
                        inner.waiting_send += 1;
                        let mut g = self
                            .0
                            .not_full
                            .wait_timeout(inner, d - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                        g.waiting_send -= 1;
                        g
                    }
                };
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.0.lock();
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                // Wake receivers so they observe the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking at most `timeout` while the channel
        /// is empty.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.0.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    if inner.waiting_send > 0 {
                        self.0.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                inner.waiting_recv += 1;
                let mut g = self
                    .0
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
                g.waiting_recv -= 1;
                inner = g;
            }
        }

        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            let mut inner = self.0.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    if inner.waiting_send > 0 {
                        self.0.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                inner.waiting_recv += 1;
                let mut g = self
                    .0
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
                g.waiting_recv -= 1;
                inner = g;
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.lock();
            if let Some(v) = inner.queue.pop_front() {
                if inner.waiting_send > 0 {
                    self.0.not_full.notify_one();
                }
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.0.lock();
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                // Wake senders so they observe the disconnect.
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn bounded_blocks_then_times_out() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            match tx.send_timeout(3, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(3)) => {}
                other => panic!("expected timeout, got {other:?}"),
            }
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            tx.send_timeout(3, Duration::from_millis(10)).unwrap();
            assert_eq!(rx.len(), 2);
        }

        #[test]
        fn disconnect_propagates_both_ways() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(matches!(tx.send(1), Err(SendError(1))));

            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = bounded::<usize>(4);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv_timeout(Duration::from_secs(1)) {
                got.push(v);
                if got.len() == 100 {
                    break;
                }
            }
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}

//! Minimal vendored stand-in for `serde_json`: prints and parses the serde
//! shim's [`JsonValue`] data model as JSON text.
//!
//! Floats are printed with Rust's shortest round-trip formatting (`{:?}`),
//! which is what the real crate's `float_roundtrip` feature guarantees;
//! non-finite floats become `null`, matching real serde_json.

use serde::{Deserialize, JsonValue, Serialize};

pub use serde::Error;

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize_value(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::I64(i) => out.push_str(&i.to_string()),
        JsonValue::U64(u) => out.push_str(&u.to_string()),
        JsonValue::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => write_escaped(s, out),
        JsonValue::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(e, out);
            }
            out.push(']');
        }
        JsonValue::Object(o) => {
            out.push('{');
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(e, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`JsonValue`].
pub fn parse(s: &str) -> Result<JsonValue, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(JsonValue::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            let value = self.value()?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.literal("\\u")
                                    .map_err(|_| self.err("expected low surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::U64(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "42", "-7", "3.25", "1e300", "\"hi\"",
        ] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out);
            assert_eq!(parse(&out).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"a":[1,2.5,null],"b":{"nested":"x\ny"},"c":[]}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, text.replace(" ", ""));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), JsonValue::Str("A".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), JsonValue::Str("😀".into()));
    }

    #[test]
    fn shortest_float_formatting_round_trips() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456789.123456] {
            let mut out = String::new();
            write_value(&JsonValue::F64(f), &mut out);
            match parse(&out).unwrap() {
                JsonValue::F64(back) => assert_eq!(back, f),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }
}

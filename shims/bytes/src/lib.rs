//! Minimal vendored stand-in for `bytes`: an immutable, cheaply-cloneable
//! byte buffer backed by `Arc<[u8]>`.
//!
//! Unlike the real crate this always owns (or shares) its storage — no
//! zero-copy slicing — which is all the tuple payloads in this workspace
//! need.  Serde support is built in (the real crate gates it behind a
//! feature): a buffer serializes as a JSON array of numbers.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl serde::Serialize for Bytes {
    fn serialize_value(&self) -> serde::JsonValue {
        serde::JsonValue::Array(
            self.0
                .iter()
                .map(|&b| serde::JsonValue::I64(b as i64))
                .collect(),
        )
    }
}

impl serde::Deserialize for Bytes {
    fn deserialize_value(v: &serde::JsonValue) -> Result<Self, serde::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| serde::Error::expected("byte array", "Bytes"))?;
        let bytes: Result<Vec<u8>, serde::Error> = arr
            .iter()
            .map(|e| {
                e.as_u64()
                    .and_then(|u| u8::try_from(u).ok())
                    .ok_or_else(|| serde::Error::expected("byte", "Bytes"))
            })
            .collect();
        Ok(Bytes::from(bytes?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
        let s = Bytes::from_static(b"xyz");
        assert_eq!(s.to_vec(), b"xyz");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![9u8; 1000]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize, Serialize};
        let b = Bytes::from(vec![0u8, 127, 255]);
        let back = Bytes::deserialize_value(&b.serialize_value()).unwrap();
        assert_eq!(b, back);
    }
}

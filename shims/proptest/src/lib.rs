//! Minimal vendored stand-in for `proptest`.
//!
//! The workspace builds offline, so the real crate cannot be fetched.  This
//! shim keeps the call surface the in-repo property tests use — `proptest!`,
//! `prop_oneof!`, `prop_assert*!`, `Strategy` combinators, range/collection/
//! regex-subset strategies — with a simpler execution model: each test runs
//! [`CASES`] deterministic random cases (seeded from the test name), and a
//! failing case panics with the generated inputs unshrunk.

use std::ops::{Range, RangeInclusive};

/// Number of random cases per property test.
pub const CASES: u64 = 64;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted 1000 attempts without satisfying: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<T, S: Strategy<Value = T>> DynStrategy<T> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> T {
        self.gen_value(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].gen_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type for `Self`.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for a primitive; see [`Arbitrary`].
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_impl {
    ($t:ty, $rng:ident, $gen:expr) => {
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn gen_value(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    };
}

arbitrary_impl!(bool, rng, rng.next_u64() & 1 == 1);
arbitrary_impl!(i64, rng, rng.next_u64() as i64);
arbitrary_impl!(u64, rng, rng.next_u64());
arbitrary_impl!(u32, rng, rng.next_u64() as u32);
arbitrary_impl!(u16, rng, rng.next_u64() as u16);
arbitrary_impl!(u8, rng, rng.next_u64() as u8);
arbitrary_impl!(usize, rng, rng.next_u64() as usize);
// Raw bit reinterpretation on purpose: NaNs, infinities and subnormals are
// exactly the f64s a property test wants to see.
arbitrary_impl!(f64, rng, f64::from_bits(rng.next_u64()));

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// String literals act as strategies for the regex subset
/// `[class]{m,n}` (e.g. `"[a-z]{1,16}"`, `"[ -~]{0,12}"`).
impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_simple_regex(self);
        let len = rng.usize_in(lo, hi);
        (0..len)
            .map(|_| alphabet[(rng.next_u64() % alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_simple_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pattern.chars().collect();
    let unsupported = || -> ! {
        panic!("string strategy shim only supports `[class]{{m,n}}` patterns, got {pattern:?}")
    };
    if chars.first() != Some(&'[') {
        unsupported();
    }
    let close = chars
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| unsupported());
    let mut alphabet = Vec::new();
    let mut i = 1;
    while i < close {
        if i + 2 < close && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                unsupported();
            }
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        unsupported();
    }
    let rest: String = chars[close + 1..].iter().collect();
    if !(rest.starts_with('{') && rest.ends_with('}')) {
        unsupported();
    }
    let body = &rest[1..rest.len() - 1];
    let (lo, hi) = match body.split_once(',') {
        Some((l, h)) => (
            l.trim().parse().unwrap_or_else(|_| unsupported()),
            h.trim().parse().unwrap_or_else(|_| unsupported()),
        ),
        None => {
            let n = body.trim().parse().unwrap_or_else(|_| unsupported());
            (n, n)
        }
    };
    (alphabet, lo, hi)
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    let ($($p,)+) =
                        ($( $crate::Strategy::gen_value(&($s), &mut __rng), )+);
                    $body
                }
            }
        )*
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.5f64..2.5, z in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0i64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }

        #[test]
        fn string_pattern_subset(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0i64),
            (1i64..100).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0 || (v % 2 == 0 && (2..200).contains(&v)));
        }

        #[test]
        fn flat_map_links_dimensions(pair in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0f64..1.0, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn filter_keeps_predicate() {
        let strat = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = super::TestRng::for_case("filter", 0);
        for _ in 0..200 {
            assert_eq!(strat.gen_value(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let strat = 0u64..u64::MAX;
        let mut a = super::TestRng::for_case("x", 3);
        let mut b = super::TestRng::for_case("x", 3);
        assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
    }
}

//! Minimal vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The workspace builds offline, so the real crate cannot be fetched from a
//! registry.  This shim keeps the same call surface (`lock()` / `read()` /
//! `write()` returning guards directly, no poisoning) on top of the standard
//! library primitives.  Poisoned locks are recovered transparently: a
//! panicked holder does not poison data structures here any more than it
//! would under the real parking_lot.

pub use std::sync::MutexGuard;
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `t`.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; `read()` / `write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `t`.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

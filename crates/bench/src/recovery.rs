//! Fault-recovery benchmark (`rt_recovery`): kill a stateful bolt mid-run
//! under each recovery guarantee and measure how checkpointed state comes
//! back.
//!
//! One arm per [`RecoveryMode`] runs a paced spout into a checkpointed
//! counting bolt, panics the bolt mid-stream, and extracts from the run's
//! journal and report:
//!
//! * **recovery time** — wall clock from the injected panic to the restarted
//!   task's `state_restored` journal event,
//! * **restore latency** — snapshot load + decode + input-log re-execution,
//! * **post-fault throughput dip** — acked-tuples/s in the 250 ms after the
//!   panic versus the 250 ms before it,
//! * **result error** — the operator's final count versus the emitted
//!   stream, checked against what each guarantee promises.
//!
//! A final *recompute* arm rebuilds the same state factory-fresh: it replays
//! the full pre-crash input prefix through an identical topology with
//! checkpoints off.  The CI gate ([`check_recovery_gate`]) requires the
//! exactly-once restore to beat that recompute, with anti-vacuity floors on
//! both sides so a trivially small snapshot or a trivially cheap recompute
//! voids the comparison instead of passing it.
//!
//! Results are written as `BENCH_recovery.json` (`bench_recovery/v1`) at the
//! repository root by the shared `microbench` entry point.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput, TopologyContext};
use dsdps::config::EngineConfig;
use dsdps::rt::{
    self, RecoveryMode, RtConfig, RtFault, RtFaultPlan, SnapshotKind, StateSnapshot,
    StatefulComponent,
};
use dsdps::topology::TopologyBuilder;
use dsdps::tuple::{Tuple, Value};

/// Measurements of one fault arm (one run under one recovery guarantee).
pub struct RecoveryArm {
    /// Guarantee name: `"exactly_once_effect"`, `"at_least_once"` or
    /// `"approximate"`.
    pub mode: &'static str,
    /// Wall clock from the injected panic to the restarted task's
    /// `state_restored` event, milliseconds (journal clock).
    pub recovery_ms: f64,
    /// Restore latency (snapshot load + decode + input-log re-execution),
    /// milliseconds; max over the run's restores.
    pub restore_ms: f64,
    /// Snapshot restores performed by restarted incarnations.
    pub restores: u64,
    /// Checkpoints deposited over the run.
    pub checkpoints: u64,
    /// Serialized snapshot bytes deposited over the run.
    pub snapshot_bytes: u64,
    /// Acked tuples/s over the 250 ms before the fault.
    pub pre_fault_rate: f64,
    /// Throughput drop over the 250 ms after the fault, as a percentage of
    /// the pre-fault rate (negative means the post-fault burst was faster).
    pub post_fault_dip_pct: f64,
    /// |operator count − emitted stream| as a percentage of the stream.
    pub result_error_pct: f64,
    /// Tuples the approximate guarantee reported as skipped (its error
    /// bound); zero under the other guarantees.
    pub approx_skipped: u64,
    /// Whether the final result respects the mode's promise: exact count
    /// for exactly-once, no loss for at-least-once, loss within
    /// `approx_skipped` for approximate.
    pub within_bound: bool,
    /// Operator count carried by the restored snapshot — the state the
    /// recompute arm has to rebuild from scratch.
    pub restored_count: u64,
}

/// Collected measurements of one `rt_recovery` run: three fault arms plus
/// the factory-fresh recompute reference.
pub struct RecoveryResults {
    /// `"smoke"` or `"full"`.
    pub mode: &'static str,
    /// One entry per recovery guarantee, in enum order.
    pub arms: Vec<RecoveryArm>,
    /// Input prefix the recompute arm replayed (the exactly-once arm's
    /// restored count).
    pub recompute_prefix: u64,
    /// Wall clock for the recompute arm to re-ack that whole prefix through
    /// a fresh checkpoint-free topology, milliseconds.
    pub recompute_rebuild_ms: f64,
    /// Average serialized snapshot size per checkpoint with the default
    /// binary encoding (the exactly-once arm's deposits).
    pub snapshot_binary_bytes_per_ckpt: f64,
    /// Average serialized snapshot size per checkpoint with the JSON
    /// fallback ([`RtConfig::with_json_snapshots`]) on an otherwise
    /// identical exactly-once run.
    pub snapshot_json_bytes_per_ckpt: f64,
}

impl RecoveryResults {
    /// Percentage by which the binary snapshot encoding shrinks the average
    /// checkpoint against the JSON fallback.
    pub fn snapshot_reduction_pct(&self) -> f64 {
        if self.snapshot_json_bytes_per_ckpt <= 0.0 {
            return 0.0;
        }
        (1.0 - self.snapshot_binary_bytes_per_ckpt / self.snapshot_json_bytes_per_ckpt) * 100.0
    }
}

impl RecoveryResults {
    /// Serializes the results as a stable, machine-readable JSON document
    /// (`bench_recovery/v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": \"bench_recovery/v1\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"arms\": {\n");
        for (i, a) in self.arms.iter().enumerate() {
            let sep = if i + 1 == self.arms.len() { "" } else { "," };
            s.push_str(&format!(
                "    \"{}\": {{\n      \"recovery_ms\": {:.2},\n      \
                 \"restore_ms\": {:.3},\n      \"restores\": {},\n      \
                 \"checkpoints\": {},\n      \"snapshot_bytes\": {},\n      \
                 \"pre_fault_rate_tuples_per_s\": {:.1},\n      \
                 \"post_fault_dip_pct\": {:.1},\n      \
                 \"result_error_pct\": {:.3},\n      \
                 \"approx_skipped\": {},\n      \"within_bound\": {},\n      \
                 \"restored_count\": {}\n    }}{sep}\n",
                a.mode,
                a.recovery_ms,
                a.restore_ms,
                a.restores,
                a.checkpoints,
                a.snapshot_bytes,
                a.pre_fault_rate,
                a.post_fault_dip_pct,
                a.result_error_pct,
                a.approx_skipped,
                a.within_bound,
                a.restored_count,
            ));
        }
        s.push_str("  },\n  \"recompute\": {\n");
        s.push_str(&format!(
            "    \"prefix_tuples\": {},\n    \"rebuild_ms\": {:.2}\n  }},\n",
            self.recompute_prefix, self.recompute_rebuild_ms
        ));
        s.push_str("  \"snapshot_encoding\": {\n");
        s.push_str(&format!(
            "    \"binary_bytes_per_ckpt\": {:.1},\n    \
             \"json_bytes_per_ckpt\": {:.1},\n    \"reduction_pct\": {:.1}\n  }}\n}}\n",
            self.snapshot_binary_bytes_per_ckpt,
            self.snapshot_json_bytes_per_ckpt,
            self.snapshot_reduction_pct()
        ));
        s
    }

    /// Writes [`to_json`](Self::to_json) to `BENCH_recovery.json` at the
    /// repository root and returns the path.
    pub fn write_json_at_repo_root(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_recovery.json"
        ));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Finite spout paced at `rate` tuples/s, so the stream is still flowing
/// when the wall-clock-scheduled panic fires (mirrors the chaos suite's
/// paced spout).
struct PacedSpout {
    left: u64,
    next_id: u64,
    rate: f64,
    started: Option<Instant>,
}

impl PacedSpout {
    fn new(n: u64, rate: f64) -> Self {
        PacedSpout {
            left: n,
            next_id: 0,
            rate,
            started: None,
        }
    }
}

impl Spout for PacedSpout {
    fn open(&mut self, _ctx: &TopologyContext) {
        self.started = Some(Instant::now());
    }

    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.left == 0 {
            return false;
        }
        let elapsed = self
            .started
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        if self.next_id as f64 >= elapsed * self.rate {
            // Ahead of schedule; emit nothing and let the runtime nap.
            return true;
        }
        self.left -= 1;
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }
}

/// Finite unpaced spout for the recompute arm: floods the whole prefix as
/// fast as the runtime accepts it.
struct FloodSpout {
    left: u64,
    next_id: u64,
}

impl Spout for FloodSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }
}

/// Checkpointable counting bolt: the stateful operator every arm kills.
/// Publishes its live count so the bench can read the operator's view of
/// the stream after shutdown, and the count carried by the restored
/// snapshot.
struct StatefulCounter {
    count: u64,
    sum: u64,
    delivered: Arc<AtomicU64>,
    restored: Arc<AtomicU64>,
}

impl Bolt for StatefulCounter {
    fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
        self.count += 1;
        self.sum += t.get(0).and_then(|v| v.as_i64()).unwrap_or(0) as u64;
        self.delivered.store(self.count, Ordering::Relaxed);
    }

    fn stateful(&mut self) -> Option<&mut dyn StatefulComponent> {
        Some(self)
    }
}

impl StatefulComponent for StatefulCounter {
    fn snapshot(&mut self) -> StateSnapshot {
        StateSnapshot::encode(SnapshotKind::Full, &(self.count, self.sum))
    }

    fn restore(
        &mut self,
        base: &StateSnapshot,
        deltas: &[StateSnapshot],
    ) -> std::result::Result<(), String> {
        if !deltas.is_empty() {
            return Err("bench counter snapshots are full-only".into());
        }
        let (count, sum): (u64, u64) = base.decode()?;
        self.count = count;
        self.sum = sum;
        self.delivered.store(count, Ordering::Relaxed);
        self.restored.store(count, Ordering::Relaxed);
        Ok(())
    }
}

/// Linear interpolation of the acked count at time `t` over the sampled
/// `(seconds-since-submit, acked)` series.
fn acked_at(samples: &[(f64, u64)], t: f64) -> f64 {
    match samples.iter().position(|(s, _)| *s >= t) {
        None => samples.last().map(|(_, a)| *a as f64).unwrap_or(0.0),
        Some(0) => samples[0].1 as f64,
        Some(i) => {
            let (t0, a0) = samples[i - 1];
            let (t1, a1) = samples[i];
            let w = ((t - t0) / (t1 - t0)).clamp(0.0, 1.0);
            a0 as f64 + w * (a1 as f64 - a0 as f64)
        }
    }
}

fn fault_arm(
    mode: RecoveryMode,
    n: u64,
    rate: f64,
    panic_at_s: f64,
    json_snapshots: bool,
) -> RecoveryArm {
    let delivered = Arc::new(AtomicU64::new(0));
    let restored = Arc::new(AtomicU64::new(0));
    let (d2, r2) = (delivered.clone(), restored.clone());
    let mut b = TopologyBuilder::new("rt-recovery");
    b.set_spout("src", 1, move || PacedSpout::new(n, rate))
        .unwrap();
    b.set_bolt("state", 1, move || StatefulCounter {
        count: 0,
        sum: 0,
        delivered: d2.clone(),
        restored: r2.clone(),
    })
    .unwrap()
    .shuffle_grouping("src")
    .unwrap();
    let topo = b.build().unwrap();

    let mut cfg = EngineConfig::default().with_cluster(1, 2, 4);
    cfg.metrics_interval_s = 0.25;
    cfg.message_timeout_s = 1.0;
    cfg.max_spout_pending = 16 * 1024;
    let plan = RtFaultPlan::new().with(RtFault::TaskPanic {
        task: 1,
        at_s: panic_at_s,
    });
    let rt_cfg = RtConfig::default()
        .with_checkpoints(Duration::from_millis(100))
        .with_recovery_mode(mode)
        .with_max_replays(8)
        .with_replay_backoff(Duration::from_millis(50))
        .with_json_snapshots(json_snapshots);

    let t0 = Instant::now();
    let running = rt::submit_faulty(topo, cfg, rt_cfg, plan, None).unwrap();
    // Sample the acked count at ~5 ms so the 250 ms windows around the
    // panic carry enough points for a throughput estimate.
    let mut samples: Vec<(f64, u64)> = Vec::with_capacity(4096);
    let deadline = t0 + Duration::from_secs(30);
    loop {
        samples.push((t0.elapsed().as_secs_f64(), running.acked()));
        if running.acked() + running.permanently_failed() >= n || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let (_, report) = running.shutdown();

    // Panic → restored wall clock, from the journal.  The nominal
    // `panic_at_s` is only the schedule; the journal records when the fault
    // actually fired.
    let fault_t = report
        .journal_of_kind("fault_injected")
        .first()
        .map(|e| e.time_s())
        .unwrap_or(panic_at_s);
    let restores = report.journal_of_kind("state_restored");
    let recovery_ms = restores
        .iter()
        .map(|e| e.time_s())
        .filter(|t| *t >= fault_t)
        .fold(f64::NAN, f64::min)
        .max(fault_t)
        - fault_t;
    let restore_ms = restores
        .iter()
        .filter_map(|e| match e {
            dsdps::telemetry::JournalEvent::StateRestored { latency_us, .. } => Some(*latency_us),
            _ => None,
        })
        .max()
        .unwrap_or(0) as f64
        / 1_000.0;

    let pre = (acked_at(&samples, fault_t) - acked_at(&samples, fault_t - 0.25)) / 0.25;
    let post = (acked_at(&samples, fault_t + 0.25) - acked_at(&samples, fault_t)) / 0.25;
    let dip_pct = if pre > 0.0 {
        (1.0 - post / pre) * 100.0
    } else {
        0.0
    };

    let final_count = delivered.load(Ordering::Relaxed);
    let error_pct = (final_count as f64 - n as f64).abs() / n as f64 * 100.0;
    let within_bound = match mode {
        RecoveryMode::ExactlyOnceEffect => final_count == n,
        RecoveryMode::AtLeastOnce => final_count >= n,
        RecoveryMode::Approximate => n.saturating_sub(final_count) <= report.approx_skipped,
    };

    println!(
        "  {:<20} recovery {:>8.1} ms  restore {:>7.3} ms  dip {:>6.1}%  \
         error {:>6.3}%  ({} ckpts, {} restores, {} skipped)",
        mode.as_str(),
        recovery_ms * 1_000.0,
        restore_ms,
        dip_pct,
        error_pct,
        report.checkpoints_taken,
        report.restores,
        report.approx_skipped,
    );

    RecoveryArm {
        mode: mode.as_str(),
        recovery_ms: recovery_ms * 1_000.0,
        restore_ms,
        restores: report.restores,
        checkpoints: report.checkpoints_taken,
        snapshot_bytes: report.snapshot_bytes,
        pre_fault_rate: pre,
        post_fault_dip_pct: dip_pct,
        result_error_pct: error_pct,
        approx_skipped: report.approx_skipped,
        within_bound,
        restored_count: restored.load(Ordering::Relaxed),
    }
}

/// Factory-fresh recompute reference: rebuild the exactly-once arm's
/// restored state by re-acking the whole input prefix through an identical
/// topology with checkpoints off.  This is what recovery costs without a
/// snapshot to restore from.
fn recompute_rebuild(prefix: u64) -> f64 {
    let delivered = Arc::new(AtomicU64::new(0));
    let restored = Arc::new(AtomicU64::new(0));
    let (d2, r2) = (delivered.clone(), restored.clone());
    let mut b = TopologyBuilder::new("rt-recompute");
    b.set_spout("src", 1, move || FloodSpout {
        left: prefix,
        next_id: 0,
    })
    .unwrap();
    b.set_bolt("state", 1, move || StatefulCounter {
        count: 0,
        sum: 0,
        delivered: d2.clone(),
        restored: r2.clone(),
    })
    .unwrap()
    .shuffle_grouping("src")
    .unwrap();
    let topo = b.build().unwrap();
    let mut cfg = EngineConfig::default().with_cluster(1, 2, 4);
    cfg.max_spout_pending = 16 * 1024;

    let t0 = Instant::now();
    let running = rt::submit_with(topo, cfg, RtConfig::default()).unwrap();
    let deadline = t0 + Duration::from_secs(30);
    while running.acked() < prefix && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1_000.0;
    running.shutdown();
    rebuild_ms
}

/// Runs the `rt_recovery` bench: one fault arm per guarantee, then the
/// recompute reference sized to the exactly-once arm's restored state.
pub fn run(smoke: bool) -> RecoveryResults {
    // Sized so the pre-crash prefix is five-figure: the recompute reference
    // then takes tens of milliseconds, keeping the gate's anti-vacuity
    // floor comfortably cleared on any machine that can run the suite.
    let (n, rate, panic_at_s) = if smoke {
        (25_000u64, 25_000.0, 0.5)
    } else {
        (60_000u64, 40_000.0, 0.75)
    };
    println!(
        "\nrt_recovery: {n} tuples at {rate:.0}/s, stateful bolt panics at {panic_at_s:.2}s \
         (checkpoints every 100 ms)"
    );
    let arms: Vec<RecoveryArm> = [
        RecoveryMode::ExactlyOnceEffect,
        RecoveryMode::AtLeastOnce,
        RecoveryMode::Approximate,
    ]
    .into_iter()
    .map(|mode| fault_arm(mode, n, rate, panic_at_s, false))
    .collect();

    // Snapshot-encoding comparison: re-run the exactly-once arm with the
    // JSON snapshot fallback and compare average bytes per checkpoint
    // against the default binary encoding above.
    let json_arm = fault_arm(RecoveryMode::ExactlyOnceEffect, n, rate, panic_at_s, true);
    let per_ckpt = |bytes: u64, ckpts: u64| bytes as f64 / ckpts.max(1) as f64;
    let binary_bytes_per_ckpt = arms
        .iter()
        .find(|a| a.mode == "exactly_once_effect")
        .map(|a| per_ckpt(a.snapshot_bytes, a.checkpoints))
        .unwrap_or(0.0);
    let json_bytes_per_ckpt = per_ckpt(json_arm.snapshot_bytes, json_arm.checkpoints);
    println!(
        "  {:<20} binary {:.1} B/ckpt vs json {:.1} B/ckpt ({:.1}% smaller)",
        "snapshot encoding",
        binary_bytes_per_ckpt,
        json_bytes_per_ckpt,
        if json_bytes_per_ckpt > 0.0 {
            (1.0 - binary_bytes_per_ckpt / json_bytes_per_ckpt) * 100.0
        } else {
            0.0
        }
    );

    let prefix = arms
        .iter()
        .find(|a| a.mode == "exactly_once_effect")
        .map(|a| a.restored_count)
        .unwrap_or(0)
        .max(1);
    let recompute_rebuild_ms = recompute_rebuild(prefix);
    println!(
        "  {:<20} rebuild  {:>8.1} ms  ({prefix} tuples re-acked, checkpoints off)",
        "recompute", recompute_rebuild_ms
    );

    RecoveryResults {
        mode: if smoke { "smoke" } else { "full" },
        arms,
        recompute_prefix: prefix,
        recompute_rebuild_ms,
        snapshot_binary_bytes_per_ckpt: binary_bytes_per_ckpt,
        snapshot_json_bytes_per_ckpt: json_bytes_per_ckpt,
    }
}

/// CI recovery gate: every guarantee must actually checkpoint, restore and
/// keep its promise, and the exactly-once restore must beat the
/// factory-fresh recompute.  Anti-vacuity floors void the comparison when
/// the snapshot carried trivially little state or the recompute was
/// trivially cheap — a pass must mean the restore path earned it.
pub fn check_recovery_gate(res: &RecoveryResults) -> Result<(), String> {
    const MIN_RECOMPUTE_MS: f64 = 5.0;
    const MIN_RESTORED_TUPLES: u64 = 1_000;
    for want in ["exactly_once_effect", "at_least_once", "approximate"] {
        let arm = res
            .arms
            .iter()
            .find(|a| a.mode == want)
            .ok_or_else(|| format!("recovery gate: no {want} arm was measured"))?;
        if arm.checkpoints == 0 || arm.restores == 0 {
            return Err(format!(
                "recovery gate: the {want} arm never exercised the checkpoint path \
                 ({} checkpoints, {} restores)",
                arm.checkpoints, arm.restores
            ));
        }
        if !arm.within_bound {
            return Err(format!(
                "recovery gate: the {want} arm broke its guarantee \
                 (result error {:.3}%, {} reported skipped)",
                arm.result_error_pct, arm.approx_skipped
            ));
        }
    }
    let exact = res
        .arms
        .iter()
        .find(|a| a.mode == "exactly_once_effect")
        .expect("checked above");
    println!(
        "\nrecovery gate: exactly-once restore {:.3} ms vs factory-fresh recompute {:.1} ms \
         ({} restored tuples)",
        exact.restore_ms, res.recompute_rebuild_ms, exact.restored_count
    );
    if exact.restored_count < MIN_RESTORED_TUPLES {
        return Err(format!(
            "recovery gate: the restored snapshot carried only {} tuples \
             (< {MIN_RESTORED_TUPLES}) — the restore-vs-recompute comparison is void",
            exact.restored_count
        ));
    }
    if res.recompute_rebuild_ms < MIN_RECOMPUTE_MS {
        return Err(format!(
            "recovery gate: the factory-fresh recompute took only {:.2} ms \
             (< {MIN_RECOMPUTE_MS:.0} ms) — the restore-vs-recompute comparison is void",
            res.recompute_rebuild_ms
        ));
    }
    if exact.restore_ms >= res.recompute_rebuild_ms {
        return Err(format!(
            "recovery gate: exactly-once restore {:.3} ms did not beat the \
             factory-fresh recompute {:.2} ms — checkpointed recovery is not \
             paying for itself",
            exact.restore_ms, res.recompute_rebuild_ms
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm(mode: &'static str) -> RecoveryArm {
        RecoveryArm {
            mode,
            recovery_ms: 12.0,
            restore_ms: 0.4,
            restores: 1,
            checkpoints: 6,
            snapshot_bytes: 512,
            pre_fault_rate: 11_000.0,
            post_fault_dip_pct: 40.0,
            result_error_pct: 0.0,
            approx_skipped: 0,
            within_bound: true,
            restored_count: 4_000,
        }
    }

    fn passing_results() -> RecoveryResults {
        RecoveryResults {
            mode: "smoke",
            arms: vec![
                arm("exactly_once_effect"),
                arm("at_least_once"),
                arm("approximate"),
            ],
            recompute_prefix: 4_000,
            recompute_rebuild_ms: 35.0,
            snapshot_binary_bytes_per_ckpt: 18.0,
            snapshot_json_bytes_per_ckpt: 42.0,
        }
    }

    #[test]
    fn gate_passes_when_restore_beats_recompute() {
        check_recovery_gate(&passing_results()).unwrap();
    }

    #[test]
    fn gate_fails_when_restore_is_slower_than_recompute() {
        let mut res = passing_results();
        res.arms[0].restore_ms = 50.0;
        let err = check_recovery_gate(&res).unwrap_err();
        assert!(err.contains("did not beat"), "unexpected message: {err}");
    }

    #[test]
    fn gate_is_void_when_recompute_is_trivially_cheap() {
        let mut res = passing_results();
        res.recompute_rebuild_ms = 1.0;
        res.arms[0].restore_ms = 0.1;
        let err = check_recovery_gate(&res).unwrap_err();
        assert!(err.contains("void"), "unexpected message: {err}");
    }

    #[test]
    fn gate_is_void_when_the_snapshot_carried_no_state() {
        let mut res = passing_results();
        res.arms[0].restored_count = 10;
        let err = check_recovery_gate(&res).unwrap_err();
        assert!(err.contains("void"), "unexpected message: {err}");
    }

    #[test]
    fn gate_fails_when_an_arm_never_restored() {
        let mut res = passing_results();
        res.arms[1].restores = 0;
        let err = check_recovery_gate(&res).unwrap_err();
        assert!(err.contains("never exercised"), "unexpected message: {err}");
    }

    #[test]
    fn gate_fails_when_a_guarantee_is_broken() {
        let mut res = passing_results();
        res.arms[2].within_bound = false;
        res.arms[2].result_error_pct = 9.0;
        let err = check_recovery_gate(&res).unwrap_err();
        assert!(err.contains("broke its guarantee"), "unexpected: {err}");
    }

    #[test]
    fn gate_fails_when_an_arm_is_missing() {
        let mut res = passing_results();
        res.arms.remove(1);
        let err = check_recovery_gate(&res).unwrap_err();
        assert!(err.contains("no at_least_once arm"), "unexpected: {err}");
    }

    #[test]
    fn json_is_well_shaped() {
        let json = passing_results().to_json();
        assert!(json.contains("\"schema\": \"bench_recovery/v1\""));
        assert!(json.contains("\"exactly_once_effect\""));
        assert!(json.contains("\"rebuild_ms\": 35.00"));
        assert!(json.contains("\"within_bound\": true"));
        assert!(json.contains("\"snapshot_encoding\""));
        assert!(json.contains("\"reduction_pct\": 57.1"));
    }

    #[test]
    fn acked_at_interpolates_between_samples() {
        let samples = [(0.0, 0u64), (1.0, 1_000), (2.0, 1_000)];
        assert_eq!(acked_at(&samples, 0.5), 500.0);
        assert_eq!(acked_at(&samples, 1.5), 1_000.0);
        assert_eq!(acked_at(&samples, 5.0), 1_000.0);
        assert_eq!(acked_at(&samples, -1.0), 0.0);
    }
}

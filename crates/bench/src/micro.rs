//! Kernel microbenchmarks with machine-readable output.
//!
//! A small self-contained adaptive timing harness (no external bench
//! framework) measures the performance-critical kernels:
//!
//! * `gemm`           — the drnn blocked matrix-multiply at 32/64/128
//! * `gemm_at_b` etc. — the transpose-free BPTT kernels (`AᵀB`, `ABᵀ`)
//!   and the tiled transpose
//! * `lstm`           — LSTM forward and forward+backward over a
//!   batch-32 / seq-16 sequence at hidden 64 and 128 (the paper-scale
//!   predictor shapes), using the reusable-workspace API
//! * `grouping`       — per-tuple routing decision for every grouping type
//! * `acker`          — tuple-tree track/emit/ack cycle
//! * `engine`         — simulated-runtime event throughput
//! * `forecast_fit`   — ARIMA and SVR fit time
//! * `control_epoch`  — one controller epoch (snapshot → plan → actuate)
//! * `rt_batching`    — threaded-runtime tuple throughput on a 3-stage
//!   shuffle-grouped topology at several batch sizes
//! * `rt_overload`    — queue-wait quantiles at a 4×-overload point
//!   (spout offered rate four times the sink's service capacity) with and
//!   without the adaptive spout throttle, feeding the CI backpressure gate
//!
//! Every measurement is recorded in a [`MicroResults`] and can be written
//! as `BENCH_kernels.json` at the repository root, so CI and the results
//! tables consume the same numbers that are printed.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use drnn::layer::lstm::{LstmCache, LstmLayer};
use drnn::matrix::Matrix;
use dsdps::acker::Acker;
use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
use dsdps::config::EngineConfig;
use dsdps::grouping::dynamic::{DynamicGrouping, DynamicGroupingHandle, SplitRatio};
use dsdps::grouping::{AllGrouping, FieldsGrouping, GlobalGrouping, Grouping, ShuffleGrouping};
use dsdps::rt::{self, RtConfig};
use dsdps::sim::SimRuntime;
use dsdps::topology::{CostModel, TaskId, TopologyBuilder};
use dsdps::tuple::{Fields, Tuple, Value};
use forecast::arima::{Arima, ArimaOrder};
use forecast::forecaster::Forecaster;
use forecast::svr::{Svr, SvrParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Collected measurements of one microbench run.
pub struct MicroResults {
    /// `"smoke"` or `"full"`.
    pub mode: &'static str,
    /// `std::thread::available_parallelism()` of the bench host, stamped
    /// into `BENCH_rt.json` so scaling numbers can be read against the
    /// cores that produced them.
    pub host_parallelism: usize,
    /// `"w{W}_b{B}"` keys of scaling points whose thread demand exceeded
    /// the host's parallelism — measured anyway, but flagged because the
    /// point reflects oversubscription, not the runtime's scaling.
    pub oversubscribed: Vec<String>,
    /// `(benchmark name, ns/iter)` in execution order.
    pub ns_per_iter: Vec<(String, f64)>,
    /// `(batch_size, acked tuples/s)` of the threaded-runtime throughput
    /// sweep.
    pub rt_acked_tuples_per_s: Vec<(usize, f64)>,
    /// `(workers, batch_size, acked tuples/s)` of the threaded-runtime
    /// worker-scaling sweep (written to `BENCH_rt.json`).
    pub rt_scaling: Vec<(usize, usize, f64)>,
    /// Queue-wait quantiles at the 4×-overload point, with and without the
    /// adaptive spout throttle (also written to `BENCH_rt.json`).
    pub rt_overload: Option<RtOverload>,
}

/// Queue-wait measurements of one overloaded run pair (µs).
pub struct RtOverload {
    /// Steady-state (last metrics interval) queue-wait p99 with the AIMD
    /// throttle enabled.
    pub throttled_p99_us: f64,
    /// Steady-state queue-wait p99 with the throttle off — the queues sit
    /// full, so this is the channel-capacity-sized plateau.
    pub unthrottled_p99_us: f64,
    /// Whole-run queue-wait median of the unthrottled run; the CI gate's
    /// reference point.
    pub unthrottled_p50_us: f64,
}

impl MicroResults {
    fn new(mode: &'static str) -> Self {
        MicroResults {
            mode,
            host_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            oversubscribed: Vec::new(),
            ns_per_iter: Vec::new(),
            rt_acked_tuples_per_s: Vec::new(),
            rt_scaling: Vec::new(),
            rt_overload: None,
        }
    }

    /// Times `f` adaptively: doubles the iteration count until the measured
    /// run exceeds `target`, then records and prints ns/iter over the final
    /// run.
    fn bench<R, F: FnMut() -> R>(&mut self, name: &str, target: Duration, mut f: F) {
        // Warm-up.
        std::hint::black_box(f());
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= target || iters >= 1 << 30 {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<44} {:>14} ns/iter   ({iters} iters)", fmt_num(ns));
                self.ns_per_iter.push((name.to_owned(), ns));
                return;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                // Aim straight for the target with 20% headroom.
                let scale = target.as_secs_f64() / elapsed.as_secs_f64() * 1.2;
                (iters as f64 * scale).ceil() as u64
            };
        }
    }

    /// Serializes the results as a stable, machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": \"bench_kernels/v1\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"ns_per_iter\": {\n");
        for (i, (name, ns)) in self.ns_per_iter.iter().enumerate() {
            let sep = if i + 1 == self.ns_per_iter.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!("    \"{name}\": {ns:.1}{sep}\n"));
        }
        s.push_str("  },\n  \"rt_acked_tuples_per_s\": {\n");
        for (i, (bs, tput)) in self.rt_acked_tuples_per_s.iter().enumerate() {
            let sep = if i + 1 == self.rt_acked_tuples_per_s.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!("    \"{bs}\": {tput:.1}{sep}\n"));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Writes [`to_json`](Self::to_json) to `BENCH_kernels.json` at the
    /// repository root and returns the path.
    pub fn write_json_at_repo_root(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_kernels.json"
        ));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Serializes the worker-scaling sweep as a stable JSON document keyed
    /// `"w{workers}_b{batch}"`, the format CI's regression gate consumes.
    /// When the overload point ran, an `overload_queue_wait_us` section is
    /// appended; the throughput-gate parser only reads
    /// `acked_tuples_per_s`, so the extra section is backward compatible.
    pub fn rt_scaling_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n  \"schema\": \"bench_rt/v1\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        if !self.oversubscribed.is_empty() {
            s.push_str("  \"oversubscribed\": [");
            for (i, key) in self.oversubscribed.iter().enumerate() {
                let sep = if i + 1 == self.oversubscribed.len() {
                    ""
                } else {
                    ", "
                };
                s.push_str(&format!("\"{key}\"{sep}"));
            }
            s.push_str("],\n");
        }
        s.push_str("  \"acked_tuples_per_s\": {\n");
        for (i, (workers, batch, tput)) in self.rt_scaling.iter().enumerate() {
            let sep = if i + 1 == self.rt_scaling.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!("    \"w{workers}_b{batch}\": {tput:.1}{sep}\n"));
        }
        s.push_str("  }");
        if let Some(o) = &self.rt_overload {
            s.push_str(",\n  \"overload_queue_wait_us\": {\n");
            s.push_str(&format!(
                "    \"throttled_p99\": {:.1},\n",
                o.throttled_p99_us
            ));
            s.push_str(&format!(
                "    \"unthrottled_p99\": {:.1},\n",
                o.unthrottled_p99_us
            ));
            s.push_str(&format!(
                "    \"unthrottled_p50\": {:.1}\n  }}",
                o.unthrottled_p50_us
            ));
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes [`rt_scaling_json`](Self::rt_scaling_json) to `BENCH_rt.json`
    /// at the repository root and returns the path.
    pub fn write_rt_json_at_repo_root(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rt.json"));
        std::fs::write(&path, self.rt_scaling_json())?;
        Ok(path)
    }
}

fn fmt_num(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}e9", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

fn square(n: usize, seed: usize) -> Matrix {
    Matrix::from_vec(
        n,
        n,
        (0..n * n)
            .map(|i| ((i + seed) % 17) as f64 / 17.0 - 0.4)
            .collect(),
    )
}

fn bench_gemm(res: &mut MicroResults, target: Duration) {
    for &n in &[32usize, 64, 128] {
        let a = square(n, 1);
        let b = square(n, 5);
        res.bench(&format!("gemm/{n}x{n}"), target, || a.matmul(&b));
    }
    // Transpose-free BPTT kernels at the gradient-accumulation shape.
    let n = 128;
    let a = square(n, 1);
    let b = square(n, 5);
    let mut out = Matrix::zeros(n, n);
    res.bench(&format!("gemm_at_b/{n}x{n}"), target, || {
        out.zero_in_place();
        a.matmul_at_b_into(&b, &mut out);
        out.get(0, 0)
    });
    let mut out2 = Matrix::zeros(n, n);
    res.bench(&format!("gemm_a_bt/{n}x{n}"), target, || {
        a.matmul_a_bt_into(&b, &mut out2);
        out2.get(0, 0)
    });
    res.bench(&format!("transpose/{n}x{n}"), target, || a.transpose());
}

fn bench_lstm(res: &mut MicroResults, target: Duration) {
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<Matrix> = (0..16)
        .map(|t| {
            Matrix::from_vec(
                32,
                16,
                (0..32 * 16).map(|i| ((t + i) % 7) as f64 / 7.0).collect(),
            )
        })
        .collect();
    for &hidden in &[64usize, 128] {
        let mut layer = LstmLayer::new(16, hidden, &mut rng);
        let suffix = if hidden == 64 {
            String::new()
        } else {
            format!("_h{hidden}")
        };
        let mut hs: Vec<Matrix> = Vec::new();
        let mut cache = LstmCache::default();
        res.bench(
            &format!("lstm/forward_seq16_batch32{suffix}"),
            target,
            || {
                layer.forward_into(&xs, &mut hs, &mut cache);
                hs.last().unwrap().get(0, 0)
            },
        );
        let dhs: Vec<Matrix> = (0..16).map(|_| Matrix::full(32, hidden, 1.0)).collect();
        let mut dxs: Vec<Matrix> = Vec::new();
        res.bench(
            &format!("lstm/forward_backward_seq16_batch32{suffix}"),
            target,
            || {
                layer.forward_into(&xs, &mut hs, &mut cache);
                layer.zero_grads();
                layer.backward_into(&xs, &hs, &cache, &dhs, &mut dxs);
                dxs.last().unwrap().get(0, 0)
            },
        );
    }
}

fn bench_grouping(res: &mut MicroResults, target: Duration) {
    let schema = Fields::new(["key", "seq"]);
    let tuple = Tuple::with_fields([Value::from("k42"), Value::from(42i64)], schema.clone());
    let mut out = Vec::with_capacity(8);
    let mut run = |res: &mut MicroResults, name: &str, g: &mut dyn Grouping| {
        res.bench(name, target, || {
            out.clear();
            g.select(&tuple, &mut out);
            out.first().copied()
        });
    };
    run(res, "grouping/shuffle", &mut ShuffleGrouping::new(8, 0));
    run(
        res,
        "grouping/fields",
        &mut FieldsGrouping::new(8, &["key".into()], &schema).unwrap(),
    );
    run(res, "grouping/global", &mut GlobalGrouping::new(8));
    run(res, "grouping/all", &mut AllGrouping::new(8));
    let handle = DynamicGroupingHandle::new(SplitRatio::uniform(8));
    run(res, "grouping/dynamic", &mut DynamicGrouping::new(handle));
}

fn bench_acker(res: &mut MicroResults, target: Duration) {
    let mut acker = Acker::new();
    let mut root = 0u64;
    res.bench("acker/track_emit_ack_cycle", target, || {
        root += 1;
        let e0 = acker.new_edge_id();
        acker.track(root, e0, TaskId(0), root, 0.0);
        let e1 = acker.new_edge_id();
        acker.on_emit(root, e1);
        acker.on_ack(root, e0, 0.1);
        acker.on_ack(root, e1, 0.2);
        acker.drain_outcomes().len()
    });
}

fn bench_engine(res: &mut MicroResults, target: Duration, sim_horizon_s: f64) {
    struct Src(u64);
    impl Spout for Src {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            let due = (out.now_s() * 5000.0) as u64;
            for _ in 0..(due.saturating_sub(self.0)).min(32) {
                self.0 += 1;
                out.emit_with_id(Tuple::of([Value::from(self.0 as i64)]), self.0);
            }
            true
        }
    }
    struct Sink;
    impl Bolt for Sink {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
    }

    res.bench("engine/sim_5000tps_pipeline", target, || {
        let mut builder = TopologyBuilder::new("bench");
        builder
            .set_spout("src", 1, || Src(0))
            .unwrap()
            .cost(CostModel {
                base_service_time_us: 5.0,
                jitter: 0.0,
            });
        builder
            .set_bolt("sink", 4, || Sink)
            .unwrap()
            .shuffle_grouping("src")
            .unwrap()
            .cost(CostModel {
                base_service_time_us: 50.0,
                jitter: 0.0,
            });
        let topo = builder.build().unwrap();
        let mut engine =
            SimRuntime::new(topo, EngineConfig::default().with_cluster(2, 2, 4)).unwrap();
        engine.run_until(sim_horizon_s).acked
    });
}

fn bench_forecast_fit(res: &mut MicroResults, target: Duration) {
    let series: Vec<f64> = {
        let mut state = 9u64;
        let mut prev = 0.0;
        (0..400)
            .map(|t| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                prev = 0.7 * prev + e + (t as f64 / 20.0).sin();
                prev
            })
            .collect()
    };
    res.bench("forecast/arima_2_0_1_fit_400", target, || {
        let mut m = Arima::new(ArimaOrder::new(2, 0, 1));
        m.fit(&series).unwrap();
        m.aic()
    });
    let x: Vec<Vec<f64>> = series.windows(8).map(|w| w[..7].to_vec()).collect();
    let y: Vec<f64> = series.windows(8).map(|w| w[7]).collect();
    res.bench("forecast/svr_rbf_fit_400", target, || {
        let mut svr = Svr::new(SvrParams::default()).unwrap();
        svr.fit(&x, &y).unwrap();
        svr.support_count()
    });
}

fn bench_control_epoch(res: &mut MicroResults, target: Duration) {
    use stream_control::planner::{plan_ratio, PlanPolicy};
    let tasks: Vec<TaskId> = (0..8).map(TaskId).collect();
    let placement: HashMap<TaskId, dsdps::scheduler::WorkerId> = tasks
        .iter()
        .map(|&t| (t, dsdps::scheduler::WorkerId(t.0)))
        .collect();
    let mut rng = StdRng::seed_from_u64(3);
    let lat: HashMap<dsdps::scheduler::WorkerId, f64> = (0..8)
        .map(|i| (dsdps::scheduler::WorkerId(i), rng.gen_range(100.0..1000.0)))
        .collect();
    res.bench("control/plan_ratio_8tasks", target, || {
        plan_ratio(
            PlanPolicy::CapacityProportional { alpha: 1.0 },
            &tasks,
            &placement,
            &[dsdps::scheduler::WorkerId(3)],
            &lat,
            0.02,
        )
        .unwrap()
    });
}

// --- Threaded-runtime batching throughput ------------------------------

/// Spout that emits tracked tuples as fast as backpressure allows until
/// `stop` is raised.
struct FloodSpout {
    next_id: u64,
    stop: Arc<AtomicBool>,
}

impl Spout for FloodSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.stop.load(Ordering::Relaxed) {
            return false;
        }
        for _ in 0..32 {
            self.next_id += 1;
            out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        }
        true
    }
}

/// Middle stage: re-emits each tuple anchored (keeps the tree alive one hop).
struct Relay;
impl Bolt for Relay {
    fn execute(&mut self, t: &Tuple, out: &mut BoltOutput) {
        out.emit(t.clone());
    }
}

struct Blackhole;
impl Bolt for Blackhole {
    fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
}

/// Runs the 3-stage shuffle topology (spout → relay ×2 → sink ×2) for
/// `run_s` seconds and returns acked tuple trees per second.
fn rt_throughput(batch_size: usize, run_s: f64) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let s2 = stop.clone();
    let mut b = TopologyBuilder::new("rt-batch-bench");
    b.set_spout("src", 1, move || FloodSpout {
        next_id: 0,
        stop: s2.clone(),
    })
    .unwrap();
    b.set_bolt("relay", 2, || Relay)
        .unwrap()
        .shuffle_grouping("src")
        .unwrap();
    b.set_bolt("sink", 2, || Blackhole)
        .unwrap()
        .shuffle_grouping("relay")
        .unwrap();
    let topo = b.build().unwrap();
    let mut cfg = EngineConfig::default().with_cluster(2, 2, 4);
    // Batching raises per-tree completion latency (tuples wait for a full
    // batch at each hop), so the in-flight window must grow with the batch
    // size or the spout throttles on max_spout_pending instead of measuring
    // channel throughput — the same tuning rule as Storm's
    // topology.max.spout.pending.
    cfg.max_spout_pending = 16 * 1024;
    let rt_cfg = RtConfig::default().with_batch_size(batch_size);
    let running = rt::submit_with(topo, cfg, rt_cfg).unwrap();
    std::thread::sleep(Duration::from_secs_f64(run_s));
    stop.store(true, Ordering::Relaxed);
    let (_, report) = running.shutdown();
    report.acked as f64 / report.uptime_s
}

/// Runs a `spout → relay ×w → sink ×w` shuffle pipeline on a `w`-worker
/// cluster for `run_s` seconds and returns acked tuple trees per second.
fn rt_scaling_throughput(workers: usize, batch_size: usize, run_s: f64) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let s2 = stop.clone();
    let mut b = TopologyBuilder::new("rt-scaling-bench");
    b.set_spout("src", 1, move || FloodSpout {
        next_id: 0,
        stop: s2.clone(),
    })
    .unwrap();
    b.set_bolt("relay", workers, || Relay)
        .unwrap()
        .shuffle_grouping("src")
        .unwrap();
    b.set_bolt("sink", workers, || Blackhole)
        .unwrap()
        .shuffle_grouping("relay")
        .unwrap();
    let topo = b.build().unwrap();
    let mut cfg = EngineConfig::default().with_cluster(1, workers, 4);
    cfg.max_spout_pending = 16 * 1024;
    let rt_cfg = RtConfig::default().with_batch_size(batch_size);
    let running = rt::submit_with(topo, cfg, rt_cfg).unwrap();
    std::thread::sleep(Duration::from_secs_f64(run_s));
    stop.store(true, Ordering::Relaxed);
    let (_, report) = running.shutdown();
    report.acked as f64 / report.uptime_s
}

/// The data-plane scaling sweep: worker counts {1, 2, 4, 8} × batch sizes
/// {1, 64}, recorded into [`MicroResults::rt_scaling`] / `BENCH_rt.json`.
fn bench_rt_scaling(res: &mut MicroResults, run_s: f64) {
    println!(
        "\nrt_scaling: spout -> relay xW -> sink xW shuffle pipeline, {run_s:.1}s per point \
         (host parallelism {})",
        res.host_parallelism
    );
    for &workers in &[1usize, 2, 4, 8] {
        for &batch in &[1usize, 64] {
            // The point runs spout + relay xW + sink xW task threads; when
            // that exceeds the host's cores the measurement reflects
            // oversubscription, so it is stamped as such in the JSON and
            // never used as a scaling claim.
            let oversubscribed = 2 * workers + 1 > res.host_parallelism;
            let tput = rt_scaling_throughput(workers, batch, run_s);
            res.rt_scaling.push((workers, batch, tput));
            if oversubscribed {
                res.oversubscribed.push(format!("w{workers}_b{batch}"));
            }
            println!(
                "  workers {workers}  batch {batch:>3}: {:>12} acked tuples/s{}",
                fmt_num(tput),
                if oversubscribed {
                    "   (oversubscribed)"
                } else {
                    ""
                }
            );
        }
    }
}

// --- Threaded-runtime overload point -----------------------------------

/// Spout paced at a fixed offered rate (tuples/s), independent of
/// backpressure: when the downstream queues push back it falls behind and
/// catches up in bounded bursts, which is exactly how an external source
/// behaves during a flash crowd.
struct PacedSpout {
    next_id: u64,
    rate: f64,
    stop: Arc<AtomicBool>,
}

impl Spout for PacedSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.stop.load(Ordering::Relaxed) {
            return false;
        }
        let due = (out.now_s() * self.rate) as u64;
        for _ in 0..due.saturating_sub(self.next_id).min(256) {
            self.next_id += 1;
            out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        }
        true
    }
}

/// Sink whose service time is a real sleep, so the overload is genuine
/// occupancy rather than a simulated cost (and a single-core bench host is
/// not starved by busy-spinning).
struct SleepySink {
    service: Duration,
}

impl Bolt for SleepySink {
    fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
        std::thread::sleep(self.service);
    }
}

/// Runs the overload point — spout offered rate 4× the sink stage's nominal
/// service capacity — for `run_s` seconds and returns the report.  Credit
/// flow is on in both variants (window = channel capacity, so credits never
/// bind tighter than the queues); `throttle` additionally arms the AIMD
/// spout throttle with its default 5 ms queue-wait target.
fn rt_overload_report(throttle: bool, run_s: f64) -> rt::ThreadedReport {
    const SINK_WORKERS: usize = 2;
    const SERVICE_US: u64 = 400;
    // Nominal capacity = workers / service_time; offer four times that.
    let offered = 4.0 * SINK_WORKERS as f64 * 1e6 / SERVICE_US as f64;
    let stop = Arc::new(AtomicBool::new(false));
    let s2 = stop.clone();
    let mut b = TopologyBuilder::new("rt-overload-bench");
    b.set_spout("src", 1, move || PacedSpout {
        next_id: 0,
        rate: offered,
        stop: s2.clone(),
    })
    .unwrap();
    b.set_bolt("sink", SINK_WORKERS, || SleepySink {
        service: Duration::from_micros(SERVICE_US),
    })
    .unwrap()
    .shuffle_grouping("src")
    .unwrap();
    let topo = b.build().unwrap();
    let mut cfg = EngineConfig::default().with_cluster(1, SINK_WORKERS, 4);
    // Let the queue-level machinery (credits + throttle) do the work: the
    // in-flight tree gate must not engage first.
    cfg.max_spout_pending = 1_000_000;
    cfg.metrics_interval_s = 0.25;
    let mut rt_cfg = RtConfig::default().with_credit_flow(cfg.queue_capacity);
    if throttle {
        rt_cfg = rt_cfg.with_adaptive_throttle(Duration::from_millis(5));
    }
    let running = rt::submit_with(topo, cfg, rt_cfg).unwrap();
    std::thread::sleep(Duration::from_secs_f64(run_s));
    stop.store(true, Ordering::Relaxed);
    let (_, report) = running.shutdown();
    report
}

/// Measures the overload pair (throttled, then unthrottled) and records the
/// queue-wait quantiles into [`MicroResults::rt_overload`] / `BENCH_rt.json`.
fn bench_rt_overload(res: &mut MicroResults, run_s: f64) {
    println!(
        "\nrt_overload: paced spout at 4x sink capacity, {run_s:.1}s per variant, \
         steady-state queue-wait p99"
    );
    let throttled = rt_overload_report(true, run_s);
    let unthrottled = rt_overload_report(false, run_s);
    let point = RtOverload {
        throttled_p99_us: throttled.queue_wait_last_p99_us,
        unthrottled_p99_us: unthrottled.queue_wait_last_p99_us,
        unthrottled_p50_us: unthrottled.queue_wait_p50_us,
    };
    println!(
        "  throttled   p99 {:>10} us (final rate cap {})",
        fmt_num(point.throttled_p99_us),
        throttled
            .rate_cap
            .map_or("none".to_string(), |c| format!("{} tuples/s", fmt_num(c)))
    );
    println!(
        "  unthrottled p99 {:>10} us, median {:>10} us",
        fmt_num(point.unthrottled_p99_us),
        fmt_num(point.unthrottled_p50_us)
    );
    res.rt_overload = Some(point);
}

/// CI backpressure gate: at the 4×-overload point, the throttled run's
/// steady-state queue-wait p99 must stay within 5× the unthrottled run's
/// median.  Also fails when the unthrottled run never actually queued
/// (median below the 5 ms throttle target) — that means the bench lost its
/// overload and the comparison is meaningless.
fn check_overload_gate(res: &MicroResults) -> Result<(), String> {
    const RATIO: f64 = 5.0;
    const MIN_UNTHROTTLED_P50_US: f64 = 5_000.0;
    let o = res
        .rt_overload
        .as_ref()
        .ok_or("overload gate: the rt_overload point was not measured")?;
    println!(
        "\nrt overload gate: throttled p99 {} us vs {RATIO:.0}x unthrottled median {} us",
        fmt_num(o.throttled_p99_us),
        fmt_num(o.unthrottled_p50_us)
    );
    if o.unthrottled_p50_us < MIN_UNTHROTTLED_P50_US {
        return Err(format!(
            "overload gate: unthrottled median queue-wait {:.0} us is below {:.0} us — \
             the 4x overload point no longer overloads, so the throttle comparison is void",
            o.unthrottled_p50_us, MIN_UNTHROTTLED_P50_US
        ));
    }
    if o.throttled_p99_us > RATIO * o.unthrottled_p50_us {
        return Err(format!(
            "overload gate: throttled steady-state queue-wait p99 {:.0} us exceeds \
             {RATIO:.0}x the unthrottled median {:.0} us — the adaptive throttle is \
             no longer holding the tail down",
            o.throttled_p99_us, o.unthrottled_p50_us
        ));
    }
    Ok(())
}

fn bench_rt_batching(res: &mut MicroResults, run_s: f64) {
    println!("\nrt_batching: 3-stage shuffle topology (src -> relay x2 -> sink x2), {run_s:.1}s per point");
    let base = rt_throughput(1, run_s);
    res.rt_acked_tuples_per_s.push((1, base));
    println!(
        "  batch_size   1: {:>12} acked tuples/s   (baseline)",
        fmt_num(base)
    );
    for &bs in &[8usize, 64] {
        let tput = rt_throughput(bs, run_s);
        res.rt_acked_tuples_per_s.push((bs, tput));
        println!(
            "  batch_size {bs:>3}: {:>12} acked tuples/s   ({:.2}x vs batch 1)",
            fmt_num(tput),
            tput / base
        );
    }
}

/// Runs the full microbenchmark suite.  Smoke mode (used under
/// `cargo test`, which passes `--test` to harness-less bench targets)
/// shrinks every budget so the suite just proves it still runs end to end.
pub fn run(smoke: bool) -> MicroResults {
    let target = if smoke {
        Duration::from_millis(1)
    } else {
        Duration::from_millis(300)
    };
    let mut res = MicroResults::new(if smoke { "smoke" } else { "full" });
    println!("microbench ({} mode)\n", res.mode);
    bench_gemm(&mut res, target);
    bench_lstm(&mut res, target);
    bench_grouping(&mut res, target);
    bench_acker(&mut res, target);
    bench_engine(&mut res, target, if smoke { 0.5 } else { 5.0 });
    bench_forecast_fit(&mut res, target);
    bench_control_epoch(&mut res, target);
    bench_rt_batching(&mut res, if smoke { 0.3 } else { 3.0 });
    bench_rt_scaling(&mut res, if smoke { 0.5 } else { 2.5 });
    // The AIMD throttle needs several 0.25 s metrics intervals to converge,
    // so even smoke mode runs the overload pair for a few seconds.
    bench_rt_overload(&mut res, if smoke { 2.5 } else { 5.0 });
    res
}

/// Reads the `w1_b64` throughput out of a `bench_rt/v1` JSON document.
fn rt_baseline_w1_b64(json: &str) -> Option<f64> {
    use serde::JsonValue;
    let root = serde_json::parse(json).ok()?;
    let JsonValue::Object(fields) = root else {
        return None;
    };
    let tputs = fields.iter().find(|(k, _)| k == "acked_tuples_per_s")?;
    let JsonValue::Object(points) = &tputs.1 else {
        return None;
    };
    match points.iter().find(|(k, _)| k == "w1_b64")?.1 {
        JsonValue::F64(v) => Some(v),
        JsonValue::I64(v) => Some(v as f64),
        JsonValue::U64(v) => Some(v as f64),
        _ => None,
    }
}

/// CI regression gate: compares the fresh `w1_b64` (single-worker, batch-64)
/// throughput against the checked-in baseline and fails on a >20% drop.
fn check_rt_baseline(res: &MicroResults, baseline_path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = rt_baseline_w1_b64(&json)
        .ok_or_else(|| format!("no acked_tuples_per_s.w1_b64 in {baseline_path}"))?;
    let fresh = res
        .rt_scaling
        .iter()
        .find(|(w, b, _)| *w == 1 && *b == 64)
        .map(|(_, _, t)| *t)
        .ok_or_else(|| "rt_scaling sweep did not produce a w1_b64 point".to_string())?;
    println!(
        "\nrt baseline check: w1_b64 fresh {} vs baseline {} ({:+.1}%)",
        fmt_num(fresh),
        fmt_num(baseline),
        (fresh / baseline - 1.0) * 100.0
    );
    if fresh < baseline * 0.8 {
        return Err(format!(
            "rt throughput regression: w1_b64 {fresh:.0} tuples/s is more than 20% below \
             the baseline {baseline:.0} tuples/s"
        ));
    }
    Ok(())
}

/// Runs the `strip-telemetry` reference binary for one `w1_b64` sample via
/// its `--rt-point` mode and parses the machine-readable result, verifying
/// the binary really was built without hot-path telemetry.
fn stripped_point(bin: &str, secs: f64) -> Result<f64, String> {
    let out = std::process::Command::new(bin)
        .args(["--rt-point", "1", "64"])
        .arg(format!("{secs}"))
        .arg("1")
        .output()
        .map_err(|e| format!("cannot run stripped reference {bin}: {e}"))?;
    let text = String::from_utf8_lossy(&out.stdout);
    if text.contains("telemetry_compiled: true") {
        return Err(format!(
            "{bin} was built WITH telemetry compiled in; rebuild it with --features strip-telemetry"
        ));
    }
    text.lines()
        .find_map(|l| l.strip_prefix("rt_point_sample: ")?.trim().parse().ok())
        .ok_or_else(|| format!("no rt_point_sample line in output of {bin}:\n{text}"))
}

/// CI telemetry-overhead gate: with telemetry compiled in but *disabled*
/// (`trace_sample_rate = 0`, no metrics address — the default [`RtConfig`]),
/// `w1_b64` throughput must stay within 3% of a `strip-telemetry` build's.
///
/// Takes the *path of a stripped reference binary* and interleaves its
/// samples with this build's, pair by pair.  Interleaving matters: the
/// machine's throughput ceiling drifts over minutes, so two builds measured
/// in separate CI steps can differ ±10% with zero real overhead, swamping
/// the 3% tolerance.  Even adjacent samples swing ±15% on a shared
/// machine, so no aggregate of a few samples separates a real 3% cost from
/// noise — but a *real* hot-path cost depresses every pair, while noise
/// flips sign between pairs.  The gate therefore fails only when the
/// instrumented build lost by more than the tolerance in **all** pairs:
/// that never happens under noise alone (each pair passes with ~60%
/// probability, all-fail is <1% over six pairs) and always happens for the
/// gross regressions the gate exists to catch, like tracing accidentally
/// running with sampling disabled.  Writes the comparison to
/// `BENCH_telemetry.json` at the repository root regardless of the verdict,
/// so the artifact survives a failing gate.
fn check_telemetry_overhead(mode: &str, smoke: bool, stripped_bin: &str) -> Result<(), String> {
    const TOLERANCE: f64 = 0.03;
    if !dsdps::telemetry::HOT_PATH_TELEMETRY {
        return Err(
            "--check-telemetry-overhead must run on a build WITHOUT strip-telemetry \
             (this build has the feature enabled, so there is nothing to measure)"
                .to_string(),
        );
    }
    let (reps, secs) = if smoke { (6, 1.0) } else { (5, 2.0) };
    println!("\ntelemetry overhead gate: {reps} interleaved w1_b64 pairs, {secs}s each");
    let (mut stripped, mut fresh) = (0.0f64, 0.0f64);
    let mut min_pair_overhead = f64::INFINITY;
    for r in 0..reps {
        let s = stripped_point(stripped_bin, secs)?;
        let f = rt_scaling_throughput(1, 64, secs);
        let pair_overhead = (1.0 - f / s) * 100.0;
        println!(
            "  pair {r}: stripped {:>10}  instrumented-disabled {:>10} acked tuples/s \
             ({pair_overhead:+.1}%)",
            fmt_num(s),
            fmt_num(f)
        );
        stripped = stripped.max(s);
        fresh = fresh.max(f);
        min_pair_overhead = min_pair_overhead.min(pair_overhead);
    }
    let overhead_pct = (1.0 - fresh / stripped) * 100.0;
    println!(
        "telemetry overhead check: best w1_b64 instrumented-disabled {} vs stripped {} \
         ({overhead_pct:+.1}% best-of, {min_pair_overhead:+.1}% min pair, tolerance {:.0}%)",
        fmt_num(fresh),
        fmt_num(stripped),
        TOLERANCE * 100.0
    );
    let mut doc = format!(
        "{{\n  \"schema\": \"bench_telemetry/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"acked_tuples_per_s\": {{\n    \"w1_b64_stripped\": {stripped:.1},\n    \
         \"w1_b64_instrumented_disabled\": {fresh:.1}\n  }},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"min_pair_overhead_pct\": {min_pair_overhead:.2},\n  \
         \"tolerance_pct\": {:.1}\n}}\n",
        TOLERANCE * 100.0
    );
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_telemetry.json"
    ));
    // Rewriting the rt half must not drop the dist gate's section.
    if let Some(dist) = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| crate::dist_bench::dist_section_body(&t))
    {
        doc = crate::dist_bench::merge_dist_section(&doc, &dist);
    }
    match std::fs::write(&path, doc) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_telemetry.json: {e}"),
    }
    if min_pair_overhead > TOLERANCE * 100.0 {
        return Err(format!(
            "telemetry overhead regression: disabled-telemetry throughput lost to the \
             stripped build by more than {:.0}% in every one of {reps} interleaved pairs \
             (min pair overhead {min_pair_overhead:+.1}%)",
            TOLERANCE * 100.0
        ));
    }
    Ok(())
}

/// Shared entry point for the `microbench` bin and bench targets: runs the
/// suite and writes `BENCH_kernels.json` + `BENCH_rt.json` at the repository
/// root.  `--check-rt-baseline <path>` additionally enforces the CI
/// throughput-regression gate; `--check-telemetry-overhead <stripped-bin>`
/// enforces the telemetry-overhead gate against a `strip-telemetry` build
/// of this same binary via interleaved best-of-N sampling (3% tolerance,
/// writing `BENCH_telemetry.json`).  `--check-overload-gate` enforces the
/// backpressure gate at the 4×-overload point: throttled steady-state
/// queue-wait p99 must stay within 5× the unthrottled run's median.
/// `--check-recovery-gate` enforces the fault-recovery gate over the
/// `rt_recovery` results (every guarantee checkpoints, restores and keeps
/// its promise; the exactly-once restore beats a factory-fresh recompute).
/// `--rt-point W B SECS REPS` repeats one scaling point for manual A/B runs
/// (and serves the gate's reference samples).  `--dist-only` runs only the
/// multi-process suite (codec + dist_scaling + recovery, writing
/// `BENCH_dist.json`); `--check-dist-baseline <path>` enforces the
/// distributed gate (≥5× codec speedup at batch 64, full recovery after a
/// worker kill, and ≤20% `w2_b64` throughput regression).
/// `--dist-point W B SECS REPS` repeats one multi-process scaling point
/// (the dist analogue of `--rt-point`, serving the dist telemetry gate's
/// stripped reference samples); `--check-dist-telemetry-overhead
/// <stripped-bin>` enforces the distributed telemetry-overhead gate (3%
/// tolerance, interleaved min-pair, merging a `dist` section into
/// `BENCH_telemetry.json`).
pub fn main_entry() {
    // A re-exec of this binary with `DSDPS_DIST_ADDR` set is a distributed
    // worker for the dist_scaling bench, not a fresh suite run.
    if crate::dist_bench::maybe_worker() {
        return;
    }
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let flag_path = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| panic!("{flag} requires a path argument"))
        })
    };
    let baseline = flag_path("--check-rt-baseline");
    let telemetry_check = flag_path("--check-telemetry-overhead");
    let sim_baseline = flag_path("--check-sim-baseline");
    let dist_baseline = flag_path("--check-dist-baseline");
    let dist_telemetry_check = flag_path("--check-dist-telemetry-overhead");
    let overload_gate = args.iter().any(|a| a == "--check-overload-gate");
    let recovery_gate = args.iter().any(|a| a == "--check-recovery-gate");
    if let Some(i) = args.iter().position(|a| a == "--dist-point") {
        // Diagnostic mode: repeat one multi-process scaling point, for
        // A/B-ing the distributed backend without the whole suite.
        let n = |k: usize| -> f64 { args[i + k].parse().expect("--dist-point W B SECS REPS") };
        let (w, b, secs, reps) = (n(1) as usize, n(2) as usize, n(3), n(4) as usize);
        println!(
            "dist-point w{w} b{b} {secs}s x{reps} (telemetry_compiled: {})",
            dsdps::telemetry::HOT_PATH_TELEMETRY
        );
        for r in 0..reps {
            let tput = crate::dist_bench::run_point(w, b, secs);
            // Machine-readable line, parsed by the dist telemetry-overhead
            // gate when it drives the stripped reference binary.
            println!("dist_point_sample: {tput:.1}");
            println!("  rep {r}: {:>12} acked tuples/s", fmt_num(tput));
        }
        return;
    }
    if args.iter().any(|a| a == "--dist-only") {
        // Run only the distributed suite (plus its gates, if requested) —
        // what the CI dist-smoke job executes.
        let dist = crate::dist_bench::run(smoke);
        match dist.write_json_at_repo_root() {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("failed to write BENCH_dist.json: {e}"),
        }
        if let Some(path) = dist_baseline {
            if let Err(msg) = crate::dist_bench::check_dist_baseline(&dist, &path) {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
        if let Some(path) = dist_telemetry_check {
            if let Err(msg) = crate::dist_bench::check_dist_telemetry_overhead(smoke, &path) {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--sim-point") {
        // Diagnostic mode: run one simulator scaling point, for A/B-ing the
        // engine without paying for the whole suite.
        let n = |k: usize| -> f64 { args[i + k].parse().expect("--sim-point WORKERS TUPLES") };
        let (w, t) = (n(1) as usize, n(2) as u64);
        let p = crate::sim_scaling::run_point(w, t);
        println!(
            "sim-point {}: {:.2}M processed/s (wall {:.3}s, virtual {:.3}s, acked {})",
            p.key,
            p.processed_per_wall_s / 1e6,
            p.wall_s,
            p.virtual_s,
            p.acked
        );
        return;
    }
    if args.iter().any(|a| a == "--sim-only") {
        // Run only the simulator sweep (plus its gate, if requested).
        let sim = crate::sim_scaling::run(smoke);
        match crate::sim_scaling::write_sim_json(&sim) {
            Ok(p) => println!("wrote {p}"),
            Err(e) => eprintln!("failed to write BENCH_sim.json: {e}"),
        }
        if let Some(path) = sim_baseline {
            let baseline_json = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read sim baseline {path}: {e}"));
            if let Err(msg) = crate::sim_scaling::check_sim_baseline(&sim.to_json(), &baseline_json)
            {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--rt-point") {
        // Diagnostic mode: repeat one rt_scaling point and print each sample,
        // for A/B-ing builds without paying for the whole suite.
        let n = |k: usize| -> f64 { args[i + k].parse().expect("--rt-point W B SECS REPS") };
        let (w, b, secs, reps) = (n(1) as usize, n(2) as usize, n(3), n(4) as usize);
        println!(
            "rt-point w{w} b{b} {secs}s x{reps} (telemetry_compiled: {})",
            dsdps::telemetry::HOT_PATH_TELEMETRY
        );
        for r in 0..reps {
            let tput = rt_scaling_throughput(w, b, secs);
            // Machine-readable line, parsed by the telemetry-overhead gate
            // when it drives the stripped reference binary.
            println!("rt_point_sample: {tput:.1}");
            println!("  rep {r}: {:>12} acked tuples/s", fmt_num(tput));
        }
        return;
    }
    let res = run(smoke);
    match res.write_json_at_repo_root() {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_kernels.json: {e}"),
    }
    match res.write_rt_json_at_repo_root() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("failed to write BENCH_rt.json: {e}"),
    }
    let recovery = crate::recovery::run(smoke);
    match recovery.write_json_at_repo_root() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("failed to write BENCH_recovery.json: {e}"),
    }
    let sim = crate::sim_scaling::run(smoke);
    match crate::sim_scaling::write_sim_json(&sim) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("failed to write BENCH_sim.json: {e}"),
    }
    let dist = crate::dist_bench::run(smoke);
    match dist.write_json_at_repo_root() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("failed to write BENCH_dist.json: {e}"),
    }
    if let Some(path) = baseline {
        if let Err(msg) = check_rt_baseline(&res, &path) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
    if overload_gate {
        if let Err(msg) = check_overload_gate(&res) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
    if recovery_gate {
        if let Err(msg) = crate::recovery::check_recovery_gate(&recovery) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
    if let Some(path) = sim_baseline {
        let baseline_json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read sim baseline {path}: {e}"));
        if let Err(msg) = crate::sim_scaling::check_sim_baseline(&sim.to_json(), &baseline_json) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
    if let Some(path) = dist_baseline {
        if let Err(msg) = crate::dist_bench::check_dist_baseline(&dist, &path) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
    if let Some(path) = telemetry_check {
        if let Err(msg) = check_telemetry_overhead(res.mode, smoke, &path) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
    if let Some(path) = dist_telemetry_check {
        if let Err(msg) = crate::dist_bench::check_dist_telemetry_overhead(smoke, &path) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results_with_overload(thr_p99: f64, unthr_p99: f64, unthr_p50: f64) -> MicroResults {
        let mut res = MicroResults::new("smoke");
        res.rt_scaling.push((1, 64, 120_000.0));
        res.rt_overload = Some(RtOverload {
            throttled_p99_us: thr_p99,
            unthrottled_p99_us: unthr_p99,
            unthrottled_p50_us: unthr_p50,
        });
        res
    }

    #[test]
    fn overload_gate_passes_when_throttle_holds_the_tail() {
        let res = results_with_overload(20_000.0, 900_000.0, 400_000.0);
        check_overload_gate(&res).unwrap();
    }

    #[test]
    fn overload_gate_fails_when_throttled_tail_blows_past_five_x_median() {
        let res = results_with_overload(2_500_000.0, 900_000.0, 400_000.0);
        let err = check_overload_gate(&res).unwrap_err();
        assert!(err.contains("exceeds"), "unexpected message: {err}");
    }

    #[test]
    fn overload_gate_fails_when_the_bench_never_overloaded() {
        let res = results_with_overload(1_000.0, 2_000.0, 1_500.0);
        let err = check_overload_gate(&res).unwrap_err();
        assert!(
            err.contains("no longer overloads"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn overload_gate_fails_without_a_measurement() {
        let res = MicroResults::new("smoke");
        assert!(check_overload_gate(&res).is_err());
    }

    #[test]
    fn rt_json_with_overload_block_still_parses_for_the_baseline_gate() {
        let res = results_with_overload(20_000.0, 900_000.0, 400_000.0);
        let json = res.rt_scaling_json();
        assert!(json.contains("\"overload_queue_wait_us\""));
        assert!(json.contains("\"throttled_p99\": 20000.0"));
        // The throughput-regression parser must keep reading the document.
        assert_eq!(rt_baseline_w1_b64(&json), Some(120_000.0));
    }

    #[test]
    fn rt_json_without_overload_block_matches_the_legacy_shape() {
        let mut res = MicroResults::new("smoke");
        res.rt_scaling.push((1, 64, 120_000.0));
        let json = res.rt_scaling_json();
        assert!(!json.contains("overload_queue_wait_us"));
        assert_eq!(rt_baseline_w1_b64(&json), Some(120_000.0));
    }
}

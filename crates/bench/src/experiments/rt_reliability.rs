//! `rt-reliability`: closed-loop reliability on the *threaded* runtime.
//!
//! The other reliability experiments run on the simulator; this one drives
//! the real thing.  A CPU-bound dynamically-grouped stage runs on OS threads
//! under an injected chaos plan — a scheduled bolt panic plus a 10× slowdown
//! of one worker mid-run (the paper's misbehaving-worker disturbance, via
//! [`FaultScenario::rt_plan_with`]) — with task supervision and end-to-end
//! replay enabled.  Two regimes are compared: no control, and the reactive
//! controller closing the loop over the runtime's metrics hook.  The output
//! table records delivery, fault-tolerance counters (panics, restarts,
//! replays, permanent failures), whether the tuple-conservation invariant
//! held, and whether the controller flagged and routed around the degraded
//! worker.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
use dsdps::config::EngineConfig;
use dsdps::rt::{self, RtConfig, RtFault};
use dsdps::scheduler::even_placement;
use dsdps::telemetry;
use dsdps::topology::{TaskId, Topology, TopologyBuilder};
use dsdps::tuple::{Tuple, Value};
use parking_lot::Mutex;
use stream_apps::faults::FaultScenario;
use stream_control::controller::{
    rt_control_hook, ControlEvent, ControlMode, Controller, ControllerConfig,
};
use stream_control::detector::DetectorConfig;

use super::{Ctx, ExpResult};
use crate::table::{f2, Table};

/// Busy-work per tuple in the worker stage, µs.
const SPIN_US: u64 = 30;

struct LoadSpout {
    next_id: u64,
}

impl Spout for LoadSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }
}

struct SpinBolt;

impl Bolt for SpinBolt {
    fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
        let until = Instant::now() + Duration::from_micros(SPIN_US);
        while Instant::now() < until {
            std::hint::spin_loop();
        }
    }
}

fn build() -> Topology {
    let mut b = TopologyBuilder::new("rt-reliability");
    b.set_spout("src", 1, || LoadSpout { next_id: 0 }).unwrap();
    b.set_bolt("work", 3, || SpinBolt)
        .unwrap()
        .dynamic_grouping("src")
        .unwrap();
    b.build().unwrap()
}

struct Timing {
    total_s: f64,
    fault: (f64, f64),
    panic_at_s: f64,
}

fn timing(ctx: &Ctx) -> Timing {
    if ctx.quick {
        Timing {
            total_s: 10.0,
            fault: (3.0, 8.0),
            panic_at_s: 1.5,
        }
    } else {
        Timing {
            total_s: 20.0,
            fault: (5.0, 15.0),
            panic_at_s: 2.0,
        }
    }
}

fn engine_config() -> EngineConfig {
    let mut cfg = EngineConfig::default().with_cluster(2, 2, 4);
    cfg.metrics_interval_s = 0.25;
    cfg.message_timeout_s = 3.0;
    cfg
}

fn rt_config() -> RtConfig {
    RtConfig::default()
        .with_max_restarts(4)
        .with_hang_timeout(Duration::from_secs(2))
        .with_max_replays(3)
        .with_replay_backoff(Duration::from_millis(50))
        .with_trace_sample_rate(0.05)
}

/// `rt-reliability`.
pub fn rt_reliability(ctx: &Ctx) -> ExpResult {
    let t = timing(ctx);
    let cfg = engine_config();

    // Placement is deterministic, so target selection can happen up front:
    // slow down the worker hosting the stage's second task, panic the first.
    let probe = build();
    let placement = even_placement(&probe, &cfg)?;
    let work_tasks: Vec<TaskId> = probe
        .component_by_name("work")
        .expect("work stage")
        .tasks()
        .collect();
    let fault_worker = placement.worker_of(work_tasks[1]);
    let panic_task = work_tasks[0].0;

    let scenario =
        FaultScenario::single_misbehaving_worker(fault_worker.0, 10.0, t.fault.0, t.fault.1);
    let plan = scenario.rt_plan_with([RtFault::TaskPanic {
        task: panic_task,
        at_s: t.panic_at_s,
    }]);

    let mut table = Table::new(
        &format!(
            "rt-reliability: threaded runtime under chaos ({}; panic task {} at {}s, 10x slowdown of {} in [{}, {}) s)",
            scenario.name, panic_task, t.panic_at_s, fault_worker, t.fault.0, t.fault.1
        ),
        &[
            "regime",
            "acked",
            "thr_t/s",
            "avg_lat_ms",
            "p99_lat_ms",
            "panics",
            "restarts",
            "replays",
            "perm_failed",
            "conserved",
            "flagged",
        ],
    );

    for reactive in [false, true] {
        let topology = build();
        let controller = Controller::for_topology(
            &topology,
            &placement,
            ControllerConfig {
                warmup_intervals: 6,
                detector: DetectorConfig {
                    trigger_factor: 2.5,
                    trigger_consecutive: 2,
                    ..DetectorConfig::default()
                },
                ..ControllerConfig::default()
            },
            if reactive {
                ControlMode::Reactive
            } else {
                ControlMode::Monitor
            },
        )?;
        let shared = Arc::new(Mutex::new(controller));
        let hook = rt_control_hook(shared.clone());
        let running =
            rt::submit_faulty(topology, cfg.clone(), rt_config(), plan.clone(), Some(hook))?;
        // The controller appends its flag/recover/reroute decisions to the
        // run's control-plane journal, cross-referencable with the sampled
        // trace via shared trace ids.
        shared.lock().attach_journal(running.journal());
        std::thread::sleep(Duration::from_secs_f64(t.total_s));
        let (_, report) = running.shutdown();

        if reactive {
            std::fs::create_dir_all(&ctx.out_dir)?;
            telemetry::journal::write_events_jsonl(
                &ctx.out_dir.join("rt-reliability-journal.jsonl"),
                &report.journal,
            )?;
            telemetry::write_chrome_trace(
                &ctx.out_dir.join("rt-reliability-trace.json"),
                &report.spans,
            )?;
            telemetry::write_spans_jsonl(
                &ctx.out_dir.join("rt-reliability-spans.jsonl"),
                &report.spans,
            )?;
        }

        let flagged = shared
            .lock()
            .events()
            .iter()
            .filter(|e| matches!(e, ControlEvent::Flagged { .. }))
            .count();
        table.row(&[
            if reactive { "reactive" } else { "no-control" }.into(),
            report.acked.to_string(),
            f2(report.acked as f64 / report.uptime_s.max(1e-9)),
            f2(report.avg_complete_latency_ms),
            f2(report.p99_complete_latency_ms),
            report.task_panics.to_string(),
            report.task_restarts.to_string(),
            report.replays.to_string(),
            report.permanently_failed.to_string(),
            if report.conservation_holds() {
                "yes"
            } else {
                "NO"
            }
            .into(),
            flagged.to_string(),
        ]);
    }
    table.save_and_print(&ctx.out_dir, "rt-reliability")?;
    Ok(())
}

//! Reliability experiments: the paper's claim 3 — "the proposed framework
//! enhances reliability by offering minor performance degradation with
//! misbehaving workers".
//!
//! Each run injects a hard slowdown on one worker that hosts a task of the
//! dynamically-grouped stage, and compares three regimes: no control
//! (vanilla engine), reactive control (threshold on observed latency) and
//! predictive control (the paper's DRNN-driven framework).

use dsdps::metrics::MetricsSnapshot;
use dsdps::scheduler::WorkerId;
use stream_apps::faults::FaultScenario;
use stream_control::controller::{ControlMode, ControllerConfig};
use stream_control::detector::DetectorConfig;
use stream_control::features::FeatureSpec;
use stream_control::predictor::{DrnnPredictor, PerformancePredictor};

use crate::harness::{
    mean_latency_ms, mean_throughput, run_controlled, run_monitored, training_scenario, App,
    ControlledRun,
};
use crate::table::{f2, pct, Table};

use super::{Ctx, ExpResult};

struct RelSetup {
    train_s: f64,
    total_s: f64,
    fault: (f64, f64),
    slowdown: f64,
}

fn setup(ctx: &Ctx) -> RelSetup {
    if ctx.quick {
        RelSetup {
            train_s: 110.0,
            total_s: 220.0,
            fault: (90.0, 170.0),
            slowdown: 10.0,
        }
    } else {
        RelSetup {
            train_s: 420.0,
            total_s: 600.0,
            fault: (240.0, 450.0),
            slowdown: 10.0,
        }
    }
}

fn controller_config() -> ControllerConfig {
    ControllerConfig {
        detector: DetectorConfig {
            trigger_factor: 2.5,
            trigger_consecutive: 2,
            recover_factor: 1.4,
            recover_consecutive: 4,
        },
        warmup_intervals: 30,
        ..ControllerConfig::default()
    }
}

/// Trains the DRNN predictor on an interference-rich fault-free run.
fn train_drnn(ctx: &Ctx, app: App, seed: u64) -> (DrnnPredictor, Vec<WorkerId>) {
    let s = setup(ctx);
    let train = run_monitored(app, s.train_s, seed, &training_scenario(4, 8, s.train_s));
    let refs: Vec<&MetricsSnapshot> = train.snapshots.iter().collect();
    let mut predictor =
        DrnnPredictor::new(super::prediction::drnn_config(ctx, FeatureSpec::full(), 1));
    predictor
        .fit(&refs, &train.stage_workers)
        .expect("DRNN training on the monitored run");
    (predictor, train.stage_workers)
}

/// One reliability comparison for `app` and `seed`.
struct RelResult {
    fault_free: ControlledRun,
    none: ControlledRun,
    reactive: ControlledRun,
    predictive: ControlledRun,
    fault: (f64, f64),
}

fn run_reliability(ctx: &Ctx, app: App, seed: u64) -> RelResult {
    let s = setup(ctx);
    let (predictor, stage_workers) = train_drnn(ctx, app, seed);
    // Fault the worker of the stage's second task: with the even scheduler
    // it hosts only that one task, so the signal is clean.
    let fault_worker = stage_workers[1.min(stage_workers.len() - 1)];
    let scenario =
        FaultScenario::single_misbehaving_worker(fault_worker.0, s.slowdown, s.fault.0, s.fault.1);
    let run = |scenario: &FaultScenario, mode: ControlMode| {
        run_controlled(
            app,
            s.total_s,
            seed,
            scenario,
            mode,
            controller_config(),
            s.fault,
        )
    };
    RelResult {
        fault_free: run(&FaultScenario::none(), ControlMode::Monitor),
        none: run(&scenario, ControlMode::Monitor),
        reactive: run(&scenario, ControlMode::Reactive),
        predictive: run(&scenario, ControlMode::Predictive(Box::new(predictor))),
        fault: s.fault,
    }
}

/// Degradation of one run vs the fault-free reference, within the fault
/// window.
struct Degradation {
    throughput_loss_pct: f64,
    latency_inflation: f64,
    p99_ms: f64,
}

fn degradation(reference: &ControlledRun, run: &ControlledRun, fault: (f64, f64)) -> Degradation {
    let (a, b) = (fault.0 as usize, fault.1 as usize);
    let ref_tp = mean_throughput(&reference.snapshots, a, b);
    let tp = mean_throughput(&run.snapshots, a, b);
    let ref_lat = mean_latency_ms(&reference.snapshots, a, b).max(1e-9);
    let lat = mean_latency_ms(&run.snapshots, a, b);
    Degradation {
        throughput_loss_pct: (1.0 - tp / ref_tp.max(1e-9)) * 100.0,
        latency_inflation: lat / ref_lat,
        p99_ms: run.window_latency.quantile(0.99).unwrap_or(0.0) / 1000.0,
    }
}

fn fig_reliability(ctx: &Ctx, app: App) -> ExpResult {
    let rel = run_reliability(ctx, app, 5);
    let runs = [
        ("fault-free", &rel.fault_free),
        ("no-control", &rel.none),
        ("reactive", &rel.reactive),
        ("predictive", &rel.predictive),
    ];

    // Time series: throughput and latency per interval per regime.
    let mut series = Table::new(
        &format!(
            "fig-reliability-{}: per-interval throughput (t/s) and latency (ms); fault in [{}, {}) s",
            app.id(),
            rel.fault.0,
            rel.fault.1
        ),
        &[
            "t_s",
            "thr_free",
            "thr_none",
            "thr_react",
            "thr_pred",
            "lat_free",
            "lat_none",
            "lat_react",
            "lat_pred",
        ],
    );
    let n = runs.iter().map(|(_, r)| r.snapshots.len()).min().unwrap();
    for i in 0..n {
        let tp: Vec<String> = runs
            .iter()
            .map(|(_, r)| f2(r.snapshots[i].topology.throughput))
            .collect();
        let lat: Vec<String> = runs
            .iter()
            .map(|(_, r)| f2(r.snapshots[i].topology.avg_complete_latency_ms))
            .collect();
        series.row(&[
            f2(runs[0].1.snapshots[i].time_s),
            tp[0].clone(),
            tp[1].clone(),
            tp[2].clone(),
            tp[3].clone(),
            lat[0].clone(),
            lat[1].clone(),
            lat[2].clone(),
            lat[3].clone(),
        ]);
    }
    series.save_and_print(&ctx.out_dir, &format!("fig-reliability-{}", app.id()))?;

    // Fault-window summary.
    let mut summary = Table::new(
        &format!("fig-reliability-{} fault-window summary", app.id()),
        &[
            "regime",
            "throughput_t/s",
            "thr_loss_vs_free",
            "avg_latency_ms",
            "p99_latency_ms",
            "flagged_workers",
        ],
    );
    let (a, b) = (rel.fault.0 as usize, rel.fault.1 as usize);
    for (label, run) in &runs {
        let d = degradation(&rel.fault_free, run, rel.fault);
        let flagged = run
            .events
            .iter()
            .filter(|e| matches!(e, stream_control::controller::ControlEvent::Flagged { .. }))
            .count();
        summary.row(&[
            label.to_string(),
            f2(mean_throughput(&run.snapshots, a, b)),
            pct(d.throughput_loss_pct),
            f2(mean_latency_ms(&run.snapshots, a, b)),
            f2(d.p99_ms),
            flagged.to_string(),
        ]);
    }
    summary.save_and_print(
        &ctx.out_dir,
        &format!("fig-reliability-{}-summary", app.id()),
    )?;

    // Control-decision audit log (reactive + predictive).
    let mut events = Table::new(
        &format!("fig-reliability-{} controller events", app.id()),
        &["regime", "t_s", "event", "detail"],
    );
    for (label, run) in [("reactive", &rel.reactive), ("predictive", &rel.predictive)] {
        for e in &run.events {
            use stream_control::controller::ControlEvent;
            match e {
                ControlEvent::Flagged {
                    interval,
                    worker,
                    latency_us,
                } => {
                    events.row(&[
                        label.into(),
                        interval.to_string(),
                        "flagged".into(),
                        format!("{worker} est={latency_us:.0}us"),
                    ]);
                }
                ControlEvent::Recovered { interval, worker } => {
                    events.row(&[
                        label.into(),
                        interval.to_string(),
                        "recovered".into(),
                        worker.to_string(),
                    ]);
                }
                ControlEvent::RatioApplied { .. } | ControlEvent::RateCapApplied { .. } => {}
            }
        }
    }
    events.save_and_print(
        &ctx.out_dir,
        &format!("fig-reliability-{}-events", app.id()),
    )?;
    Ok(())
}

/// `fig-reliability-wuc`.
pub fn fig_reliability_wuc(ctx: &Ctx) -> ExpResult {
    fig_reliability(ctx, App::UrlCount)
}

/// `fig-reliability-cq`.
pub fn fig_reliability_cq(ctx: &Ctx) -> ExpResult {
    fig_reliability(ctx, App::Cq)
}

/// `tab-degradation`: summary over seeds and both applications.
pub fn tab_degradation(ctx: &Ctx) -> ExpResult {
    let seeds: &[u64] = if ctx.quick { &[5] } else { &[5, 17, 29] };
    let mut table = Table::new(
        "tab-degradation: fault-window degradation vs fault-free (mean over seeds)",
        &[
            "app",
            "regime",
            "thr_loss_%",
            "latency_inflation_x",
            "p99_ms",
        ],
    );
    for app in [App::UrlCount, App::Cq] {
        let mut acc: Vec<(String, Vec<Degradation>)> = vec![
            ("no-control".into(), Vec::new()),
            ("reactive".into(), Vec::new()),
            ("predictive".into(), Vec::new()),
        ];
        for &seed in seeds {
            let rel = run_reliability(ctx, app, seed);
            acc[0]
                .1
                .push(degradation(&rel.fault_free, &rel.none, rel.fault));
            acc[1]
                .1
                .push(degradation(&rel.fault_free, &rel.reactive, rel.fault));
            acc[2]
                .1
                .push(degradation(&rel.fault_free, &rel.predictive, rel.fault));
        }
        for (label, ds) in &acc {
            let n = ds.len() as f64;
            table.row(&[
                app.id().to_owned(),
                label.clone(),
                f2(ds.iter().map(|d| d.throughput_loss_pct).sum::<f64>() / n),
                f2(ds.iter().map(|d| d.latency_inflation).sum::<f64>() / n),
                f2(ds.iter().map(|d| d.p99_ms).sum::<f64>() / n),
            ]);
        }
    }
    table.save_and_print(&ctx.out_dir, "tab-degradation")?;
    Ok(())
}

/// `fig-latency-cdf`: complete-latency distribution during the fault window.
pub fn fig_latency_cdf(ctx: &Ctx) -> ExpResult {
    let rel = run_reliability(ctx, App::UrlCount, 5);
    let mut table = Table::new(
        "fig-latency-cdf: complete latency CDF during the fault window (WUC)",
        &["regime", "latency_ms", "cum_fraction"],
    );
    for (label, run) in [
        ("fault-free", &rel.fault_free),
        ("no-control", &rel.none),
        ("predictive", &rel.predictive),
    ] {
        for (us, frac) in run.window_latency.cdf_points() {
            table.row(&[label.to_owned(), f2(us / 1000.0), format!("{frac:.4}")]);
        }
    }
    table.save_and_print(&ctx.out_dir, "fig-latency-cdf")?;
    Ok(())
}

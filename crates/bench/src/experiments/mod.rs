//! The per-experiment regenerators, one public function per table/figure of
//! the reconstructed evaluation (see `DESIGN.md` §4).

pub mod grouping;
pub mod policy;
pub mod prediction;
pub mod reliability;
pub mod rt_reliability;

use std::error::Error;
use std::path::PathBuf;

/// Result alias for experiment runners.
pub type ExpResult = Result<(), Box<dyn Error>>;

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Directory CSV outputs are written to.
    pub out_dir: PathBuf,
    /// Reduced durations/epochs for smoke testing.
    pub quick: bool,
}

impl Ctx {
    /// Full-fidelity context writing to `results/`.
    pub fn full() -> Self {
        Ctx {
            out_dir: PathBuf::from("results"),
            quick: false,
        }
    }

    /// Quick context for CI / integration tests.
    pub fn quick(out_dir: PathBuf) -> Self {
        Ctx {
            out_dir,
            quick: true,
        }
    }
}

/// An experiment registry entry.
pub struct Experiment {
    /// Stable id (matches DESIGN.md).
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The runner.
    pub run: fn(&Ctx) -> ExpResult,
}

/// Every regenerable table and figure.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig-pred-wuc",
            description: "DRNN vs ground-truth worker latency time series (Windowed URL Count)",
            run: prediction::fig_pred_wuc,
        },
        Experiment {
            id: "fig-pred-cq",
            description: "DRNN vs ground-truth worker latency time series (Continuous Queries)",
            run: prediction::fig_pred_cq,
        },
        Experiment {
            id: "tab-accuracy",
            description: "Prediction accuracy (MAPE/RMSE): DRNN vs ARIMA vs SVR on both apps",
            run: prediction::tab_accuracy,
        },
        Experiment {
            id: "fig-ablation",
            description: "DRNN accuracy with vs without interference (machine/co-location) features",
            run: prediction::fig_ablation,
        },
        Experiment {
            id: "fig-training",
            description: "DRNN training convergence (loss vs epoch)",
            run: prediction::fig_training,
        },
        Experiment {
            id: "fig-horizon",
            description: "Prediction error vs horizon (1..8 intervals) for all models",
            run: prediction::fig_horizon,
        },
        Experiment {
            id: "fig-dg-track",
            description: "Dynamic grouping: commanded vs observed split ratios over time",
            run: grouping::fig_dg_track,
        },
        Experiment {
            id: "fig-dg-overhead",
            description: "Dynamic grouping overhead vs shuffle/fields grouping",
            run: grouping::fig_dg_overhead,
        },
        Experiment {
            id: "fig-policy",
            description: "Split-policy ablation: uniform vs capacity-proportional under skewed load",
            run: policy::fig_policy,
        },
        Experiment {
            id: "fig-reliability-wuc",
            description: "Throughput/latency under a misbehaving worker (WUC): none vs reactive vs predictive",
            run: reliability::fig_reliability_wuc,
        },
        Experiment {
            id: "fig-reliability-cq",
            description: "Throughput/latency under a misbehaving worker (CQ)",
            run: reliability::fig_reliability_cq,
        },
        Experiment {
            id: "tab-degradation",
            description: "Degradation summary over seeds: throughput loss and latency inflation",
            run: reliability::tab_degradation,
        },
        Experiment {
            id: "fig-latency-cdf",
            description: "Complete-latency CDF during the fault window: control vs no control",
            run: reliability::fig_latency_cdf,
        },
        Experiment {
            id: "rt-reliability",
            description: "Threaded runtime under chaos (panic + slowdown): supervision, replay, reactive control",
            run: rt_reliability::rt_reliability,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_documented() {
        let reg = registry();
        assert_eq!(reg.len(), 14);
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 14, "duplicate experiment ids");
        assert!(reg.iter().all(|e| !e.description.is_empty()));
    }

    #[test]
    fn ctx_constructors() {
        let f = Ctx::full();
        assert!(!f.quick);
        let q = Ctx::quick(PathBuf::from("/tmp/x"));
        assert!(q.quick);
        assert_eq!(q.out_dir, PathBuf::from("/tmp/x"));
    }
}

//! Planner-policy ablation: `fig-policy` — capacity-proportional vs
//! uniform split under *persistent heterogeneous* machine load (no hard
//! fault).  The capacity-proportional planner continuously shifts tuples
//! toward workers on less-loaded machines, trading perfect balance for
//! lower mean service latency.

use std::sync::Arc;

use dsdps::scheduler::even_placement;
use dsdps::sim::{Fault, SimRuntime};
use stream_control::controller::{control_hook, ControlMode, Controller, ControllerConfig};
use stream_control::planner::PlanPolicy;

use crate::harness::{cluster_config, mean_latency_ms, mean_throughput, App};
use crate::table::{f2, Table};

use super::{Ctx, ExpResult};

/// `fig-policy`: latency/throughput of each split policy under skewed
/// background load.
pub fn fig_policy(ctx: &Ctx) -> ExpResult {
    let run_s = if ctx.quick { 80.0 } else { 240.0 };
    let seed = 13;

    let mut table = Table::new(
        "fig-policy: split policy under persistent heterogeneous machine load",
        &[
            "policy",
            "throughput_t/s",
            "avg_latency_ms",
            "mean_interval_p99_ms",
            "stage_latency_us",
        ],
    );

    let policies: Vec<(&str, Option<PlanPolicy>)> = vec![
        ("static uniform (no control)", None),
        ("uniform-excluding", Some(PlanPolicy::UniformExcluding)),
        (
            "capacity-proportional",
            Some(PlanPolicy::CapacityProportional { alpha: 1.0 }),
        ),
    ];

    for (label, policy) in policies {
        let topology = App::UrlCount.build(seed);
        let config = cluster_config(seed);
        let placement = even_placement(&topology, &config)?;
        let stage_workers: Vec<_> = topology
            .component_by_name("count")
            .expect("count stage")
            .tasks()
            .map(|t| placement.worker_of(t))
            .collect();
        let mut engine = SimRuntime::new(topology, config)?;
        // Persistent skewed load: machine 2 heavily loaded, machine 0
        // moderately, the rest idle.
        engine.inject_fault(Fault::ExternalLoad {
            machine: 2,
            cores: 6.0,
            from_s: 0.0,
            until_s: run_s,
        })?;
        engine.inject_fault(Fault::ExternalLoad {
            machine: 0,
            cores: 2.5,
            from_s: 0.0,
            until_s: run_s,
        })?;
        if let Some(policy) = policy {
            let controller = Controller::for_topology(
                engine.topology(),
                &placement,
                ControllerConfig {
                    policy,
                    warmup_intervals: 10,
                    // No flagging in this experiment: isolate the policy's
                    // continuous re-weighting by making triggers unreachable.
                    detector: stream_control::detector::DetectorConfig {
                        trigger_factor: 100.0,
                        ..Default::default()
                    },
                    ..ControllerConfig::default()
                },
                ControlMode::Reactive,
            )?;
            engine.add_control_hook(control_hook(Arc::new(parking_lot::Mutex::new(controller))));
        }
        engine.run_until(run_s);
        let snapshots: Vec<_> = engine.history().iter().cloned().collect();
        let from = 20usize;
        let to = run_s as usize;
        // Mean execute latency across the controlled stage's workers,
        // execution-weighted.
        let mut lat_sum = 0.0;
        let mut exec_sum = 0u64;
        for snap in &snapshots[from..] {
            for &w in &stage_workers {
                if let Some(ws) = snap.worker(w) {
                    lat_sum += ws.avg_execute_latency_us * ws.executed as f64;
                    exec_sum += ws.executed;
                }
            }
        }
        table.row(&[
            label.to_owned(),
            f2(mean_throughput(&snapshots, from, to)),
            f2(mean_latency_ms(&snapshots, from, to)),
            f2(snapshots[from..]
                .iter()
                .map(|s| s.topology.p99_complete_latency_ms)
                .sum::<f64>()
                / (snapshots.len() - from) as f64),
            f2(lat_sum / exec_sum.max(1) as f64),
        ]);
    }
    table.save_and_print(&ctx.out_dir, "fig-policy")?;
    Ok(())
}

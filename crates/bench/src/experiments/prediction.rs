//! Prediction-accuracy experiments: the paper's claim 1 — "the proposed
//! DRNN model outperforms widely used baseline solutions, ARIMA and SVR, in
//! terms of prediction accuracy".

use drnn::metrics::{mape, rmse};
use drnn::train::{EarlyStopping, TrainConfig};
use dsdps::metrics::MetricsSnapshot;
use dsdps::scheduler::WorkerId;
use forecast::ets::EtsKind;
use forecast::svr::{Kernel, SvrParams};
use rayon::prelude::*;
use stream_control::features::FeatureSpec;
use stream_control::predictor::{
    ArimaPredictor, DrnnPredictor, DrnnPredictorConfig, EtsPredictor, PerformancePredictor,
    SvrPredictor,
};

use crate::harness::{
    background_interference, run_monitored, walk_forward, walk_forward_pooled, App,
};
use crate::table::{f2, Table};

use super::{Ctx, ExpResult};

/// Durations (in metrics intervals = virtual seconds).
struct Durations {
    train: usize,
    test: usize,
}

fn durations(ctx: &Ctx) -> Durations {
    if ctx.quick {
        Durations {
            train: 160,
            test: 60,
        }
    } else {
        Durations {
            train: 420,
            test: 180,
        }
    }
}

/// DRNN predictor configuration used across the prediction experiments.
pub fn drnn_config(ctx: &Ctx, features: FeatureSpec, horizon: usize) -> DrnnPredictorConfig {
    DrnnPredictorConfig {
        features,
        lookback: 16,
        horizon,
        hidden: vec![32, 32],
        train: TrainConfig {
            epochs: if ctx.quick { 60 } else { 150 },
            batch_size: 32,
            optimizer: drnn::optim::OptimizerKind::adam(3e-3),
            validation_fraction: 0.1,
            early_stopping: Some(EarlyStopping {
                patience: 15,
                min_delta: 1e-5,
            }),
            ..TrainConfig::default()
        },
        ..DrnnPredictorConfig::default()
    }
}

fn svr_params() -> SvrParams {
    SvrParams {
        c: 10.0,
        epsilon: 0.01,
        kernel: Kernel::Rbf { gamma: 0.25 },
        max_sweeps: 200,
        tol: 1e-5,
    }
}

/// Collects an interference-rich history for `app`.
///
/// Prediction experiments use pure co-location interference (CPU-hogging
/// neighbours): this is the regime the paper's multilevel features target —
/// the machine-level signal makes the future *learnable*, which is exactly
/// what separates the DRNN from the univariate baselines (`fig-ablation`
/// quantifies it).
fn collect(ctx: &Ctx, app: App, seed: u64) -> (Vec<MetricsSnapshot>, Vec<WorkerId>) {
    let d = durations(ctx);
    let total = (d.train + d.test) as f64;
    let run = run_monitored(app, total, seed, &background_interference(4, total));
    (run.snapshots, run.stage_workers)
}

/// Fits DRNN/ARIMA/SVR on the training prefix.  The four models are
/// independent, so their fits run concurrently on the thread pool; the
/// returned order is fixed regardless of completion order.
fn fit_all(
    ctx: &Ctx,
    history: &[MetricsSnapshot],
    workers: &[WorkerId],
    train_len: usize,
    horizon: usize,
) -> Vec<Box<dyn PerformancePredictor + Send + Sync>> {
    let train_refs: Vec<&MetricsSnapshot> = history[..train_len].iter().collect();
    let make = |i: usize| -> Box<dyn PerformancePredictor + Send + Sync> {
        match i {
            0 => Box::new(DrnnPredictor::new(drnn_config(
                ctx,
                FeatureSpec::full(),
                horizon,
            ))),
            1 => Box::new(ArimaPredictor::new(horizon, 3, 1, 2)),
            2 => Box::new(SvrPredictor::new(horizon, 12, svr_params())),
            // Extension beyond the paper's baseline pair.
            _ => Box::new(EtsPredictor::new(horizon, EtsKind::Holt)),
        }
    };
    (0..4usize)
        .into_par_iter()
        .map(|i| {
            let mut m = make(i);
            m.fit(&train_refs, workers)
                .unwrap_or_else(|e| panic!("{} fit failed: {e}", m.name()));
            m
        })
        .collect()
}

fn fig_pred(ctx: &Ctx, app: App) -> ExpResult {
    let d = durations(ctx);
    let (history, workers) = collect(ctx, app, 11);
    let models = fit_all(ctx, &history, &workers, d.train, 1);
    let worker = workers[0];

    // Time series of actual vs each model's prediction on the test range.
    let mut header: Vec<String> = vec!["t_s".into(), "actual".into()];
    header.extend(models.iter().map(|m| m.name().to_lowercase()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!(
            "fig-pred-{}: worker {} latency, actual vs predicted (µs)",
            app.id(),
            worker
        ),
        &header_refs,
    );
    let results: Vec<(Vec<f64>, Vec<f64>)> = models
        .iter()
        .map(|m| walk_forward(m.as_ref(), &history, worker, d.train))
        .collect();
    let n = results[0].0.len();
    assert!(results.iter().all(|(a, _)| a.len() == n));
    for i in 0..n {
        let mut row = vec![format!("{}", d.train + i), f2(results[0].0[i])];
        row.extend(results.iter().map(|(_, p)| f2(p[i])));
        table.row(&row);
    }
    table.save_and_print(&ctx.out_dir, &format!("fig-pred-{}", app.id()))?;

    let mut summary = Table::new(
        &format!("fig-pred-{} summary (worker {worker})", app.id()),
        &["model", "MAPE_%", "RMSE_us"],
    );
    for (m, (a, p)) in models.iter().zip(&results) {
        summary.row(&[m.name(), f2(mape(a, p)), f2(rmse(a, p))]);
    }
    summary.save_and_print(&ctx.out_dir, &format!("fig-pred-{}-summary", app.id()))?;
    Ok(())
}

/// `fig-pred-wuc`: prediction time series on Windowed URL Count.
pub fn fig_pred_wuc(ctx: &Ctx) -> ExpResult {
    fig_pred(ctx, App::UrlCount)
}

/// `fig-pred-cq`: prediction time series on Continuous Queries.
pub fn fig_pred_cq(ctx: &Ctx) -> ExpResult {
    fig_pred(ctx, App::Cq)
}

/// `tab-accuracy`: pooled MAPE/RMSE per model per application.
pub fn tab_accuracy(ctx: &Ctx) -> ExpResult {
    let d = durations(ctx);
    let mut table = Table::new(
        "tab-accuracy: prediction accuracy, DRNN vs ARIMA vs SVR",
        &["app", "model", "MAPE_%", "RMSE_us", "n_points"],
    );
    for app in [App::UrlCount, App::Cq] {
        let (history, workers) = collect(ctx, app, 23);
        let models = fit_all(ctx, &history, &workers, d.train, 1);
        for m in &models {
            let (a, p) = walk_forward_pooled(m.as_ref(), &history, &workers, d.train);
            table.row(&[
                app.id().to_owned(),
                m.name(),
                f2(mape(&a, &p)),
                f2(rmse(&a, &p)),
                a.len().to_string(),
            ]);
        }
    }
    table.save_and_print(&ctx.out_dir, "tab-accuracy")?;
    Ok(())
}

/// `fig-ablation`: the value of the interference features.
pub fn fig_ablation(ctx: &Ctx) -> ExpResult {
    let d = durations(ctx);
    let mut table = Table::new(
        "fig-ablation: DRNN features with vs without interference signals",
        &["app", "features", "MAPE_%", "RMSE_us"],
    );
    for app in [App::UrlCount, App::Cq] {
        let (history, workers) = collect(ctx, app, 31);
        let train_refs: Vec<&MetricsSnapshot> = history[..d.train].iter().collect();
        for (label, spec) in [
            ("full (multilevel)", FeatureSpec::full()),
            ("worker-only", FeatureSpec::worker_only()),
        ] {
            let mut m = DrnnPredictor::new(drnn_config(ctx, spec, 1));
            m.fit(&train_refs, &workers)?;
            let (a, p) = walk_forward_pooled(&m, &history, &workers, d.train);
            table.row(&[
                app.id().to_owned(),
                label.to_owned(),
                f2(mape(&a, &p)),
                f2(rmse(&a, &p)),
            ]);
        }
    }
    table.save_and_print(&ctx.out_dir, "fig-ablation")?;
    Ok(())
}

/// `fig-training`: loss vs epoch of the DRNN fit.
pub fn fig_training(ctx: &Ctx) -> ExpResult {
    let d = durations(ctx);
    let (history, workers) = collect(ctx, App::UrlCount, 11);
    let train_refs: Vec<&MetricsSnapshot> = history[..d.train].iter().collect();
    let mut m = DrnnPredictor::new(drnn_config(ctx, FeatureSpec::full(), 1));
    m.fit(&train_refs, &workers)?;
    let report = m.last_report().expect("fit produces a report");
    let mut table = Table::new(
        "fig-training: DRNN training convergence (normalized MSE)",
        &["epoch", "train_loss", "val_loss"],
    );
    for (i, &tl) in report.train_loss.iter().enumerate() {
        let vl = report
            .val_loss
            .get(i)
            .map(|v| format!("{v:.6}"))
            .unwrap_or_default();
        table.row(&[i.to_string(), format!("{tl:.6}"), vl]);
    }
    table.save_and_print(&ctx.out_dir, "fig-training")?;
    Ok(())
}

/// `fig-horizon`: MAPE vs prediction horizon.
pub fn fig_horizon(ctx: &Ctx) -> ExpResult {
    let d = durations(ctx);
    let (history, workers) = collect(ctx, App::UrlCount, 47);
    let horizons: &[usize] = if ctx.quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut table: Option<Table> = None;
    for &h in horizons {
        let models = fit_all(ctx, &history, &workers, d.train, h);
        let table = table.get_or_insert_with(|| {
            let mut header: Vec<String> = vec!["horizon".into()];
            header.extend(models.iter().map(|m| m.name().to_lowercase()));
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            Table::new(
                "fig-horizon: MAPE (%) vs prediction horizon (intervals), WUC",
                &header_refs,
            )
        });
        let mut row = vec![h.to_string()];
        row.extend(models.iter().map(|m| {
            let (a, p) = walk_forward_pooled(m.as_ref(), &history, &workers, d.train);
            f2(mape(&a, &p))
        }));
        table.row(&row);
    }
    table
        .expect("at least one horizon")
        .save_and_print(&ctx.out_dir, "fig-horizon")?;
    Ok(())
}

//! Dynamic-grouping experiments: the paper's claim 2 — "dynamic grouping
//! works as expected" — split-ratio tracking and overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
use dsdps::config::EngineConfig;
use dsdps::grouping::dynamic::{DynamicGrouping, DynamicGroupingHandle, SplitRatio};
use dsdps::grouping::partial_key::PartialKeyGrouping;
use dsdps::grouping::{FieldsGrouping, Grouping, ShuffleGrouping};
use dsdps::sim::SimRuntime;
use dsdps::stream::StreamId;
use dsdps::topology::{CostModel, Topology, TopologyBuilder};
use dsdps::tuple::{Fields, Tuple, Value};

use crate::table::{f2, f4, Table};

use super::{Ctx, ExpResult};

/// Steady spout emitting `rate` tuples/s with sequential keys.
struct SteadySpout {
    rate: f64,
    emitted: u64,
    next_id: u64,
}

impl Spout for SteadySpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        let due = (out.now_s() * self.rate) as u64;
        let batch = (due.saturating_sub(self.emitted)).min(32);
        for _ in 0..batch {
            self.emitted += 1;
            self.next_id += 1;
            out.emit_with_id(
                Tuple::with_fields(
                    [
                        Value::from(format!("k{}", self.next_id % 64)),
                        Value::from(self.next_id as i64),
                    ],
                    Fields::new(["key", "seq"]),
                ),
                self.next_id,
            );
        }
        true
    }
}

/// Sink that counts per-task arrivals.
struct CountingSink {
    hits: Arc<Vec<AtomicU64>>,
    my_index: usize,
}

impl Bolt for CountingSink {
    fn prepare(&mut self, ctx: &dsdps::component::TopologyContext) {
        self.my_index = ctx.task_index;
    }
    fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
        self.hits[self.my_index].fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeGrouping {
    Shuffle,
    Fields,
    Dynamic,
}

fn micro_topology(
    grouping: EdgeGrouping,
    rate: f64,
    fan_out: usize,
) -> (Topology, Arc<Vec<AtomicU64>>) {
    let hits: Arc<Vec<AtomicU64>> = Arc::new((0..fan_out).map(|_| AtomicU64::new(0)).collect());
    let h = hits.clone();
    let mut b = TopologyBuilder::new("micro");
    b.set_spout("src", 1, move || SteadySpout {
        rate,
        emitted: 0,
        next_id: 0,
    })
    .unwrap()
    .output_fields(Fields::new(["key", "seq"]))
    .cost(CostModel {
        base_service_time_us: 5.0,
        jitter: 0.0,
    });
    {
        let mut sink = b
            .set_bolt("sink", fan_out, move || CountingSink {
                hits: h.clone(),
                my_index: 0,
            })
            .unwrap();
        sink.cost(CostModel {
            base_service_time_us: 30.0,
            jitter: 0.0,
        });
        match grouping {
            EdgeGrouping::Shuffle => sink.shuffle_grouping("src").unwrap(),
            EdgeGrouping::Fields => sink.fields_grouping("src", &["key"]).unwrap(),
            EdgeGrouping::Dynamic => sink.dynamic_grouping("src").unwrap(),
        };
    }
    (b.build().unwrap(), hits)
}

/// `fig-dg-track`: command a sequence of split ratios mid-run and measure
/// the fraction each task actually receives per interval.
pub fn fig_dg_track(ctx: &Ctx) -> ExpResult {
    let fan_out = 4;
    let phase_s = if ctx.quick { 5.0 } else { 10.0 };
    let (topology, _hits) = micro_topology(EdgeGrouping::Dynamic, 2000.0, fan_out);
    let handle: DynamicGroupingHandle = topology
        .dynamic_handle("src", &StreamId::default(), "sink")
        .expect("dynamic edge");
    let mut engine = SimRuntime::new(topology, EngineConfig::default().with_cluster(2, 2, 4))?;

    // Phase schedule: uniform → skewed → bypass task 2 → back to uniform.
    let phases: Vec<(String, SplitRatio)> = vec![
        ("uniform".into(), SplitRatio::uniform(fan_out)),
        (
            "skewed 40/30/20/10".into(),
            SplitRatio::new(vec![0.4, 0.3, 0.2, 0.1])?,
        ),
        (
            "bypass task2".into(),
            SplitRatio::new(vec![1.0, 1.0, 0.0, 1.0])?,
        ),
        ("uniform again".into(), SplitRatio::uniform(fan_out)),
    ];

    let mut table = Table::new(
        "fig-dg-track: commanded vs observed per-task tuple share",
        &["t_s", "phase", "task", "commanded", "observed", "abs_err"],
    );
    let mut max_err_after_settle: f64 = 0.0;
    for (p, (label, ratio)) in phases.iter().enumerate() {
        handle.set_ratio(ratio.clone())?;
        let t_end = (p + 1) as f64 * phase_s;
        engine.run_until(t_end);
        // Per-interval observed shares from the task stats (sink tasks are
        // tasks 1..=fan_out).
        let snaps: Vec<_> = engine.history().iter().cloned().collect();
        let start_interval = (p as f64 * phase_s) as usize;
        for snap in snaps.iter().skip(start_interval) {
            let sink: Vec<u64> = snap.tasks[1..=fan_out].iter().map(|t| t.executed).collect();
            let total: u64 = sink.iter().sum();
            if total == 0 {
                continue;
            }
            for (task, &n) in sink.iter().enumerate() {
                let observed = n as f64 / total as f64;
                let commanded = ratio.get(task);
                let err = (observed - commanded).abs();
                // Skip the settling interval right after the switch.
                if snap.time_s > p as f64 * phase_s + 1.5 {
                    max_err_after_settle = max_err_after_settle.max(err);
                }
                table.row(&[
                    f2(snap.time_s),
                    label.clone(),
                    task.to_string(),
                    f4(commanded),
                    f4(observed),
                    f4(err),
                ]);
            }
        }
    }
    table.save_and_print(&ctx.out_dir, "fig-dg-track")?;
    println!(
        "max |observed - commanded| after settling: {:.4} (expected < 0.03)\n",
        max_err_after_settle
    );
    Ok(())
}

/// Measures nanoseconds per routing decision for one grouping router.
fn ns_per_decision(g: &mut dyn Grouping, iters: u64) -> f64 {
    let tuple = Tuple::with_fields(
        [Value::from("k17"), Value::from(17i64)],
        Fields::new(["key", "seq"]),
    );
    let mut out = Vec::with_capacity(4);
    let start = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        out.clear();
        g.select(&tuple, &mut out);
        sink = sink.wrapping_add(out.first().copied().unwrap_or(0));
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    std::hint::black_box(sink);
    elapsed / iters as f64
}

/// `fig-dg-overhead`: end-to-end throughput/latency parity plus per-decision
/// routing cost of dynamic grouping vs shuffle and fields.
pub fn fig_dg_overhead(ctx: &Ctx) -> ExpResult {
    let run_s = if ctx.quick { 10.0 } else { 30.0 };
    let mut table = Table::new(
        "fig-dg-overhead: end-to-end cost of each grouping (identical pipeline)",
        &[
            "grouping",
            "throughput_t/s",
            "avg_latency_ms",
            "p99_latency_ms",
        ],
    );
    for (label, grouping) in [
        ("shuffle", EdgeGrouping::Shuffle),
        ("fields", EdgeGrouping::Fields),
        ("dynamic(uniform)", EdgeGrouping::Dynamic),
    ] {
        let (topology, _) = micro_topology(grouping, 2000.0, 4);
        let mut engine = SimRuntime::new(topology, EngineConfig::default().with_cluster(2, 2, 4))?;
        let report = engine.run_until(run_s);
        table.row(&[
            label.to_owned(),
            f2(report.avg_throughput),
            f2(report.avg_complete_latency_ms),
            f2(report.p99_complete_latency_ms),
        ]);
    }
    table.save_and_print(&ctx.out_dir, "fig-dg-overhead")?;

    // Per-decision routing cost (real CPU time, not simulated).
    let iters = if ctx.quick { 200_000 } else { 2_000_000 };
    let schema = Fields::new(["key", "seq"]);
    let mut decision = Table::new(
        "fig-dg-overhead: per-tuple routing decision cost",
        &["grouping", "ns_per_decision"],
    );
    let mut shuffle = ShuffleGrouping::new(4, 0);
    decision.row(&["shuffle".into(), f2(ns_per_decision(&mut shuffle, iters))]);
    let mut fields = FieldsGrouping::new(4, &["key".into()], &schema).expect("field exists");
    decision.row(&["fields".into(), f2(ns_per_decision(&mut fields, iters))]);
    let handle = DynamicGroupingHandle::new(SplitRatio::uniform(4));
    let mut dynamic = DynamicGrouping::new(handle);
    decision.row(&["dynamic".into(), f2(ns_per_decision(&mut dynamic, iters))]);
    let mut pkg = PartialKeyGrouping::new(4, &["key".into()], &schema).expect("field exists");
    decision.row(&["partial-key".into(), f2(ns_per_decision(&mut pkg, iters))]);
    decision.save_and_print(&ctx.out_dir, "fig-dg-overhead-decision")?;
    Ok(())
}

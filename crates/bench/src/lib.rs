//! # bench — the evaluation harness
//!
//! Regenerates every table and figure of the reconstructed evaluation (see
//! `DESIGN.md` §4) and hosts the criterion microbenchmarks.
//!
//! * [`harness`] — builds the two applications, runs monitored/controlled
//!   simulations, walk-forward predictor evaluation;
//! * [`experiments`] — one runner per table/figure, with a registry the
//!   `experiments` binary dispatches on;
//! * [`table`] — aligned text tables + CSV output under `results/`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p bench --release --bin experiments -- all
//! ```

#![warn(missing_docs)]

pub mod dist_bench;
pub mod experiments;
pub mod harness;
pub mod micro;
pub mod recovery;
pub mod sim_scaling;
pub mod table;

//! Experiment regenerator CLI.
//!
//! ```text
//! experiments list              # show every experiment id
//! experiments all [--quick]     # regenerate everything
//! experiments <id> [<id>...]    # regenerate specific tables/figures
//! experiments --out DIR ...     # change the results directory
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use bench::experiments::{registry, Ctx};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results");
    let mut quick = false;

    if let Some(pos) = args.iter().position(|a| a == "--out") {
        if pos + 1 >= args.len() {
            eprintln!("--out requires a directory");
            return ExitCode::FAILURE;
        }
        out_dir = PathBuf::from(args.remove(pos + 1));
        args.remove(pos);
    }
    if let Some(pos) = args.iter().position(|a| a == "--quick") {
        quick = true;
        args.remove(pos);
    }

    let reg = registry();
    if args.is_empty() || args[0] == "list" {
        println!("available experiments (see DESIGN.md §4):");
        for e in &reg {
            println!("  {:20} {}", e.id, e.description);
        }
        println!("  {:20} run every experiment", "all");
        return ExitCode::SUCCESS;
    }

    let ctx = Ctx { out_dir, quick };
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        reg.iter().map(|e| e.id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in selected {
        let Some(exp) = reg.iter().find(|e| e.id == id) else {
            eprintln!("unknown experiment `{id}` — run `experiments list`");
            return ExitCode::FAILURE;
        };
        println!("\n### {} — {}\n", exp.id, exp.description);
        let started = std::time::Instant::now();
        if let Err(e) = (exp.run)(&ctx) {
            eprintln!("experiment {id} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "[{} done in {:.1}s]",
            exp.id,
            started.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}

//! Default `cargo run -p bench` binary: runs the kernel microbenchmarks
//! and writes `BENCH_kernels.json` at the repository root.  Pass `--test`
//! for the fast smoke pass.

fn main() {
    bench::micro::main_entry();
}

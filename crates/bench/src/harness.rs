//! Shared experiment machinery: building the two applications, running
//! monitored / controlled simulations, and walk-forward predictor
//! evaluation.

use std::sync::Arc;

use parking_lot::Mutex;
use rayon::prelude::*;

use dsdps::config::EngineConfig;
use dsdps::metrics::{LatencyHistogram, MetricsSnapshot};
use dsdps::scheduler::{even_placement, Placement, WorkerId};
use dsdps::sim::{RunReport, SimRuntime};
use dsdps::topology::Topology;
use stream_apps::continuous_queries::{build_continuous_queries, CqConfig};
use stream_apps::faults::FaultScenario;
use stream_apps::url_count::{build_url_count, UrlCountConfig};
use stream_apps::workload::RatePattern;
use stream_control::controller::{
    control_hook, ControlEvent, ControlMode, Controller, ControllerConfig,
};
use stream_control::predictor::PerformancePredictor;

/// Which evaluation application to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Windowed URL Count.
    UrlCount,
    /// Continuous Queries.
    Cq,
}

impl App {
    /// Short id used in file names.
    pub fn id(&self) -> &'static str {
        match self {
            App::UrlCount => "wuc",
            App::Cq => "cq",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            App::UrlCount => "Windowed URL Count",
            App::Cq => "Continuous Queries",
        }
    }

    /// Builds the topology with the experiment defaults and a seed.
    pub fn build(&self, seed: u64) -> Topology {
        match self {
            App::UrlCount => {
                let cfg = UrlCountConfig {
                    pattern: RatePattern::paper_default(900.0),
                    seed,
                    // Costs sized so the count stage runs at meaningful
                    // utilization: interference and slowdowns then translate
                    // into visible latency/throughput effects.
                    parse_cost_us: 60.0,
                    count_cost_us: 600.0,
                    ..UrlCountConfig::default()
                };
                build_url_count(&cfg).expect("valid topology").0
            }
            App::Cq => {
                let cfg = CqConfig {
                    pattern: RatePattern::paper_default(800.0),
                    seed,
                    query_cost_us: 600.0,
                    ..CqConfig::default()
                };
                build_continuous_queries(&cfg).expect("valid topology").0
            }
        }
    }

    /// Name of the controlled (dynamically grouped) stage.
    pub fn controlled_stage(&self) -> &'static str {
        match self {
            App::UrlCount => "count",
            App::Cq => "query",
        }
    }
}

/// The experiment cluster: 4 machines × 2 workers × 4 cores.
pub fn cluster_config(seed: u64) -> EngineConfig {
    EngineConfig::default()
        .with_cluster(4, 2, 4)
        .with_seed(seed)
}

/// Background interference used by the prediction experiments: staggered
/// CPU-hog pulses on every machine, so per-worker latency is driven by the
/// co-location signal the DRNN features capture.
pub fn background_interference(machines: usize, until_s: f64) -> FaultScenario {
    let mut faults = Vec::new();
    for m in 0..machines {
        let period = 40.0 + 7.0 * m as f64;
        let on = 14.0 + 2.0 * m as f64;
        let mut t = 10.0 + 9.0 * m as f64;
        while t + on < until_s {
            // 6–9 cores on a 4-core machine: pressure 1.5–2.3, service-time
            // multiplier ~2.5–6 — a strong, learnable co-location signal.
            faults.push(dsdps::sim::Fault::ExternalLoad {
                machine: m,
                cores: 6.0 + m as f64,
                from_s: t,
                until_s: t + on,
            });
            t += period;
        }
    }
    FaultScenario {
        name: "background-interference".into(),
        faults,
    }
}

/// Training scenario for the predictors: background interference plus short
/// staggered slowdown pulses on every worker, so the model sees the
/// *degraded-worker* feature regime (low throughput + high latency) it must
/// recognize at control time — the paper's training data likewise contains
/// misbehaving-worker episodes.
pub fn training_scenario(machines: usize, workers: usize, until_s: f64) -> FaultScenario {
    let mut scenario = background_interference(machines, until_s);
    for w in 0..workers {
        let period = workers as f64 * 16.0;
        let mut t = 12.0 + 16.0 * w as f64;
        while t + 10.0 < until_s {
            scenario.faults.push(dsdps::sim::Fault::WorkerSlowdown {
                worker: w,
                factor: 10.0,
                from_s: t,
                until_s: t + 10.0,
            });
            t += period;
        }
    }
    scenario.name = "training-interference".into();
    scenario
}

/// Result of a monitored (uncontrolled) run.
pub struct MonitoredRun {
    /// Snapshots, one per metrics interval.
    pub snapshots: Vec<MetricsSnapshot>,
    /// Final run report.
    pub report: RunReport,
    /// The placement used.
    pub placement: Placement,
    /// Workers hosting the controlled stage's tasks.
    pub stage_workers: Vec<WorkerId>,
}

/// Runs `app` for `seconds` of virtual time with `scenario` injected and no
/// control, collecting all metrics snapshots.
pub fn run_monitored(app: App, seconds: f64, seed: u64, scenario: &FaultScenario) -> MonitoredRun {
    let topology = app.build(seed);
    let config = cluster_config(seed);
    let placement = even_placement(&topology, &config).expect("placement");
    let stage_workers = stage_workers(&topology, &placement, app.controlled_stage());
    let mut engine = SimRuntime::new(topology, config).expect("engine");
    scenario.apply(&mut engine).expect("valid scenario");
    let report = engine.run_until(seconds);
    MonitoredRun {
        snapshots: engine.history().iter().cloned().collect(),
        report,
        placement,
        stage_workers,
    }
}

/// Workers hosting the tasks of `stage`, sorted.
pub fn stage_workers(topology: &Topology, placement: &Placement, stage: &str) -> Vec<WorkerId> {
    let component = topology
        .component_by_name(stage)
        .unwrap_or_else(|| panic!("no component `{stage}`"));
    let mut workers: Vec<WorkerId> = component.tasks().map(|t| placement.worker_of(t)).collect();
    workers.sort();
    workers.dedup();
    workers
}

/// Result of a controlled run.
pub struct ControlledRun {
    /// Snapshots, one per metrics interval.
    pub snapshots: Vec<MetricsSnapshot>,
    /// Final run report.
    pub report: RunReport,
    /// Controller audit log.
    pub events: Vec<ControlEvent>,
    /// Complete-latency distribution (µs) restricted to `[window.0, window.1)`.
    pub window_latency: LatencyHistogram,
    /// The control-mode name.
    pub mode: String,
}

/// Runs `app` for `seconds` with `scenario` injected and a controller in
/// `mode` attached.  `window` bounds the fault window whose latency
/// distribution is captured for the CDF figure.
pub fn run_controlled(
    app: App,
    seconds: f64,
    seed: u64,
    scenario: &FaultScenario,
    mode: ControlMode,
    controller_config: ControllerConfig,
    window: (f64, f64),
) -> ControlledRun {
    let topology = app.build(seed);
    let config = cluster_config(seed);
    let placement = even_placement(&topology, &config).expect("placement");
    let controller = Controller::for_topology(&topology, &placement, controller_config, mode)
        .expect("controller");
    let mode_name = controller.mode_name();
    let controller = Arc::new(Mutex::new(controller));

    let mut engine = SimRuntime::new(topology, config).expect("engine");
    scenario.apply(&mut engine).expect("valid scenario");
    engine.add_control_hook(control_hook(controller.clone()));

    engine.run_until(window.0);
    let before = engine.complete_latency_histogram();
    engine.run_until(window.1);
    let after = engine.complete_latency_histogram();
    let report = engine.run_until(seconds);

    let snapshots: Vec<MetricsSnapshot> = engine.history().iter().cloned().collect();
    let events = controller.lock().events().to_vec();
    ControlledRun {
        snapshots,
        report,
        events,
        window_latency: after.diff(&before),
        mode: mode_name,
    }
}

/// Walk-forward one-model evaluation on a snapshot history.
///
/// For every test interval `t` the model predicts from `history[..=t]` and
/// is scored against the actual latency of `worker` at `t + horizon`.
/// Returns `(actuals, predictions)` aligned by index.
pub fn walk_forward(
    predictor: &dyn PerformancePredictor,
    history: &[MetricsSnapshot],
    worker: WorkerId,
    test_start: usize,
) -> (Vec<f64>, Vec<f64>) {
    let horizon = predictor.horizon();
    let mut actuals = Vec::new();
    let mut preds = Vec::new();
    for t in test_start..history.len().saturating_sub(horizon) {
        let refs: Vec<&MetricsSnapshot> = history[..=t].iter().collect();
        let Some(pred) = predictor.predict(&refs, worker) else {
            continue;
        };
        let Some(actual) = history[t + horizon].worker_avg_latency_us(worker) else {
            continue;
        };
        actuals.push(actual);
        preds.push(pred);
    }
    (actuals, preds)
}

/// Pools walk-forward results over several workers.
///
/// Each worker's walk is independent, so they fan out across the thread
/// pool; per-worker results are concatenated in `workers` order, keeping
/// the output identical to the serial version.
pub fn walk_forward_pooled(
    predictor: &(dyn PerformancePredictor + Sync),
    history: &[MetricsSnapshot],
    workers: &[WorkerId],
    test_start: usize,
) -> (Vec<f64>, Vec<f64>) {
    let per_worker: Vec<(Vec<f64>, Vec<f64>)> = (0..workers.len())
        .into_par_iter()
        .map(|i| walk_forward(predictor, history, workers[i], test_start))
        .collect();
    let mut actuals = Vec::new();
    let mut preds = Vec::new();
    for (a, p) in per_worker {
        actuals.extend(a);
        preds.extend(p);
    }
    (actuals, preds)
}

/// Mean throughput (acked tuples/s) over the snapshot range `[from, to)`
/// in interval indices.
pub fn mean_throughput(snapshots: &[MetricsSnapshot], from: usize, to: usize) -> f64 {
    let slice = &snapshots[from.min(snapshots.len())..to.min(snapshots.len())];
    if slice.is_empty() {
        return 0.0;
    }
    slice.iter().map(|s| s.topology.throughput).sum::<f64>() / slice.len() as f64
}

/// Mean complete latency (ms) over the snapshot range, weighted by acks.
pub fn mean_latency_ms(snapshots: &[MetricsSnapshot], from: usize, to: usize) -> f64 {
    let slice = &snapshots[from.min(snapshots.len())..to.min(snapshots.len())];
    let acked: u64 = slice.iter().map(|s| s.topology.acked).sum();
    if acked == 0 {
        return 0.0;
    }
    slice
        .iter()
        .map(|s| s.topology.avg_complete_latency_ms * s.topology.acked as f64)
        .sum::<f64>()
        / acked as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitored_run_collects_expected_snapshots() {
        let run = run_monitored(App::UrlCount, 12.0, 1, &FaultScenario::none());
        assert_eq!(run.snapshots.len(), 12);
        assert!(run.report.acked > 1000);
        assert!(!run.stage_workers.is_empty());
        // Default cluster: 8 workers.
        assert!(run.stage_workers.iter().all(|w| w.0 < 8));
    }

    #[test]
    fn both_apps_build_and_expose_controlled_stage() {
        for app in [App::UrlCount, App::Cq] {
            let topo = app.build(3);
            assert!(topo.component_by_name(app.controlled_stage()).is_some());
            assert!(!app.id().is_empty());
            assert!(!app.name().is_empty());
        }
    }

    #[test]
    fn background_interference_is_valid_and_staggered() {
        let s = background_interference(4, 200.0);
        assert!(s.faults.len() > 10);
        assert!(s.faults.iter().all(dsdps::sim::Fault::is_valid));
        assert!(s.faults.iter().all(|f| f.until_s() <= 200.0));
    }

    #[test]
    fn interference_moves_worker_execute_latency() {
        let calm = run_monitored(App::Cq, 60.0, 5, &FaultScenario::none());
        let noisy = run_monitored(App::Cq, 60.0, 5, &background_interference(4, 60.0));
        // Mean execute latency of the controlled stage's workers — the
        // quantity the DRNN predicts.
        let lat = |run: &MonitoredRun| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for snap in &run.snapshots[10..] {
                for &w in &run.stage_workers {
                    if let Some(l) = snap.worker_avg_latency_us(w) {
                        sum += l;
                        n += 1;
                    }
                }
            }
            sum / n as f64
        };
        assert!(
            lat(&noisy) > lat(&calm) * 1.3,
            "interference must raise execute latency: {} vs {}",
            lat(&noisy),
            lat(&calm)
        );
    }

    #[test]
    fn throughput_and_latency_helpers() {
        let run = run_monitored(App::UrlCount, 10.0, 2, &FaultScenario::none());
        let tp = mean_throughput(&run.snapshots, 2, 10);
        assert!(tp > 100.0, "throughput {tp}");
        assert!(mean_latency_ms(&run.snapshots, 2, 10) > 0.0);
        assert_eq!(mean_throughput(&run.snapshots, 20, 30), 0.0);
    }
}

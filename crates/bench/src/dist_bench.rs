//! Distributed-runtime benchmarks (`dist_scaling`): the compact binary wire
//! codec against its JSON reference, multi-process throughput scaling, and
//! a kill-one-worker recovery point.
//!
//! Three measurements feed `BENCH_dist.json` (`bench_dist/v1`) at the
//! repository root:
//!
//! * **codec** — encode+decode round-trip time of a `TupleBatch` frame
//!   through the hand-rolled binary codec versus the serde-shim JSON
//!   baseline ([`dsdps::dist::codec::json`]), at batch sizes 1 and 64.
//!   The CI gate requires the binary codec to win by **≥ 5×** at batch 64
//!   (the acceptance criterion of the wire-codec work), alongside the
//!   serialized-size comparison.
//! * **dist_scaling** — acked-tuples/s of a `spout → relay ×W → sink ×W`
//!   shuffle pipeline run on the multi-process backend at worker counts
//!   {1, 2, 4} × batch sizes {1, 64}, keyed `"w{W}_b{B}"` exactly like the
//!   threaded sweep in `BENCH_rt.json` so the two backends are directly
//!   comparable.
//! * **recovery** — a paced run into a checkpointed counting bolt whose
//!   worker process is SIGKILLed mid-stream; records kill→`state_restored`
//!   wall clock, respawns, restores and whether every message was still
//!   acked with conservation intact.
//!
//! The bench binary is its own worker fleet: `main_entry` calls
//! [`maybe_worker`] first, so a re-exec of the current executable with
//! `DSDPS_DIST_ADDR` set turns into a worker instead of re-running the
//! suite ([`dsdps::dist::self_worker_cmd`]).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput, TopologyContext};
use dsdps::config::EngineConfig;
use dsdps::dist::{self, codec, DistConfig, TopologyRegistry};
use dsdps::error::Result;
use dsdps::rt::{RecoveryMode, RtConfig, SnapshotKind, StateSnapshot, StatefulComponent};
use dsdps::topology::{Topology, TopologyBuilder};
use dsdps::tuple::{Tuple, Value};

/// Codec round-trip measurements at one batch size.
pub struct CodecPoint {
    /// Tuples per `TupleBatch` frame.
    pub batch: usize,
    /// Binary encode+decode round trip, ns per frame.
    pub binary_ns: f64,
    /// JSON-reference encode+decode round trip, ns per frame.
    pub json_ns: f64,
    /// Serialized frame body size, bytes (binary).
    pub binary_bytes: usize,
    /// Serialized frame size, bytes (JSON text).
    pub json_bytes: usize,
}

impl CodecPoint {
    /// JSON-time over binary-time: how many times faster the binary codec
    /// round-trips the same frame.
    pub fn speedup(&self) -> f64 {
        self.json_ns / self.binary_ns
    }
}

/// Kill-one-worker recovery measurements.
pub struct DistRecovery {
    /// Worker processes in the fleet.
    pub workers: usize,
    /// Wall clock from the SIGKILL to the replacement's `state_restored`
    /// journal event, milliseconds.
    pub kill_to_restore_ms: f64,
    /// Worker respawns performed by the supervisor.
    pub worker_restarts: u64,
    /// Checkpoint restores performed by restarted workers.
    pub restores: u64,
    /// Messages acked by the end of the run.
    pub acked: u64,
    /// Messages the spout emitted (the target).
    pub expected: u64,
    /// Whether `tracked == acked + permanently_failed + in_flight` held at
    /// shutdown.
    pub conservation: bool,
}

/// Collected measurements of one `dist_scaling` bench run.
pub struct DistResults {
    /// `"smoke"` or `"full"`.
    pub mode: &'static str,
    /// Codec round-trip points, one per batch size.
    pub codec: Vec<CodecPoint>,
    /// `(workers, batch_size, acked tuples/s)` of the multi-process sweep.
    pub scaling: Vec<(usize, usize, f64)>,
    /// The kill-one-worker point, when it ran.
    pub recovery: Option<DistRecovery>,
}

impl DistResults {
    /// The batch-64 codec point's speedup — the gated number.
    pub fn codec_speedup_b64(&self) -> Option<f64> {
        self.codec
            .iter()
            .find(|p| p.batch == 64)
            .map(CodecPoint::speedup)
    }

    /// Serializes the results as a stable, machine-readable JSON document
    /// (`bench_dist/v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": \"bench_dist/v1\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"codec\": {\n");
        for (i, p) in self.codec.iter().enumerate() {
            let sep = if i + 1 == self.codec.len() { "" } else { "," };
            s.push_str(&format!(
                "    \"b{}\": {{\n      \"binary_ns_per_frame\": {:.1},\n      \
                 \"json_ns_per_frame\": {:.1},\n      \"binary_bytes\": {},\n      \
                 \"json_bytes\": {},\n      \"speedup\": {:.2}\n    }}{sep}\n",
                p.batch,
                p.binary_ns,
                p.json_ns,
                p.binary_bytes,
                p.json_bytes,
                p.speedup(),
            ));
        }
        s.push_str("  },\n  \"acked_tuples_per_s\": {\n");
        for (i, (workers, batch, tput)) in self.scaling.iter().enumerate() {
            let sep = if i + 1 == self.scaling.len() { "" } else { "," };
            s.push_str(&format!("    \"w{workers}_b{batch}\": {tput:.1}{sep}\n"));
        }
        s.push_str("  }");
        if let Some(r) = &self.recovery {
            s.push_str(&format!(
                ",\n  \"recovery\": {{\n    \"workers\": {},\n    \
                 \"kill_to_restore_ms\": {:.2},\n    \"worker_restarts\": {},\n    \
                 \"restores\": {},\n    \"acked\": {},\n    \"expected\": {},\n    \
                 \"conservation\": {}\n  }}",
                r.workers,
                r.kill_to_restore_ms,
                r.worker_restarts,
                r.restores,
                r.acked,
                r.expected,
                r.conservation,
            ));
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes [`to_json`](Self::to_json) to `BENCH_dist.json` at the
    /// repository root and returns the path.
    pub fn write_json_at_repo_root(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_dist.json"
        ));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

// --- codec round trip ---------------------------------------------------

/// A representative `TupleBatch` payload: mixed value types, occasional
/// dedup ids, several destination tasks and streams — the shape the
/// transport actually moves, not a best-case all-integer batch.
fn sample_batch(n: usize) -> Vec<codec::WireTuple> {
    (0..n)
        .map(|i| codec::WireTuple {
            token: 1_000 + i as u64 * 17,
            dest_task: (i % 7) as u32,
            stream: (i % 3) as u32,
            dedup: if i % 4 == 0 { Some(i as u64 + 1) } else { None },
            trace_root: if i % 8 == 0 {
                Some(i as u64 * 3 + 7)
            } else {
                None
            },
            values: vec![
                Value::from(i as i64 * 37 - 5),
                Value::from(format!("sensor-{:04}", i % 50)),
                Value::from(0.5 + i as f64 * 0.25),
                Value::from(i % 2 == 0),
            ],
        })
        .collect()
}

/// Times `f` adaptively against `target` and returns ns/iter (same harness
/// as the kernel microbenches, standalone so it can fill [`CodecPoint`]s).
fn bench_ns<R>(target: Duration, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = t0.elapsed();
        if elapsed >= target || iters >= 1 << 30 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters = if elapsed.is_zero() {
            iters * 8
        } else {
            let scale = target.as_secs_f64() / elapsed.as_secs_f64() * 1.2;
            (iters as f64 * scale).ceil() as u64
        };
    }
}

/// Round-trips one `TupleBatch` frame through both codecs at `batch`
/// tuples and returns the comparison point.
fn codec_point(batch: usize, target: Duration) -> CodecPoint {
    let items = sample_batch(batch);
    let frame = codec::Frame::TupleBatch {
        items: items.clone(),
    };

    let mut body = Vec::new();
    codec::encode_frame_body(&frame, &mut body);
    let binary_bytes = body.len();
    let json_text = codec::json::tuple_batch_to_string(&items);
    let json_bytes = json_text.len();

    // The binary side reuses its buffer across frames, exactly like the
    // transport's batching writer; the JSON reference allocates a fresh
    // string per frame, exactly like a serde-based shim would.
    let mut buf = Vec::with_capacity(binary_bytes);
    let binary_ns = bench_ns(target, || {
        buf.clear();
        codec::encode_frame_body(&frame, &mut buf);
        codec::decode_frame(&buf).expect("binary round trip")
    });
    let json_ns = bench_ns(target, || {
        let text = codec::json::tuple_batch_to_string(&items);
        codec::json::tuple_batch_from_str(&text).expect("json round trip")
    });

    CodecPoint {
        batch,
        binary_ns,
        json_ns,
        binary_bytes,
        json_bytes,
    }
}

fn bench_codec(res: &mut DistResults, target: Duration) {
    println!("\ncodec: TupleBatch encode+decode round trip, binary vs serde-JSON reference");
    for &batch in &[1usize, 64] {
        let p = codec_point(batch, target);
        println!(
            "  batch {batch:>3}: binary {:>10.0} ns/frame ({} B)   json {:>10.0} ns/frame \
             ({} B)   {:.1}x",
            p.binary_ns,
            p.binary_bytes,
            p.json_ns,
            p.json_bytes,
            p.speedup()
        );
        res.codec.push(p);
    }
}

// --- shared topologies (coordinator and re-exec'd workers) --------------

/// Backpressure-bounded infinite spout: emits tracked tuples as fast as
/// `max_spout_pending` allows until the coordinator raises its stop flag.
struct FloodSpout {
    next_id: u64,
}

impl Spout for FloodSpout {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        for _ in 0..32 {
            self.next_id += 1;
            out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        }
        true
    }
}

/// Finite spout paced at `rate` tuples/s, so the stream is still flowing
/// when the bench kills a worker mid-run.
struct PacedSpout {
    left: u64,
    next_id: u64,
    rate: f64,
    started: Option<Instant>,
}

impl Spout for PacedSpout {
    fn open(&mut self, _ctx: &TopologyContext) {
        self.started = Some(Instant::now());
    }

    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.left == 0 {
            return false;
        }
        let elapsed = self
            .started
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        if self.next_id as f64 >= elapsed * self.rate {
            return true;
        }
        self.left -= 1;
        self.next_id += 1;
        out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
        true
    }
}

/// Middle stage: re-emits each tuple anchored.
struct Relay;
impl Bolt for Relay {
    fn execute(&mut self, t: &Tuple, out: &mut BoltOutput) {
        out.emit(t.clone());
    }
}

struct Blackhole;
impl Bolt for Blackhole {
    fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
}

/// Checkpointable counting bolt for the recovery point.
struct StatefulCounter {
    count: u64,
    sum: u64,
}

impl Bolt for StatefulCounter {
    fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
        self.count += 1;
        self.sum += t.get(0).and_then(|v| v.as_i64()).unwrap_or(0) as u64;
    }

    fn stateful(&mut self) -> Option<&mut dyn StatefulComponent> {
        Some(self)
    }
}

impl StatefulComponent for StatefulCounter {
    fn snapshot(&mut self) -> StateSnapshot {
        StateSnapshot::encode(SnapshotKind::Full, &(self.count, self.sum))
    }

    fn restore(
        &mut self,
        base: &StateSnapshot,
        deltas: &[StateSnapshot],
    ) -> std::result::Result<(), String> {
        if !deltas.is_empty() {
            return Err("bench counter snapshots are full-only".into());
        }
        let (count, sum): (u64, u64) = base.decode()?;
        self.count = count;
        self.sum = sum;
        Ok(())
    }
}

/// `spout → relay ×W → sink ×W` shuffle pipeline; `args` carries `W`.
fn build_relay(args: &str) -> Result<Topology> {
    let workers: usize = args.parse().unwrap_or(1);
    let mut b = TopologyBuilder::new("dist-scaling-bench");
    b.set_spout("src", 1, || FloodSpout { next_id: 0 })?;
    b.set_bolt("relay", workers, || Relay)?
        .shuffle_grouping("src")?;
    b.set_bolt("sink", workers, || Blackhole)?
        .shuffle_grouping("relay")?;
    b.build()
}

/// Paced spout into one checkpointed counter; `args` is `"n:rate"`.
fn build_state(args: &str) -> Result<Topology> {
    let mut it = args.split(':');
    let n: u64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let rate: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(1_000.0);
    let mut b = TopologyBuilder::new("dist-recovery-bench");
    b.set_spout("src", 1, move || PacedSpout {
        left: n,
        next_id: 0,
        rate,
        started: None,
    })?;
    b.set_bolt("count", 1, || StatefulCounter { count: 0, sum: 0 })?
        .global_grouping("src")?;
    b.build()
}

fn registry() -> TopologyRegistry {
    let mut r = TopologyRegistry::new();
    r.register("relay", build_relay);
    r.register("state", build_state);
    r
}

/// Worker dispatch for the bench binary: call this at the very top of the
/// entry point and return immediately when it yields `true` — the process
/// was re-executed as a distributed worker and has already served its
/// assignment.
pub fn maybe_worker() -> bool {
    dist::maybe_worker_from_env(&registry())
}

// --- dist_scaling sweep -------------------------------------------------

/// Runs the relay pipeline on `workers` worker processes for `run_s`
/// seconds and returns acked tuple trees per second.
fn dist_throughput(workers: usize, batch_size: usize, run_s: f64) -> f64 {
    let cfg = EngineConfig {
        max_spout_pending: 16 * 1024,
        ..EngineConfig::default()
    };
    // Credit flow on: the production shape of the distributed transport,
    // and the end-to-end bound that keeps a flooded run's outstanding
    // bytes under the kernel socket buffers (DESIGN.md §15.4).
    let running = dist::submit(
        &registry(),
        "relay",
        &workers.to_string(),
        cfg,
        RtConfig::default()
            .with_batch_size(batch_size)
            .with_credit_flow(32),
        DistConfig::new(workers, dist::self_worker_cmd()),
    )
    .expect("dist submit");
    std::thread::sleep(Duration::from_secs_f64(run_s));
    let report = running.shutdown();
    report.acked as f64 / report.uptime_s
}

fn bench_dist_scaling(res: &mut DistResults, run_s: f64) {
    println!(
        "\ndist_scaling: spout -> relay xW -> sink xW over W worker processes, \
         {run_s:.1}s per point"
    );
    for &workers in &[1usize, 2, 4] {
        for &batch in &[1usize, 64] {
            let tput = dist_throughput(workers, batch, run_s);
            res.scaling.push((workers, batch, tput));
            println!(
                "  workers {workers}  batch {batch:>3}: {:>12.0} acked tuples/s",
                tput
            );
        }
    }
}

// --- kill-one-worker recovery point -------------------------------------

fn bench_dist_recovery(res: &mut DistResults, n: u64, rate: f64) {
    println!("\ndist_recovery: {n} tuples at {rate:.0}/s, SIGKILL the stateful worker mid-run");
    let engine = EngineConfig {
        message_timeout_s: 2.0,
        ..EngineConfig::default()
    };
    let rt_config = RtConfig::default()
        .with_batch_size(8)
        .with_max_replays(10)
        .with_replay_backoff(Duration::from_millis(20))
        .with_checkpoints(Duration::from_millis(50))
        .with_recovery_mode(RecoveryMode::ExactlyOnceEffect);
    let running = dist::submit(
        &registry(),
        "state",
        &format!("{n}:{rate}"),
        engine,
        rt_config,
        DistConfig::new(2, dist::self_worker_cmd()),
    )
    .expect("dist submit");

    let deadline = Instant::now() + Duration::from_secs(20);
    while running.acked() < n / 4 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let kill_t = running.uptime_s();
    running.kill_worker(0).expect("kill worker 0");

    let deadline = Instant::now() + Duration::from_secs(30);
    while running.acked() < n && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = running.shutdown();

    // Kill → restore wall clock on the journal's clock (seconds since
    // submit): the first `state_restored` event after the kill.
    let kill_to_restore_ms = report
        .journal_of_kind("state_restored")
        .iter()
        .map(|e| e.time_s())
        .filter(|t| *t >= kill_t)
        .fold(f64::NAN, f64::min)
        .max(kill_t)
        * 1_000.0
        - kill_t * 1_000.0;

    let r = DistRecovery {
        workers: 2,
        kill_to_restore_ms,
        worker_restarts: report.worker_restarts,
        restores: report.restores,
        acked: report.acked,
        expected: n,
        conservation: report.conservation_holds(),
    };
    println!(
        "  kill -> state_restored {:.1} ms  ({} respawns, {} restores, acked {}/{}, \
         conservation {})",
        r.kill_to_restore_ms, r.worker_restarts, r.restores, r.acked, r.expected, r.conservation
    );
    res.recovery = Some(r);
}

/// Runs the distributed bench suite.  Smoke mode shrinks every budget so
/// the suite proves the multi-process path end to end without dominating
/// the test run.
pub fn run(smoke: bool) -> DistResults {
    let mut res = DistResults {
        mode: if smoke { "smoke" } else { "full" },
        codec: Vec::new(),
        scaling: Vec::new(),
        recovery: None,
    };
    bench_codec(
        &mut res,
        if smoke {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(300)
        },
    );
    bench_dist_scaling(&mut res, if smoke { 0.4 } else { 2.0 });
    if smoke {
        bench_dist_recovery(&mut res, 400, 1_600.0);
    } else {
        bench_dist_recovery(&mut res, 2_000, 5_000.0);
    }
    res
}

// --- telemetry overhead (dist) ------------------------------------------

/// Runs the relay pipeline once at `workers` × `batch` and returns acked
/// tuples/s: the sample behind `--dist-point` and the distributed
/// telemetry-overhead gate.
pub fn run_point(workers: usize, batch: usize, secs: f64) -> f64 {
    dist_throughput(workers, batch, secs)
}

/// Runs the `strip-telemetry` reference binary for one dist `w1_b64` sample
/// via its `--dist-point` mode and parses the machine-readable result,
/// verifying the binary really was built without hot-path telemetry.  The
/// stripped binary spawns its worker fleet by re-exec'ing *itself*, so the
/// whole pipeline — coordinator and workers — runs stripped.
fn stripped_dist_point(bin: &str, secs: f64) -> std::result::Result<f64, String> {
    let out = std::process::Command::new(bin)
        .args(["--dist-point", "1", "64"])
        .arg(format!("{secs}"))
        .arg("1")
        .output()
        .map_err(|e| format!("cannot run stripped reference {bin}: {e}"))?;
    let text = String::from_utf8_lossy(&out.stdout);
    if text.contains("telemetry_compiled: true") {
        return Err(format!(
            "{bin} was built WITH telemetry compiled in; rebuild it with --features strip-telemetry"
        ));
    }
    text.lines()
        .find_map(|l| l.strip_prefix("dist_point_sample: ")?.trim().parse().ok())
        .ok_or_else(|| format!("no dist_point_sample line in output of {bin}:\n{text}"))
}

/// Extracts the body (`{...}`) of the `"dist"` section of a
/// `BENCH_telemetry.json` document, if present.  The dist section is
/// always the final key, so a rewrite of the rt half can carry it over.
pub(crate) fn dist_section_body(doc: &str) -> Option<String> {
    let i = doc.find("\"dist\":")?;
    let rest = doc[i + "\"dist\":".len()..].trim_end();
    Some(rest.strip_suffix('}')?.trim().to_string())
}

/// Splices a `"dist"` section into a `BENCH_telemetry.json` document,
/// replacing any previous one.  The section always goes last, so the
/// splice point is either the old section's start or the final brace.
pub(crate) fn merge_dist_section(existing: &str, dist: &str) -> String {
    let base = match existing.find(",\n  \"dist\":") {
        Some(i) => existing[..i].to_string(),
        None => {
            let t = existing.trim_end();
            match t.strip_suffix('}') {
                Some(body) if t.starts_with('{') && body.trim_end().len() > 1 => {
                    body.trim_end().to_string()
                }
                _ => "{\n  \"schema\": \"bench_telemetry/v1\"".to_string(),
            }
        }
    };
    format!("{base},\n  \"dist\": {dist}\n}}\n")
}

/// CI telemetry-overhead gate for the distributed backend: with telemetry
/// compiled in but *disabled* (the default [`RtConfig`] — sample rate 0,
/// no metrics address, no metrics interval), dist `w1_b64` throughput must
/// stay within 3% of a `strip-telemetry` build's.  Same interleaved
/// min-pair discipline as the threaded gate in [`crate::micro`] and for
/// the same reason: the machine's ceiling drifts between separate runs,
/// so only an *every-pair* loss separates a real hot-path cost from
/// noise.  Merges a `dist` section into `BENCH_telemetry.json` at the
/// repository root regardless of the verdict, preserving the rt half.
pub fn check_dist_telemetry_overhead(
    smoke: bool,
    stripped_bin: &str,
) -> std::result::Result<(), String> {
    const TOLERANCE: f64 = 0.03;
    if !dsdps::telemetry::HOT_PATH_TELEMETRY {
        return Err(
            "--check-dist-telemetry-overhead must run on a build WITHOUT strip-telemetry \
             (this build has the feature enabled, so there is nothing to measure)"
                .to_string(),
        );
    }
    let (reps, secs) = if smoke { (6, 0.6) } else { (5, 2.0) };
    println!("\ndist telemetry overhead gate: {reps} interleaved w1_b64 pairs, {secs}s each");
    let (mut stripped, mut fresh) = (0.0f64, 0.0f64);
    let mut min_pair_overhead = f64::INFINITY;
    for r in 0..reps {
        let s = stripped_dist_point(stripped_bin, secs)?;
        let f = dist_throughput(1, 64, secs);
        let pair_overhead = (1.0 - f / s) * 100.0;
        println!(
            "  pair {r}: stripped {s:>10.0}  instrumented-disabled {f:>10.0} acked tuples/s \
             ({pair_overhead:+.1}%)"
        );
        stripped = stripped.max(s);
        fresh = fresh.max(f);
        min_pair_overhead = min_pair_overhead.min(pair_overhead);
    }
    let overhead_pct = (1.0 - fresh / stripped) * 100.0;
    println!(
        "dist telemetry overhead check: best w1_b64 instrumented-disabled {fresh:.0} vs \
         stripped {stripped:.0} ({overhead_pct:+.1}% best-of, {min_pair_overhead:+.1}% min \
         pair, tolerance {:.0}%)",
        TOLERANCE * 100.0
    );
    let section = format!(
        "{{\n    \"acked_tuples_per_s\": {{\n      \"w1_b64_stripped\": {stripped:.1},\n      \
         \"w1_b64_instrumented_disabled\": {fresh:.1}\n    }},\n    \
         \"overhead_pct\": {overhead_pct:.2},\n    \
         \"min_pair_overhead_pct\": {min_pair_overhead:.2},\n    \"tolerance_pct\": {:.1}\n  }}",
        TOLERANCE * 100.0
    );
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_telemetry.json"
    ));
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    match std::fs::write(&path, merge_dist_section(&existing, &section)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_telemetry.json: {e}"),
    }
    if min_pair_overhead > TOLERANCE * 100.0 {
        return Err(format!(
            "dist telemetry overhead regression: disabled-telemetry throughput lost to the \
             stripped build by more than {:.0}% in every one of {reps} interleaved pairs \
             (min pair overhead {min_pair_overhead:+.1}%)",
            TOLERANCE * 100.0
        ));
    }
    Ok(())
}

// --- CI gate ------------------------------------------------------------

/// Minimum binary-over-JSON codec speedup at batch 64 — the wire-codec
/// acceptance criterion, enforced unconditionally by the gate.
pub const MIN_CODEC_SPEEDUP_B64: f64 = 5.0;

/// Reads the `w2_b64` throughput out of a `bench_dist/v1` JSON document.
fn dist_baseline_w2_b64(json: &str) -> Option<f64> {
    use serde::JsonValue;
    let root = serde_json::parse(json).ok()?;
    let JsonValue::Object(fields) = root else {
        return None;
    };
    let tputs = fields.iter().find(|(k, _)| k == "acked_tuples_per_s")?;
    let JsonValue::Object(points) = &tputs.1 else {
        return None;
    };
    match points.iter().find(|(k, _)| k == "w2_b64")?.1 {
        JsonValue::F64(v) => Some(v),
        JsonValue::I64(v) => Some(v as f64),
        JsonValue::U64(v) => Some(v as f64),
        _ => None,
    }
}

/// CI regression gate for the distributed backend: the fresh `w2_b64`
/// throughput must stay within 20% of the checked-in baseline, the binary
/// codec must hold its ≥5× batch-64 speedup over the JSON reference, and
/// the kill-one-worker point must have recovered every message with
/// conservation intact.
pub fn check_dist_baseline(
    res: &DistResults,
    baseline_path: &str,
) -> std::result::Result<(), String> {
    let speedup = res
        .codec_speedup_b64()
        .ok_or("dist gate: the batch-64 codec point was not measured")?;
    println!(
        "\ndist codec gate: binary {speedup:.1}x over JSON at batch 64 \
         (floor {MIN_CODEC_SPEEDUP_B64:.0}x)"
    );
    if speedup < MIN_CODEC_SPEEDUP_B64 {
        return Err(format!(
            "dist codec regression: binary codec is only {speedup:.2}x faster than the \
             JSON reference at batch 64 (floor {MIN_CODEC_SPEEDUP_B64:.0}x)"
        ));
    }
    let r = res
        .recovery
        .as_ref()
        .ok_or("dist gate: the kill-one-worker recovery point was not measured")?;
    if r.acked != r.expected || !r.conservation || r.restores == 0 {
        return Err(format!(
            "dist recovery regression: acked {}/{} after the worker kill \
             ({} restores, conservation {})",
            r.acked, r.expected, r.restores, r.conservation
        ));
    }
    let json = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read dist baseline {baseline_path}: {e}"))?;
    let baseline = dist_baseline_w2_b64(&json)
        .ok_or_else(|| format!("no acked_tuples_per_s.w2_b64 in {baseline_path}"))?;
    let fresh = res
        .scaling
        .iter()
        .find(|(w, b, _)| *w == 2 && *b == 64)
        .map(|(_, _, t)| *t)
        .ok_or_else(|| "dist_scaling sweep did not produce a w2_b64 point".to_string())?;
    println!(
        "dist baseline check: w2_b64 fresh {fresh:.0} vs baseline {baseline:.0} ({:+.1}%)",
        (fresh / baseline - 1.0) * 100.0
    );
    if fresh < baseline * 0.8 {
        return Err(format!(
            "dist throughput regression: w2_b64 {fresh:.0} tuples/s is more than 20% below \
             the baseline {baseline:.0} tuples/s"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> DistResults {
        DistResults {
            mode: "smoke",
            codec: vec![
                CodecPoint {
                    batch: 1,
                    binary_ns: 100.0,
                    json_ns: 1_500.0,
                    binary_bytes: 40,
                    json_bytes: 160,
                },
                CodecPoint {
                    batch: 64,
                    binary_ns: 2_000.0,
                    json_ns: 40_000.0,
                    binary_bytes: 2_100,
                    json_bytes: 9_800,
                },
            ],
            scaling: vec![
                (1, 1, 9_000.0),
                (1, 64, 50_000.0),
                (2, 64, 80_000.0),
                (4, 64, 120_000.0),
            ],
            recovery: Some(DistRecovery {
                workers: 2,
                kill_to_restore_ms: 120.0,
                worker_restarts: 1,
                restores: 1,
                acked: 400,
                expected: 400,
                conservation: true,
            }),
        }
    }

    fn baseline_json(w2_b64: f64) -> String {
        format!(
            "{{\n  \"schema\": \"bench_dist/v1\",\n  \"acked_tuples_per_s\": {{\n    \
             \"w2_b64\": {w2_b64:.1}\n  }}\n}}\n"
        )
    }

    fn with_baseline(json: &str, f: impl FnOnce(&str)) {
        let path = std::env::temp_dir().join(format!(
            "dsdps-dist-baseline-{}.json",
            std::process::id() as u64 ^ ((json.len() as u64) << 32)
        ));
        std::fs::write(&path, json).unwrap();
        f(path.to_str().unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_is_well_shaped() {
        let json = results().to_json();
        assert!(json.contains("\"schema\": \"bench_dist/v1\""));
        assert!(json.contains("\"b64\""));
        assert!(json.contains("\"speedup\": 20.00"));
        assert!(json.contains("\"w2_b64\": 80000.0"));
        assert!(json.contains("\"kill_to_restore_ms\": 120.00"));
        assert_eq!(dist_baseline_w2_b64(&json), Some(80_000.0));
    }

    #[test]
    fn gate_passes_on_healthy_results() {
        with_baseline(&baseline_json(80_000.0), |path| {
            check_dist_baseline(&results(), path).unwrap();
        });
    }

    #[test]
    fn gate_fails_on_throughput_regression() {
        with_baseline(&baseline_json(120_000.0), |path| {
            let err = check_dist_baseline(&results(), path).unwrap_err();
            assert!(err.contains("regression"), "unexpected message: {err}");
        });
    }

    #[test]
    fn gate_fails_when_codec_speedup_collapses() {
        let mut res = results();
        res.codec[1].binary_ns = 15_000.0;
        with_baseline(&baseline_json(80_000.0), |path| {
            let err = check_dist_baseline(&res, path).unwrap_err();
            assert!(err.contains("codec"), "unexpected message: {err}");
        });
    }

    #[test]
    fn gate_fails_when_recovery_lost_messages() {
        let mut res = results();
        res.recovery.as_mut().unwrap().acked = 399;
        with_baseline(&baseline_json(80_000.0), |path| {
            let err = check_dist_baseline(&res, path).unwrap_err();
            assert!(err.contains("recovery"), "unexpected message: {err}");
        });
    }

    #[test]
    fn dist_section_merges_into_rt_document() {
        let rt_doc = "{\n  \"schema\": \"bench_telemetry/v1\",\n  \"overhead_pct\": 1.00\n}\n";
        let merged = merge_dist_section(rt_doc, "{\n    \"overhead_pct\": 2.00\n  }");
        assert!(merged.contains("\"schema\": \"bench_telemetry/v1\""));
        assert!(merged.contains("\"dist\": {"));
        assert!(
            serde_json::parse(&merged).is_ok(),
            "invalid JSON:\n{merged}"
        );

        // Re-merging replaces the old section instead of stacking a second.
        let remerged = merge_dist_section(&merged, "{\n    \"overhead_pct\": 3.00\n  }");
        assert_eq!(remerged.matches("\"dist\":").count(), 1);
        assert!(remerged.contains("3.00") && !remerged.contains("2.00"));
        assert!(
            serde_json::parse(&remerged).is_ok(),
            "invalid JSON:\n{remerged}"
        );

        // A missing or mangled document degrades to a fresh skeleton.
        let fresh = merge_dist_section("", "{\n    \"overhead_pct\": 2.00\n  }");
        assert!(fresh.contains("\"schema\": \"bench_telemetry/v1\""));
        assert!(serde_json::parse(&fresh).is_ok(), "invalid JSON:\n{fresh}");
    }

    #[test]
    fn dist_section_body_round_trips_through_merge() {
        let body = "{\n    \"overhead_pct\": 2.00,\n    \"tolerance_pct\": 3.0\n  }";
        let doc = merge_dist_section("{\n  \"schema\": \"bench_telemetry/v1\"\n}\n", body);
        assert_eq!(dist_section_body(&doc).as_deref(), Some(body));
        assert_eq!(dist_section_body("{\n  \"schema\": \"x\"\n}\n"), None);
    }

    #[test]
    fn codec_round_trip_point_is_consistent() {
        let p = codec_point(8, Duration::from_millis(1));
        assert!(p.binary_ns > 0.0 && p.json_ns > 0.0);
        assert!(p.binary_bytes > 0 && p.json_bytes > p.binary_bytes);
    }
}

//! Aligned text tables and CSV output for the experiment regenerators.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table that can also serialize to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Serializes to CSV (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV next to the other results and prints the text form.
    pub fn save_and_print(&self, out_dir: &Path, file_stem: &str) -> io::Result<()> {
        let annotate = |e: io::Error, what: &str| {
            io::Error::new(e.kind(), format!("{what} {}: {e}", out_dir.display()))
        };
        fs::create_dir_all(out_dir).map_err(|e| annotate(e, "creating results dir"))?;
        let path = out_dir.join(format!("{file_stem}.csv"));
        fs::write(&path, self.to_csv())
            .map_err(|e| io::Error::new(e.kind(), format!("writing {}: {e}", path.display())))?;
        println!("{}", self.render());
        Ok(())
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["model", "mape"]);
        t.row(&["DRNN".into(), "4.2".into()]);
        t.row(&["ARIMA-long-name".into(), "11.9".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        let lines: Vec<&str> = r.lines().collect();
        // Header and rows right-aligned to same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["hello, world".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(pct(12.34), "12.3%");
    }
}

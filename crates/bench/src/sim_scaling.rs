//! Simulator scaling sweep: a `workers × tuples` grid on the discrete-event
//! engine, emitting `BENCH_sim.json` (schema `bench_sim/v1`).
//!
//! Each point runs a finite firehose (`src` spouts → `sink` bolts over a
//! shuffle grouping) on a `workers`-machine cluster until every tuple tree is
//! acked, and reports how many task executions the simulator advanced per
//! second of *wall* time.  Virtual throughput is a free parameter (it is set
//! by the cost model); wall throughput is the quantity the rebuild targets,
//! so that controller sweeps can afford thousands of simulated runs.
//!
//! `processed` counts task executions: every spout emission plus every bolt
//! execution.  On this one-hop topology that is exactly `2 × tuples` once all
//! trees ack, which the regression gate uses as an anti-vacuity floor.

use std::time::Instant;

use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
use dsdps::config::EngineConfig;
use dsdps::rt::RtConfig;
use dsdps::sim::SimRuntime;
use dsdps::topology::{CostModel, TopologyBuilder};
use dsdps::tuple::{Fields, Tuple, Value};

/// Worker counts swept by the grid.
pub const WORKER_POINTS: [usize; 3] = [10, 100, 1000];
/// Tuple counts swept by the grid.
pub const TUPLE_POINTS: [u64; 2] = [1_000_000, 10_000_000];

/// Batch size handed to the engine via [`RtConfig::with_batch_size`]; one
/// simulator event advances up to this many tuples at a task.
const BATCH_SIZE: usize = 128;

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// Point key, e.g. `w100_t1e7`.
    pub key: String,
    /// Workers (and machines) in the simulated cluster.
    pub workers: usize,
    /// Tuple trees the firehose emits in total.
    pub tuples: u64,
    /// Tuple trees fully acked when the run stopped.
    pub acked: u64,
    /// Task executions advanced (spout emissions + bolt executions).
    pub processed: u64,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// Virtual seconds the simulation covered.
    pub virtual_s: f64,
    /// `processed / wall_s` — the headline number.
    pub processed_per_wall_s: f64,
}

/// All points of one sweep.
#[derive(Debug, Clone, Default)]
pub struct SimResults {
    /// `"smoke"` or `"full"` (same grid; recorded for provenance).
    pub mode: String,
    /// Measured points in sweep order.
    pub points: Vec<SimPoint>,
}

struct Firehose {
    remaining: u64,
    next_id: u64,
    proto: Tuple,
}

impl Spout for Firehose {
    fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        self.next_id += 1;
        out.emit_with_id(self.proto.clone(), self.next_id);
        true
    }
}

struct Blackhole;

impl Bolt for Blackhole {
    fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
}

/// Runs one grid point and returns its measurements.
pub fn run_point(workers: usize, tuples: u64) -> SimPoint {
    // One spout per ten workers keeps the spout side from becoming the
    // virtual-time bottleneck while the grid scales the bolt side.
    let spouts = (workers / 10).max(1);
    let share = tuples / spouts as u64;
    let schema = Fields::new(["v"]);
    let proto = Tuple::with_fields([Value::from(1i64)], schema.clone());

    let mut b = TopologyBuilder::new("sim-scaling");
    b.set_spout("src", spouts, move || Firehose {
        remaining: share,
        next_id: 0,
        proto: proto.clone(),
    })
    .unwrap()
    .output_fields(schema.clone())
    .cost(CostModel {
        base_service_time_us: 1.0,
        jitter: 0.0,
    });
    b.set_bolt("sink", workers, || Blackhole)
        .unwrap()
        .shuffle_grouping("src")
        .unwrap()
        .cost(CostModel {
            base_service_time_us: 4.0,
            jitter: 0.0,
        });
    let topo = b.build().unwrap();

    let mut cfg = EngineConfig::default()
        .with_cluster(workers, 1, 4)
        .with_seed(42);
    // A deep in-flight window so the spouts stream instead of throttling on
    // max_spout_pending while trees cross the (virtual) network.
    cfg.max_spout_pending = 4096;
    cfg.queue_capacity = 8192;
    let rt_cfg = RtConfig::default().with_batch_size(BATCH_SIZE);
    let mut engine = SimRuntime::with_rt_config(topo, cfg, rt_cfg).expect("engine");

    let start = Instant::now();
    let mut horizon = 0.0;
    let mut report = engine.report();
    while report.acked < tuples && horizon < 10_000.0 {
        horizon += 1.0;
        report = engine.run_until(horizon);
    }
    let wall_s = start.elapsed().as_secs_f64();

    let processed = report.spout_emitted + report.acked;
    SimPoint {
        key: point_key(workers, tuples),
        workers,
        tuples,
        acked: report.acked,
        processed,
        wall_s,
        virtual_s: engine.now(),
        processed_per_wall_s: processed as f64 / wall_s.max(1e-9),
    }
}

/// Key for one grid point, e.g. `w100_t1e7`.
pub fn point_key(workers: usize, tuples: u64) -> String {
    let exp = (tuples as f64).log10().round() as u32;
    format!("w{workers}_t1e{exp}")
}

/// Runs the full grid.  The grid is identical in smoke and full mode — the
/// sweep is bounded by wall time, not virtual time, and the rebuilt engine
/// keeps every point cheap enough for CI.
pub fn run(smoke: bool) -> SimResults {
    let mut res = SimResults {
        mode: if smoke { "smoke" } else { "full" }.to_owned(),
        points: Vec::new(),
    };
    println!("\n== simulator scaling sweep (workers x tuples) ==");
    for &workers in &WORKER_POINTS {
        for &tuples in &TUPLE_POINTS {
            let p = run_point(workers, tuples);
            println!(
                "{:<44} {:>10.2}M processed/s  (wall {:.2}s, virtual {:.2}s, acked {})",
                format!("sim/{}", p.key),
                p.processed_per_wall_s / 1e6,
                p.wall_s,
                p.virtual_s,
                p.acked,
            );
            res.points.push(p);
        }
    }
    res
}

impl SimResults {
    /// Renders the sweep as `bench_sim/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"bench_sim/v1\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"points\": {\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{\"workers\": {}, \"tuples\": {}, \"acked\": {}, \"processed\": {}, \"wall_s\": {:.4}, \"virtual_s\": {:.4}, \"processed_per_wall_s\": {:.1}}}{}\n",
                p.key,
                p.workers,
                p.tuples,
                p.acked,
                p.processed,
                p.wall_s,
                p.virtual_s,
                p.processed_per_wall_s,
                if i + 1 == self.points.len() { "" } else { "," },
            ));
        }
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }
}

/// Writes `BENCH_sim.json` at the repo root; returns the path written.
pub fn write_sim_json(res: &SimResults) -> std::io::Result<&'static str> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, res.to_json())?;
    Ok(path)
}

/// The gate point: the acceptance headline is measured at `w100 × 1e7`.
pub const GATE_POINT: &str = "w100_t1e7";

/// Extracts `(processed_per_wall_s, acked, tuples)` for `point` from a
/// `bench_sim/v1` document.
fn sim_point_stats(json: &str, point: &str) -> Option<(f64, u64, u64)> {
    use serde::JsonValue;
    let as_f64 = |v: &JsonValue| -> Option<f64> {
        match *v {
            JsonValue::F64(x) => Some(x),
            JsonValue::I64(x) => Some(x as f64),
            JsonValue::U64(x) => Some(x as f64),
            _ => None,
        }
    };
    let root = serde_json::parse(json).ok()?;
    let JsonValue::Object(fields) = root else {
        return None;
    };
    let points = fields.iter().find(|(k, _)| k == "points")?;
    let JsonValue::Object(points) = &points.1 else {
        return None;
    };
    let entry = points.iter().find(|(k, _)| k == point)?;
    let JsonValue::Object(entry) = &entry.1 else {
        return None;
    };
    let field = |name: &str| -> Option<f64> {
        entry
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|kv| as_f64(&kv.1))
    };
    Some((
        field("processed_per_wall_s")?,
        field("acked")? as u64,
        field("tuples")? as u64,
    ))
}

/// Regression gate for CI: fails if the fresh `w100_t1e7` wall throughput is
/// more than 20 % below the checked-in smoke baseline, or if the run did not
/// actually ack every tuple (which would make the throughput claim void).
pub fn check_sim_baseline(fresh_json: &str, baseline_json: &str) -> Result<(), String> {
    let (fresh_rate, acked, tuples) = sim_point_stats(fresh_json, GATE_POINT)
        .ok_or_else(|| format!("sim gate: fresh BENCH_sim.json is missing point {GATE_POINT}"))?;
    if tuples == 0 || acked < tuples {
        return Err(format!(
            "sim gate: only {acked}/{tuples} tuples acked at {GATE_POINT} — \
             the throughput comparison is void"
        ));
    }
    let (baseline_rate, _, _) = sim_point_stats(baseline_json, GATE_POINT)
        .ok_or_else(|| format!("sim gate: baseline is missing point {GATE_POINT}"))?;
    let floor = baseline_rate * 0.8;
    if fresh_rate < floor {
        return Err(format!(
            "sim gate: {GATE_POINT} advanced {:.2}M processed tuples/s of wall time, more than \
             20% below the smoke baseline {:.2}M/s (floor {:.2}M/s)",
            fresh_rate / 1e6,
            baseline_rate / 1e6,
            floor / 1e6,
        ));
    }
    println!(
        "sim gate: {GATE_POINT} {:.2}M processed/s >= floor {:.2}M/s (baseline {:.2}M/s) -- ok",
        fresh_rate / 1e6,
        floor / 1e6,
        baseline_rate / 1e6,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rate: f64, acked: u64, tuples: u64) -> String {
        let res = SimResults {
            mode: "smoke".to_owned(),
            points: vec![SimPoint {
                key: GATE_POINT.to_owned(),
                workers: 100,
                tuples,
                acked,
                processed: acked * 2,
                wall_s: 1.0,
                virtual_s: 1.0,
                processed_per_wall_s: rate,
            }],
        };
        res.to_json()
    }

    #[test]
    fn gate_passes_at_or_above_floor() {
        let base = doc(10e6, 10_000_000, 10_000_000);
        assert!(check_sim_baseline(&doc(9e6, 10_000_000, 10_000_000), &base).is_ok());
        assert!(check_sim_baseline(&doc(8e6, 10_000_000, 10_000_000), &base).is_ok());
    }

    #[test]
    fn gate_fails_below_floor() {
        let base = doc(10e6, 10_000_000, 10_000_000);
        let err = check_sim_baseline(&doc(7.9e6, 10_000_000, 10_000_000), &base).unwrap_err();
        assert!(err.contains("below the smoke baseline"), "{err}");
    }

    #[test]
    fn gate_rejects_vacuous_run() {
        let base = doc(10e6, 10_000_000, 10_000_000);
        let err = check_sim_baseline(&doc(50e6, 9_999_999, 10_000_000), &base).unwrap_err();
        assert!(err.contains("void"), "{err}");
    }

    #[test]
    fn gate_reports_missing_point() {
        let err = check_sim_baseline("{}", "{}").unwrap_err();
        assert!(err.contains(GATE_POINT), "{err}");
    }

    #[test]
    fn point_keys_use_exponent_notation() {
        assert_eq!(point_key(100, 10_000_000), "w100_t1e7");
        assert_eq!(point_key(10, 1_000_000), "w10_t1e6");
    }

    #[test]
    fn json_round_trips_through_gate_parser() {
        let json = doc(12.5e6, 10_000_000, 10_000_000);
        let (rate, acked, tuples) = sim_point_stats(&json, GATE_POINT).unwrap();
        assert!((rate - 12.5e6).abs() < 1.0);
        assert_eq!(acked, 10_000_000);
        assert_eq!(tuples, 10_000_000);
    }
}

//! Criterion microbenchmarks for the performance-critical kernels:
//!
//! * `gemm`           — the drnn matrix-multiply kernel (serial + rayon sizes)
//! * `lstm`           — LSTM forward and forward+backward over a sequence
//! * `grouping`       — per-tuple routing decision for every grouping type
//! * `acker`          — tuple-tree track/emit/ack cycle
//! * `engine`         — simulated-runtime event throughput
//! * `forecast_fit`   — ARIMA and SVR fit time
//! * `control_epoch`  — one controller epoch (snapshot → plan → actuate)

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use drnn::layer::lstm::LstmLayer;
use drnn::matrix::Matrix;
use dsdps::acker::Acker;
use dsdps::grouping::dynamic::{DynamicGrouping, DynamicGroupingHandle, SplitRatio};
use dsdps::grouping::{
    AllGrouping, FieldsGrouping, GlobalGrouping, Grouping, ShuffleGrouping,
};
use dsdps::topology::TaskId;
use dsdps::tuple::{Fields, Tuple, Value};
use forecast::arima::{Arima, ArimaOrder};
use forecast::forecaster::Forecaster;
use forecast::svr::{Svr, SvrParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.measurement_time(Duration::from_secs(3)).sample_size(20);
    for &n in &[32usize, 128, 256] {
        let a = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 17) as f64 / 17.0).collect());
        let b = Matrix::from_vec(n, n, (0..n * n).map(|i| (i % 13) as f64 / 13.0).collect());
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
    }
    group.finish();
}

fn bench_lstm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm");
    group.measurement_time(Duration::from_secs(3)).sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let mut layer = LstmLayer::new(16, 64, &mut rng);
    let xs: Vec<Matrix> = (0..16)
        .map(|t| Matrix::from_vec(32, 16, (0..32 * 16).map(|i| ((t + i) % 7) as f64 / 7.0).collect()))
        .collect();
    group.bench_function("forward_seq16_batch32", |b| {
        b.iter(|| layer.forward(&xs));
    });
    group.bench_function("forward_backward_seq16_batch32", |b| {
        b.iter(|| {
            let (hs, cache) = layer.forward(&xs);
            let dhs: Vec<Matrix> = hs.iter().map(|h| Matrix::full(h.rows(), h.cols(), 1.0)).collect();
            layer.zero_grads();
            layer.backward(&cache, &dhs)
        });
    });
    group.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping");
    group.measurement_time(Duration::from_secs(2)).sample_size(30);
    let schema = Fields::new(["key", "seq"]);
    let tuple = Tuple::with_fields(
        [Value::from("k42"), Value::from(42i64)],
        schema.clone(),
    );
    let mut out = Vec::with_capacity(8);

    let mut run =
        |group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
         name: &str,
         g: &mut dyn Grouping| {
            group.bench_function(name, |b| {
                b.iter(|| {
                    out.clear();
                    g.select(&tuple, &mut out);
                    out.first().copied()
                });
            });
        };

    run(&mut group, "shuffle", &mut ShuffleGrouping::new(8, 0));
    run(
        &mut group,
        "fields",
        &mut FieldsGrouping::new(8, &["key".into()], &schema).unwrap(),
    );
    run(&mut group, "global", &mut GlobalGrouping::new(8));
    run(&mut group, "all", &mut AllGrouping::new(8));
    let handle = DynamicGroupingHandle::new(SplitRatio::uniform(8));
    run(&mut group, "dynamic", &mut DynamicGrouping::new(handle));
    group.finish();
}

fn bench_acker(c: &mut Criterion) {
    let mut group = c.benchmark_group("acker");
    group.measurement_time(Duration::from_secs(2)).sample_size(30);
    group.bench_function("track_emit_ack_cycle", |b| {
        let mut acker = Acker::new();
        let mut root = 0u64;
        b.iter(|| {
            root += 1;
            let e0 = acker.new_edge_id();
            acker.track(root, e0, TaskId(0), root, 0.0);
            let e1 = acker.new_edge_id();
            acker.on_emit(root, e1);
            acker.on_ack(root, e0, 0.1);
            acker.on_ack(root, e1, 0.2);
            acker.drain_outcomes().len()
        });
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
    use dsdps::config::EngineConfig;
    use dsdps::sim::SimRuntime;
    use dsdps::topology::{CostModel, TopologyBuilder};

    struct Src(u64);
    impl Spout for Src {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            let due = (out.now_s() * 5000.0) as u64;
            for _ in 0..(due.saturating_sub(self.0)).min(32) {
                self.0 += 1;
                out.emit_with_id(Tuple::of([Value::from(self.0 as i64)]), self.0);
            }
            true
        }
    }
    struct Sink;
    impl Bolt for Sink {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
    }

    let mut group = c.benchmark_group("engine");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    group.bench_function("sim_10s_5000tps_pipeline", |b| {
        b.iter(|| {
            let mut builder = TopologyBuilder::new("bench");
            builder
                .set_spout("src", 1, || Src(0))
                .unwrap()
                .cost(CostModel {
                    base_service_time_us: 5.0,
                    jitter: 0.0,
                });
            builder
                .set_bolt("sink", 4, || Sink)
                .unwrap()
                .shuffle_grouping("src")
                .unwrap()
                .cost(CostModel {
                    base_service_time_us: 50.0,
                    jitter: 0.0,
                });
            let topo = builder.build().unwrap();
            let mut engine =
                SimRuntime::new(topo, EngineConfig::default().with_cluster(2, 2, 4)).unwrap();
            engine.run_until(10.0).acked
        });
    });
    group.finish();
}

fn bench_forecast_fit(c: &mut Criterion) {
    let series: Vec<f64> = {
        let mut state = 9u64;
        let mut prev = 0.0;
        (0..400)
            .map(|t| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                prev = 0.7 * prev + e + (t as f64 / 20.0).sin();
                prev
            })
            .collect()
    };
    let mut group = c.benchmark_group("forecast_fit");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    group.bench_function("arima_2_0_1_fit_400", |b| {
        b.iter(|| {
            let mut m = Arima::new(ArimaOrder::new(2, 0, 1));
            m.fit(&series).unwrap();
            m.aic()
        });
    });
    group.bench_function("svr_rbf_fit_400", |b| {
        let x: Vec<Vec<f64>> = series.windows(8).map(|w| w[..7].to_vec()).collect();
        let y: Vec<f64> = series.windows(8).map(|w| w[7]).collect();
        b.iter(|| {
            let mut svr = Svr::new(SvrParams::default()).unwrap();
            svr.fit(&x, &y).unwrap();
            svr.support_count()
        });
    });
    group.finish();
}

fn bench_control_epoch(c: &mut Criterion) {
    use stream_control::planner::{plan_ratio, PlanPolicy};
    let tasks: Vec<TaskId> = (0..8).map(TaskId).collect();
    let placement: HashMap<TaskId, dsdps::scheduler::WorkerId> = tasks
        .iter()
        .map(|&t| (t, dsdps::scheduler::WorkerId(t.0)))
        .collect();
    let mut rng = StdRng::seed_from_u64(3);
    let lat: HashMap<dsdps::scheduler::WorkerId, f64> = (0..8)
        .map(|i| (dsdps::scheduler::WorkerId(i), rng.gen_range(100.0..1000.0)))
        .collect();
    let mut group = c.benchmark_group("control");
    group.measurement_time(Duration::from_secs(2)).sample_size(30);
    group.bench_function("plan_ratio_8tasks", |b| {
        b.iter(|| {
            plan_ratio(
                PlanPolicy::CapacityProportional { alpha: 1.0 },
                &tasks,
                &placement,
                &[dsdps::scheduler::WorkerId(3)],
                &lat,
                0.02,
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_lstm,
    bench_grouping,
    bench_acker,
    bench_engine,
    bench_forecast_fit,
    bench_control_epoch
);
criterion_main!(benches);

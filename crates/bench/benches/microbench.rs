//! `cargo bench` target: thin wrapper over the library microbench suite
//! (`bench::micro`), so `cargo bench -p bench` and
//! `cargo run --release -p bench` measure exactly the same code and both
//! refresh `BENCH_kernels.json`.

fn main() {
    bench::micro::main_entry();
}

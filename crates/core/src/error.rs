//! Errors of the control framework.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Control-framework errors.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Not enough history to fit or predict.
    NotEnoughHistory {
        /// Intervals required.
        needed: usize,
        /// Intervals available.
        got: usize,
    },
    /// A predictor was used before fitting.
    NotFitted,
    /// An underlying baseline predictor failed.
    Forecast(String),
    /// Actuation on the stream engine failed.
    Actuation(String),
    /// Invalid configuration value.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotEnoughHistory { needed, got } => {
                write!(f, "need {needed} history intervals, have {got}")
            }
            Error::NotFitted => write!(f, "predictor not fitted"),
            Error::Forecast(msg) => write!(f, "forecast error: {msg}"),
            Error::Actuation(msg) => write!(f, "actuation error: {msg}"),
            Error::Config(msg) => write!(f, "config error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<forecast::error::Error> for Error {
    fn from(e: forecast::error::Error) -> Self {
        Error::Forecast(e.to_string())
    }
}

impl From<dsdps::error::Error> for Error {
    fn from(e: dsdps::error::Error) -> Self {
        Error::Actuation(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_message() {
        let e: Error = forecast::error::Error::NotFitted.into();
        assert!(e.to_string().contains("fitted"));
        let e: Error = dsdps::error::Error::Runtime("boom".into()).into();
        assert!(e.to_string().contains("boom"));
    }
}

//! Performance predictors: the DRNN model and the ARIMA / SVR baselines
//! behind one trait, so the controller and the evaluation harness treat
//! them interchangeably.
//!
//! All predictors answer the same question the paper poses: *given the
//! recent multilevel runtime statistics, what will worker w's mean tuple
//! execute latency be `horizon` intervals from now?*

use std::collections::HashMap;

use dsdps::metrics::MetricsSnapshot;
use dsdps::scheduler::WorkerId;
use forecast::arima::{auto_arima, Arima};
use forecast::ets::{Ets, EtsKind};
use forecast::forecaster::Forecaster;
use forecast::svr::{SvrForecaster, SvrParams};
use serde::{Deserialize, Serialize};

use drnn::data::{make_windows, Normalizer, Sample};
use drnn::layer::CellKind;
use drnn::model::{Drnn, DrnnConfig};
use drnn::train::{train, TrainConfig};

use crate::error::{Error, Result};
use crate::features::{series_for_worker, FeatureSpec};

/// A model predicting per-worker performance from runtime history.
pub trait PerformancePredictor: Send {
    /// Fits on a training history for the given workers.
    fn fit(&mut self, history: &[&MetricsSnapshot], workers: &[WorkerId]) -> Result<()>;

    /// Predicts `worker`'s mean execute latency (µs) `horizon()` intervals
    /// past the end of `history`.  `None` when history is too short or the
    /// worker is unknown.
    fn predict(&self, history: &[&MetricsSnapshot], worker: WorkerId) -> Option<f64>;

    /// The fixed prediction horizon (in metrics intervals).
    fn horizon(&self) -> usize;

    /// Model name for reports.
    fn name(&self) -> String;
}

/// Configuration of the [`DrnnPredictor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrnnPredictorConfig {
    /// Which multilevel feature groups feed the model.
    pub features: FeatureSpec,
    /// Input window length (intervals).
    pub lookback: usize,
    /// Prediction horizon (intervals ahead).
    pub horizon: usize,
    /// Hidden widths of the recurrent stack.
    pub hidden: Vec<usize>,
    /// Recurrent cell kind.
    pub cell: CellKind,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for DrnnPredictorConfig {
    fn default() -> Self {
        DrnnPredictorConfig {
            features: FeatureSpec::full(),
            lookback: 16,
            horizon: 1,
            hidden: vec![32, 32],
            cell: CellKind::Lstm,
            train: TrainConfig {
                epochs: 60,
                batch_size: 32,
                ..TrainConfig::default()
            },
            seed: 42,
        }
    }
}

/// The paper's DRNN predictor: a stacked recurrent network over multilevel
/// features, trained pooled across all workers (shared dynamics, more data).
pub struct DrnnPredictor {
    config: DrnnPredictorConfig,
    model: Option<Drnn>,
    feature_norm: Option<Normalizer>,
    target_mean: f64,
    target_std: f64,
    report: Option<drnn::train::TrainReport>,
}

impl DrnnPredictor {
    /// New unfitted predictor.
    pub fn new(config: DrnnPredictorConfig) -> Self {
        DrnnPredictor {
            config,
            model: None,
            feature_norm: None,
            target_mean: 0.0,
            target_std: 1.0,
            report: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DrnnPredictorConfig {
        &self.config
    }

    /// The training report of the last `fit`, if any (used by the
    /// `fig-training` experiment).
    pub fn last_report(&self) -> Option<&drnn::train::TrainReport> {
        self.report.as_ref()
    }

    /// Builds normalized training samples pooled over `workers`.
    fn build_samples(
        &self,
        history: &[&MetricsSnapshot],
        workers: &[WorkerId],
        norm: &Normalizer,
    ) -> Vec<Sample> {
        let mut samples = Vec::new();
        for &w in workers {
            let (features, targets) = series_for_worker(&self.config.features, history, w);
            if features.is_empty() {
                continue;
            }
            let features = norm.transform(&features);
            let targets: Vec<f64> = targets
                .iter()
                .map(|t| (t - self.target_mean) / self.target_std)
                .collect();
            samples.extend(make_windows(
                &features,
                &targets,
                self.config.lookback,
                self.config.horizon,
            ));
        }
        samples
    }
}

impl PerformancePredictor for DrnnPredictor {
    fn fit(&mut self, history: &[&MetricsSnapshot], workers: &[WorkerId]) -> Result<()> {
        let needed = self.config.lookback + self.config.horizon + 4;
        if history.len() < needed {
            return Err(Error::NotEnoughHistory {
                needed,
                got: history.len(),
            });
        }
        // Fit the feature normalizer and target scaler on the pooled data.
        let mut all_features: Vec<Vec<f64>> = Vec::new();
        let mut all_targets: Vec<f64> = Vec::new();
        for &w in workers {
            let (f, t) = series_for_worker(&self.config.features, history, w);
            all_features.extend(f);
            all_targets.extend(t);
        }
        if all_features.is_empty() {
            return Err(Error::NotEnoughHistory { needed, got: 0 });
        }
        let norm = Normalizer::fit(&all_features);
        self.target_mean = all_targets.iter().sum::<f64>() / all_targets.len() as f64;
        let var = all_targets
            .iter()
            .map(|t| (t - self.target_mean).powi(2))
            .sum::<f64>()
            / all_targets.len() as f64;
        self.target_std = var.sqrt().max(1e-9);

        let samples = self.build_samples(history, workers, &norm);
        if samples.is_empty() {
            return Err(Error::NotEnoughHistory {
                needed,
                got: history.len(),
            });
        }

        let mut model = Drnn::new(DrnnConfig {
            input: self.config.features.dim(),
            hidden: self.config.hidden.clone(),
            output: 1,
            cell: self.config.cell,
            seed: self.config.seed,
        });
        let report = train(&mut model, &samples, &self.config.train);
        self.report = Some(report);
        self.model = Some(model);
        self.feature_norm = Some(norm);
        Ok(())
    }

    fn predict(&self, history: &[&MetricsSnapshot], worker: WorkerId) -> Option<f64> {
        let model = self.model.as_ref()?;
        let norm = self.feature_norm.as_ref()?;
        let (features, _) = series_for_worker(&self.config.features, history, worker);
        if features.len() < self.config.lookback {
            return None;
        }
        let tail = &features[features.len() - self.config.lookback..];
        let tail = norm.transform(tail);
        let sample = Sample {
            window: tail,
            target: vec![0.0],
        };
        let (xs, _) = drnn::data::batch_to_matrices(&[&sample]);
        let pred = model.predict(&xs).get(0, 0);
        Some((pred * self.target_std + self.target_mean).max(0.0))
    }

    fn horizon(&self) -> usize {
        self.config.horizon
    }

    fn name(&self) -> String {
        let cell = match self.config.cell {
            CellKind::Lstm => "LSTM",
            CellKind::Gru => "GRU",
        };
        format!("DRNN-{cell}")
    }
}

/// The baseline ARIMA predictor: one univariate ARIMA per worker on its
/// latency series, order chosen by AIC.
pub struct ArimaPredictor {
    horizon: usize,
    max_order: (usize, usize, usize),
    models: HashMap<WorkerId, Arima>,
}

/// Exponential-smoothing predictor (extension beyond the paper's ARIMA/SVR
/// pair): one Holt / Holt–Winters smoother per worker.
pub struct EtsPredictor {
    horizon: usize,
    kind: EtsKind,
    models: HashMap<WorkerId, Ets>,
}

impl EtsPredictor {
    /// New exponential-smoothing baseline.
    pub fn new(horizon: usize, kind: EtsKind) -> Self {
        EtsPredictor {
            horizon,
            kind,
            models: HashMap::new(),
        }
    }
}

impl PerformancePredictor for EtsPredictor {
    fn fit(&mut self, history: &[&MetricsSnapshot], workers: &[WorkerId]) -> Result<()> {
        self.models.clear();
        for &w in workers {
            let series = latency_series(history, w);
            let mut model = Ets::new(self.kind)?;
            model.fit(&series)?;
            self.models.insert(w, model);
        }
        Ok(())
    }

    fn predict(&self, history: &[&MetricsSnapshot], worker: WorkerId) -> Option<f64> {
        let model = self.models.get(&worker)?;
        let series = latency_series(history, worker);
        model
            .forecast_from(&series, self.horizon)
            .ok()
            .and_then(|f| f.last().copied())
            .map(|v| v.max(0.0))
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn name(&self) -> String {
        match self.kind {
            EtsKind::Simple => "SES".into(),
            EtsKind::Holt => "Holt".into(),
            EtsKind::HoltWinters { period } => format!("Holt-Winters(m={period})"),
        }
    }
}

/// The baseline SVR predictor: one autoregressive ε-SVR per worker.
pub struct SvrPredictor {
    horizon: usize,
    lags: usize,
    params: SvrParams,
    models: HashMap<WorkerId, SvrForecaster>,
}

fn latency_series(history: &[&MetricsSnapshot], worker: WorkerId) -> Vec<f64> {
    let spec = FeatureSpec::worker_only();
    series_for_worker(&spec, history, worker).1
}

impl ArimaPredictor {
    /// New ARIMA baseline with horizon and order-search bounds.
    pub fn new(horizon: usize, max_p: usize, max_d: usize, max_q: usize) -> Self {
        ArimaPredictor {
            horizon,
            max_order: (max_p, max_d, max_q),
            models: HashMap::new(),
        }
    }
}

impl PerformancePredictor for ArimaPredictor {
    fn fit(&mut self, history: &[&MetricsSnapshot], workers: &[WorkerId]) -> Result<()> {
        self.models.clear();
        for &w in workers {
            let series = latency_series(history, w);
            if series.len() < 30 {
                return Err(Error::NotEnoughHistory {
                    needed: 30,
                    got: series.len(),
                });
            }
            let (p, d, q) = self.max_order;
            let model = auto_arima(&series, p, d, q)?;
            self.models.insert(w, model);
        }
        Ok(())
    }

    fn predict(&self, history: &[&MetricsSnapshot], worker: WorkerId) -> Option<f64> {
        let model = self.models.get(&worker)?;
        let series = latency_series(history, worker);
        if series.is_empty() {
            return None;
        }
        model
            .forecast_from(&series, self.horizon)
            .ok()
            .and_then(|f| f.last().copied())
            .map(|v| v.max(0.0))
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn name(&self) -> String {
        "ARIMA".into()
    }
}

impl SvrPredictor {
    /// New SVR baseline.
    pub fn new(horizon: usize, lags: usize, params: SvrParams) -> Self {
        SvrPredictor {
            horizon,
            lags,
            params,
            models: HashMap::new(),
        }
    }
}

impl PerformancePredictor for SvrPredictor {
    fn fit(&mut self, history: &[&MetricsSnapshot], workers: &[WorkerId]) -> Result<()> {
        self.models.clear();
        for &w in workers {
            let series = latency_series(history, w);
            let mut model = SvrForecaster::new(self.lags, self.params)?;
            model.fit(&series)?;
            self.models.insert(w, model);
        }
        Ok(())
    }

    fn predict(&self, history: &[&MetricsSnapshot], worker: WorkerId) -> Option<f64> {
        let model = self.models.get(&worker)?;
        let series = latency_series(history, worker);
        model
            .forecast_from(&series, self.horizon)
            .ok()
            .and_then(|f| f.last().copied())
            .map(|v| v.max(0.0))
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn name(&self) -> String {
        "SVR".into()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use dsdps::metrics::{MachineStats, TopologyStats, WorkerStats};
    use dsdps::scheduler::MachineId;

    /// Synthetic history: two co-located workers; worker 0's latency is a
    /// lagged function of machine external load plus a seasonal term —
    /// learnable structure of the same shape the simulator produces.
    pub(crate) fn synth_history(n: usize) -> Vec<MetricsSnapshot> {
        (0..n)
            .map(|t| {
                let tt = t as f64;
                let load = if (t / 40) % 2 == 0 { 0.5 } else { 3.0 };
                let lat0 = 100.0 + 25.0 * (tt / 8.0).sin() + 40.0 * load;
                let lat1 = 120.0 + 15.0 * (tt / 5.0).cos() + 40.0 * load;
                let worker = |id: usize, lat: f64| WorkerStats {
                    worker: WorkerId(id),
                    machine: MachineId(0),
                    cpu_cores_used: 0.4 + 0.1 * (tt / 9.0).sin(),
                    memory_mb: 110.0,
                    executed: 200,
                    tuples_in: 200,
                    tuples_out: 200,
                    avg_execute_latency_us: lat,
                    num_tasks: 1,
                };
                MetricsSnapshot {
                    interval: t as u64,
                    time_s: tt,
                    interval_s: 1.0,
                    tasks: vec![],
                    workers: vec![worker(0, lat0), worker(1, lat1)],
                    machines: vec![MachineStats {
                        machine: MachineId(0),
                        cpu_cores_used: 1.0,
                        external_load_cores: load,
                        cores: 4,
                        num_workers: 2,
                    }],
                    topology: TopologyStats {
                        spout_emitted: 200,
                        acked: 200,
                        failed: 0,
                        timed_out: 0,
                        avg_complete_latency_ms: 2.0,
                        p99_complete_latency_ms: 5.0,
                        throughput: 200.0,
                    },
                }
            })
            .collect()
    }

    pub(crate) fn refs(h: &[MetricsSnapshot]) -> Vec<&MetricsSnapshot> {
        h.iter().collect()
    }

    fn quick_drnn(horizon: usize) -> DrnnPredictor {
        DrnnPredictor::new(DrnnPredictorConfig {
            lookback: 8,
            horizon,
            hidden: vec![16],
            train: TrainConfig {
                epochs: 25,
                batch_size: 32,
                validation_fraction: 0.0,
                early_stopping: None,
                ..TrainConfig::default()
            },
            ..DrnnPredictorConfig::default()
        })
    }

    #[test]
    fn drnn_fit_predict_round_trip() {
        let history = synth_history(300);
        let workers = [WorkerId(0), WorkerId(1)];
        let mut p = quick_drnn(1);
        p.fit(&refs(&history[..250]), &workers).unwrap();
        assert!(p.last_report().is_some());
        let pred = p.predict(&refs(&history[..260]), WorkerId(0)).unwrap();
        // Latency range is roughly [100, 260]; prediction must be sane.
        assert!(pred > 50.0 && pred < 400.0, "pred {pred}");
    }

    #[test]
    fn drnn_tracks_latency_better_than_constant() {
        let history = synth_history(400);
        let workers = [WorkerId(0)];
        let mut p = quick_drnn(1);
        p.fit(&refs(&history[..300]), &workers).unwrap();
        let mean_lat: f64 = history[..300]
            .iter()
            .map(|s| s.workers[0].avg_execute_latency_us)
            .sum::<f64>()
            / 300.0;
        let mut se_model = 0.0;
        let mut se_mean = 0.0;
        for t in 300..399 {
            let pred = p.predict(&refs(&history[..=t]), WorkerId(0)).unwrap();
            let actual = history[t + 1].workers[0].avg_execute_latency_us;
            se_model += (pred - actual).powi(2);
            se_mean += (mean_lat - actual).powi(2);
        }
        assert!(
            se_model < se_mean * 0.5,
            "DRNN MSE {se_model:.0} should clearly beat mean MSE {se_mean:.0}"
        );
    }

    #[test]
    fn drnn_rejects_short_history() {
        let history = synth_history(5);
        let mut p = quick_drnn(1);
        let err = p.fit(&refs(&history), &[WorkerId(0)]).unwrap_err();
        assert!(matches!(err, Error::NotEnoughHistory { .. }));
    }

    #[test]
    fn drnn_predict_none_before_fit_or_short_tail() {
        let history = synth_history(100);
        let p = quick_drnn(1);
        assert!(p.predict(&refs(&history), WorkerId(0)).is_none());
        let mut p = quick_drnn(1);
        p.fit(&refs(&history), &[WorkerId(0)]).unwrap();
        assert!(p.predict(&refs(&history[..3]), WorkerId(0)).is_none());
        // Unknown worker: prediction must not panic (the gap-filled feature
        // series is empty, so it returns None).
        assert!(p.predict(&refs(&history), WorkerId(7)).is_none());
    }

    #[test]
    fn arima_fit_predict() {
        let history = synth_history(300);
        let workers = [WorkerId(0), WorkerId(1)];
        let mut p = ArimaPredictor::new(1, 2, 1, 1);
        p.fit(&refs(&history[..250]), &workers).unwrap();
        let pred = p.predict(&refs(&history[..260]), WorkerId(1)).unwrap();
        assert!(pred > 50.0 && pred < 400.0, "pred {pred}");
        assert_eq!(p.name(), "ARIMA");
        assert_eq!(p.horizon(), 1);
    }

    #[test]
    fn svr_fit_predict() {
        let history = synth_history(300);
        let workers = [WorkerId(0)];
        let mut p = SvrPredictor::new(1, 8, SvrParams::default());
        p.fit(&refs(&history[..250]), &workers).unwrap();
        let pred = p.predict(&refs(&history[..260]), WorkerId(0)).unwrap();
        assert!(pred > 50.0 && pred < 400.0, "pred {pred}");
        assert_eq!(p.name(), "SVR");
    }

    #[test]
    fn predictors_return_none_for_unfitted_worker() {
        let history = synth_history(300);
        let mut p = ArimaPredictor::new(1, 1, 0, 1);
        p.fit(&refs(&history[..250]), &[WorkerId(0)]).unwrap();
        assert!(p.predict(&refs(&history), WorkerId(1)).is_none());
        let mut s = SvrPredictor::new(1, 8, SvrParams::default());
        s.fit(&refs(&history[..250]), &[WorkerId(0)]).unwrap();
        assert!(s.predict(&refs(&history), WorkerId(1)).is_none());
    }

    #[test]
    fn horizon_windows_shift_targets() {
        let history = synth_history(300);
        let workers = [WorkerId(0)];
        let mut h1 = quick_drnn(1);
        let mut h4 = quick_drnn(4);
        h1.fit(&refs(&history[..250]), &workers).unwrap();
        h4.fit(&refs(&history[..250]), &workers).unwrap();
        assert_eq!(h1.horizon(), 1);
        assert_eq!(h4.horizon(), 4);
        // Both predict something reasonable.
        assert!(h4.predict(&refs(&history[..260]), WorkerId(0)).is_some());
    }
}

#[cfg(test)]
mod ets_predictor_tests {
    use super::tests::{refs, synth_history};
    use super::*;

    #[test]
    fn ets_fit_predict_round_trip() {
        let history = synth_history(300);
        let workers = [WorkerId(0), WorkerId(1)];
        for kind in [
            EtsKind::Simple,
            EtsKind::Holt,
            EtsKind::HoltWinters { period: 80 },
        ] {
            let mut p = EtsPredictor::new(1, kind);
            p.fit(&refs(&history[..250]), &workers).unwrap();
            let pred = p.predict(&refs(&history[..260]), WorkerId(0)).unwrap();
            assert!(pred > 50.0 && pred < 500.0, "{kind:?}: pred {pred}");
            assert_eq!(p.horizon(), 1);
        }
        assert_eq!(EtsPredictor::new(1, EtsKind::Holt).name(), "Holt");
    }

    #[test]
    fn ets_unknown_worker_is_none() {
        let history = synth_history(300);
        let mut p = EtsPredictor::new(1, EtsKind::Holt);
        p.fit(&refs(&history[..250]), &[WorkerId(0)]).unwrap();
        assert!(p.predict(&refs(&history), WorkerId(1)).is_none());
    }
}

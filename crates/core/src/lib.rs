//! # stream-control — the paper's predictive control framework
//!
//! Reproduction of the contribution of *"A Deep Recurrent Neural Network
//! Based Predictive Control Framework for Reliable Distributed Stream Data
//! Processing"* (IPDPS 2019): a closed loop that keeps a stream topology
//! healthy when workers misbehave.
//!
//! ```text
//!        multilevel metrics                     split ratios
//!  DSDPS ──────────────────► features ─► DRNN ─► detector ─► planner ──► dynamic
//!  (dsdps crate)                        predictor  (hysteresis)          grouping
//! ```
//!
//! * [`features`] — assembles DRNN inputs from task/worker/machine stats,
//!   with the co-location interference features the paper emphasizes;
//! * [`predictor`] — the [`predictor::DrnnPredictor`] and the ARIMA / SVR
//!   baselines behind one [`predictor::PerformancePredictor`] trait;
//! * [`detector`] — per-worker misbehavior detection with hysteresis;
//! * [`planner`] — split-ratio computation (uniform-excluding or
//!   capacity-proportional);
//! * [`controller`] — the control loop, pluggable into either runtime's
//!   metrics hook; supports predictive / reactive / monitor-only modes.

#![warn(missing_docs)]

pub mod controller;
pub mod detector;
pub mod error;
pub mod features;
pub mod planner;
pub mod predictor;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::controller::{
        control_hook, rt_control_hook, ControlEvent, ControlMode, Controller, ControllerConfig,
    };
    pub use crate::detector::{Detector, DetectorConfig};
    pub use crate::error::{Error, Result};
    pub use crate::features::FeatureSpec;
    pub use crate::planner::{plan_ratio, PlanPolicy};
    pub use crate::predictor::{
        ArimaPredictor, DrnnPredictor, DrnnPredictorConfig, EtsPredictor, PerformancePredictor,
        SvrPredictor,
    };
}

//! Feature assembly: turning multilevel runtime statistics into the DRNN's
//! input vectors.
//!
//! The paper's key modeling insight is that a worker's near-future
//! performance depends not only on its own recent statistics but on the
//! *interference from co-located workers* on the same machine.  A
//! [`FeatureSpec`] therefore selects among three groups:
//!
//! * **worker-level** (always on): the worker's own execute latency, CPU,
//!   throughput, queue backlog and memory;
//! * **machine-level**: utilization and external load of the hosting
//!   machine;
//! * **co-location**: aggregate CPU and execute rate of the *other* workers
//!   sharing the machine.
//!
//! The ablation experiment (`fig-ablation`) trains the DRNN with and
//! without the last two groups.

use dsdps::metrics::MetricsSnapshot;
use dsdps::scheduler::WorkerId;
use serde::{Deserialize, Serialize};

/// Which feature groups to include.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Machine-level features (utilization, external load).
    pub machine_level: bool,
    /// Co-located-worker features (aggregate CPU / rate of neighbours).
    pub colocation: bool,
}

impl FeatureSpec {
    /// Full multilevel features (the paper's model).
    pub fn full() -> Self {
        FeatureSpec {
            machine_level: true,
            colocation: true,
        }
    }

    /// Worker-only features (ablation baseline).
    pub fn worker_only() -> Self {
        FeatureSpec {
            machine_level: false,
            colocation: false,
        }
    }

    /// Number of features per interval.
    pub fn dim(&self) -> usize {
        let mut d = 6; // worker-level
        if self.machine_level {
            d += 3;
        }
        if self.colocation {
            d += 2;
        }
        d
    }

    /// Feature names, aligned with [`extract`] output.
    pub fn names(&self) -> Vec<&'static str> {
        let mut n = vec![
            "w_avg_latency_us",
            "w_cpu_cores",
            "w_executed",
            "w_queue_len",
            "w_memory_mb",
            "w_tuples_in",
        ];
        if self.machine_level {
            n.extend(["m_utilization", "m_external_load", "m_cpu_cores"]);
        }
        if self.colocation {
            n.extend(["co_cpu_cores", "co_executed"]);
        }
        n
    }
}

/// Extracts the feature vector for `worker` from one snapshot.
/// Returns `None` if the worker is unknown to the snapshot.
pub fn extract(
    spec: &FeatureSpec,
    snapshot: &MetricsSnapshot,
    worker: WorkerId,
) -> Option<Vec<f64>> {
    let w = snapshot.worker(worker)?;
    let queue_len: usize = snapshot.tasks_of_worker(worker).map(|t| t.queue_len).sum();
    let mut f = vec![
        w.avg_execute_latency_us,
        w.cpu_cores_used,
        w.executed as f64,
        queue_len as f64,
        w.memory_mb,
        w.tuples_in as f64,
    ];
    if spec.machine_level {
        let m = snapshot.machine(w.machine)?;
        f.push(m.utilization());
        f.push(m.external_load_cores);
        f.push(m.cpu_cores_used);
    }
    if spec.colocation {
        let mut co_cpu = 0.0;
        let mut co_exec = 0.0;
        for other in &snapshot.workers {
            if other.machine == w.machine && other.worker != worker {
                co_cpu += other.cpu_cores_used;
                co_exec += other.executed as f64;
            }
        }
        f.push(co_cpu);
        f.push(co_exec);
    }
    debug_assert_eq!(f.len(), spec.dim());
    Some(f)
}

/// The prediction target for `worker` in one snapshot: its mean tuple
/// execute latency over the interval (µs).  `None` when the worker executed
/// nothing (no signal that interval).
pub fn target(snapshot: &MetricsSnapshot, worker: WorkerId) -> Option<f64> {
    snapshot.worker_avg_latency_us(worker)
}

/// Builds the per-interval feature series and target series for `worker`
/// over a history.  Intervals where the worker was idle carry the previous
/// target forward (standard gap-fill for regular sampling).
pub fn series_for_worker(
    spec: &FeatureSpec,
    history: &[&MetricsSnapshot],
    worker: WorkerId,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut features = Vec::with_capacity(history.len());
    let mut targets = Vec::with_capacity(history.len());
    let mut last_target = 0.0;
    for snap in history {
        if let Some(f) = extract(spec, snap, worker) {
            let t = target(snap, worker).unwrap_or(last_target);
            last_target = t;
            features.push(f);
            targets.push(t);
        }
    }
    (features, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsdps::metrics::{MachineStats, TaskStats, TopologyStats, WorkerStats};
    use dsdps::scheduler::MachineId;
    use dsdps::topology::TaskId;

    fn snapshot(lat0: f64, lat1: f64, external: f64) -> MetricsSnapshot {
        let worker = |id: usize, lat: f64| WorkerStats {
            worker: WorkerId(id),
            machine: MachineId(0),
            cpu_cores_used: 0.5 + id as f64 * 0.1,
            memory_mb: 120.0,
            executed: 100 + id as u64,
            tuples_in: 90,
            tuples_out: 80,
            avg_execute_latency_us: lat,
            num_tasks: 1,
        };
        MetricsSnapshot {
            interval: 0,
            time_s: 1.0,
            interval_s: 1.0,
            tasks: vec![TaskStats {
                task: TaskId(0),
                component: "b".into(),
                worker: WorkerId(0),
                executed: 100,
                emitted: 100,
                acked: 100,
                failed: 0,
                avg_execute_latency_us: lat0,
                queue_len: 7,
                capacity: 0.5,
                batches_flushed: 0,
                linger_flushes: 0,
                panics: 0,
                restarts: 0,
                last_panic: None,
                checkpoints_taken: 0,
                restores: 0,
                snapshot_bytes: 0,
            }],
            workers: vec![worker(0, lat0), worker(1, lat1)],
            machines: vec![MachineStats {
                machine: MachineId(0),
                cpu_cores_used: 1.1,
                external_load_cores: external,
                cores: 4,
                num_workers: 2,
            }],
            topology: TopologyStats {
                spout_emitted: 200,
                acked: 200,
                failed: 0,
                timed_out: 0,
                avg_complete_latency_ms: 3.0,
                p99_complete_latency_ms: 9.0,
                throughput: 200.0,
            },
        }
    }

    #[test]
    fn dims_match_spec() {
        assert_eq!(FeatureSpec::full().dim(), 11);
        assert_eq!(FeatureSpec::worker_only().dim(), 6);
        assert_eq!(FeatureSpec::full().names().len(), 11);
        assert_eq!(FeatureSpec::worker_only().names().len(), 6);
    }

    #[test]
    fn extract_full_includes_interference_signals() {
        let snap = snapshot(150.0, 300.0, 2.5);
        let f = extract(&FeatureSpec::full(), &snap, WorkerId(0)).unwrap();
        assert_eq!(f.len(), 11);
        assert_eq!(f[0], 150.0); // own latency
        assert_eq!(f[3], 7.0); // queue from task level
        let names = FeatureSpec::full().names();
        let ext_idx = names.iter().position(|n| *n == "m_external_load").unwrap();
        assert_eq!(f[ext_idx], 2.5);
        let co_idx = names.iter().position(|n| *n == "co_cpu_cores").unwrap();
        assert!((f[co_idx] - 0.6).abs() < 1e-12, "other worker's cpu");
    }

    #[test]
    fn worker_only_excludes_machine_features() {
        let snap = snapshot(150.0, 300.0, 2.5);
        let f = extract(&FeatureSpec::worker_only(), &snap, WorkerId(0)).unwrap();
        assert_eq!(f.len(), 6);
        assert!(
            !f.contains(&2.5),
            "external load leaked into worker-only features"
        );
    }

    #[test]
    fn colocation_sums_only_same_machine_others() {
        let snap = snapshot(100.0, 200.0, 0.0);
        let f0 = extract(&FeatureSpec::full(), &snap, WorkerId(0)).unwrap();
        let f1 = extract(&FeatureSpec::full(), &snap, WorkerId(1)).unwrap();
        let names = FeatureSpec::full().names();
        let co = names.iter().position(|n| *n == "co_executed").unwrap();
        assert_eq!(f0[co], 101.0); // worker 1's executed
        assert_eq!(f1[co], 100.0); // worker 0's executed
    }

    #[test]
    fn unknown_worker_is_none() {
        let snap = snapshot(1.0, 2.0, 0.0);
        assert!(extract(&FeatureSpec::full(), &snap, WorkerId(9)).is_none());
        assert!(target(&snap, WorkerId(9)).is_none());
    }

    #[test]
    fn series_gap_fills_idle_intervals() {
        let busy = snapshot(100.0, 1.0, 0.0);
        let mut idle = snapshot(0.0, 1.0, 0.0);
        idle.workers[0].executed = 0;
        let history = vec![&busy, &idle, &busy];
        let (features, targets) = series_for_worker(&FeatureSpec::full(), &history, WorkerId(0));
        assert_eq!(features.len(), 3);
        assert_eq!(
            targets,
            vec![100.0, 100.0, 100.0],
            "idle interval carries forward"
        );
    }
}

//! The control loop: observe multilevel metrics → (predict) → detect
//! misbehaving workers → plan split ratios → actuate dynamic groupings.
//!
//! A [`Controller`] is driven by the runtime's metrics hook, one call per
//! metrics interval.  In `Predictive` mode it acts on what the performance
//! model says latency *will be* `horizon` intervals from now — the paper's
//! framework.  `Reactive` mode (an evaluation baseline) acts on the latency
//! just observed, and `Monitor` mode never actuates.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dsdps::grouping::dynamic::{DynamicGroupingHandle, SplitRatio};
use dsdps::metrics::MetricsSnapshot;
use dsdps::scheduler::{Placement, WorkerId};
use dsdps::sim::ControlHook;
use dsdps::telemetry::{Journal, JournalEvent};
use dsdps::topology::{TaskId, Topology};
use serde::{Deserialize, Serialize};

use crate::detector::{Detector, DetectorConfig};
use crate::error::{Error, Result};
use crate::planner::{plan_ratio, PlanPolicy};
use crate::predictor::PerformancePredictor;

/// How the controller decides which workers are misbehaving.
pub enum ControlMode {
    /// Act on model predictions (the paper's framework).
    Predictive(Box<dyn PerformancePredictor>),
    /// Act on the latency observed in the last interval.
    Reactive,
    /// Observe only; never touch the groupings.
    Monitor,
}

impl ControlMode {
    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            ControlMode::Predictive(p) => format!("predictive({})", p.name()),
            ControlMode::Reactive => "reactive".into(),
            ControlMode::Monitor => "monitor".into(),
        }
    }
}

/// A spout-rate actuation surface: the second knob (next to routing
/// ratios) the planner can turn, trading throughput against tail latency.
/// Implemented by `dsdps::rt::BackpressureHandle` for live topologies and
/// trivially stubbable in tests.
pub trait RateActuator: Send {
    /// Current spout rate cap, tuples/s (`None` = uncapped).
    fn rate_cap(&self) -> Option<f64>;
    /// Applies (or clears) the cap; `reason` lands in the journal.
    fn set_rate_cap(&self, cap: Option<f64>, reason: &str);
}

impl RateActuator for dsdps::rt::BackpressureHandle {
    fn rate_cap(&self) -> Option<f64> {
        dsdps::rt::BackpressureHandle::rate_cap(self)
    }
    fn set_rate_cap(&self, cap: Option<f64>, reason: &str) {
        dsdps::rt::BackpressureHandle::set_rate_cap(self, cap, reason);
    }
}

/// Parameters of the controller's spout-rate policy
/// ([`Controller::attach_rate_actuator`]): hold the topology's complete-
/// latency p99 under an SLO by capping spout rate, and recover throughput
/// multiplicatively once comfortably back under it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateControlConfig {
    /// Target: complete-latency p99 must stay at or under this, ms.
    pub p99_slo_ms: f64,
    /// Multiplicative cut applied to the cap while over the SLO, in (0, 1).
    pub decrease_factor: f64,
    /// Multiplicative growth applied while under half the SLO, > 1.
    pub recovery_factor: f64,
    /// The cap never drops below this, tuples/s.
    pub min_rate: f64,
}

impl Default for RateControlConfig {
    fn default() -> Self {
        RateControlConfig {
            p99_slo_ms: 50.0,
            decrease_factor: 0.7,
            recovery_factor: 1.25,
            min_rate: 100.0,
        }
    }
}

/// Controller parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Misbehavior detection thresholds.
    pub detector: DetectorConfig,
    /// Split-ratio policy.
    pub policy: PlanPolicy,
    /// Intervals of history retained for prediction.
    pub history_capacity: usize,
    /// Intervals observed before the controller may actuate; baselines are
    /// calibrated from this window if not set explicitly.
    pub warmup_intervals: usize,
    /// Minimum L∞ ratio change worth applying (suppresses churn).
    pub min_ratio_delta: f64,
    /// Traffic share each bypassed task keeps receiving as a health probe,
    /// so its worker stays observable and recovery can be detected.
    pub probe_weight: f64,
    /// Auto-calibrated baselines are clamped from below to this fraction of
    /// the cross-worker median baseline.  A worker whose metric mixes cheap
    /// work (e.g. it co-hosts a spout) would otherwise get a tiny baseline
    /// and flag on trivial absolute latencies.
    pub baseline_floor_fraction: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            detector: DetectorConfig::default(),
            policy: PlanPolicy::default(),
            history_capacity: 256,
            warmup_intervals: 20,
            min_ratio_delta: 0.02,
            probe_weight: 0.02,
            baseline_floor_fraction: 0.5,
        }
    }
}

/// One dynamic-grouping edge under control.
pub struct ControlledEdge {
    /// Label `producer->subscriber` for logs.
    pub label: String,
    /// Live ratio handle.
    pub handle: DynamicGroupingHandle,
    /// Subscriber tasks in ratio-index order.
    pub tasks: Vec<TaskId>,
}

/// Audit-log entry of a control decision.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEvent {
    /// A worker was flagged as misbehaving.
    Flagged {
        /// Interval index.
        interval: u64,
        /// The worker.
        worker: WorkerId,
        /// The latency (µs) that triggered the flag.
        latency_us: f64,
    },
    /// A previously flagged worker recovered.
    Recovered {
        /// Interval index.
        interval: u64,
        /// The worker.
        worker: WorkerId,
    },
    /// A new split ratio was pushed to an edge.
    RatioApplied {
        /// Interval index.
        interval: u64,
        /// Edge label.
        edge: String,
        /// The applied ratio.
        ratio: SplitRatio,
    },
    /// A new spout rate cap was pushed to the rate actuator.
    RateCapApplied {
        /// Interval index.
        interval: u64,
        /// The applied cap, tuples/s (`None` = uncapped).
        rate_cap: Option<f64>,
        /// The p99 complete latency (ms) that drove the decision.
        p99_ms: f64,
    },
}

/// The predictive controller.
pub struct Controller {
    config: ControllerConfig,
    mode: ControlMode,
    detector: Detector,
    edges: Vec<ControlledEdge>,
    task_worker: HashMap<TaskId, WorkerId>,
    workers: Vec<WorkerId>,
    history: Vec<MetricsSnapshot>,
    events: Vec<ControlEvent>,
    calibrated: bool,
    /// Last latency estimate per worker (prediction or observation).
    last_estimates: HashMap<WorkerId, f64>,
    /// Attached control-plane journal, if any ([`Controller::attach_journal`]).
    journal: Option<Arc<Journal>>,
    /// Attached spout-rate actuator and its policy, if any
    /// ([`Controller::attach_rate_actuator`]).
    rate_control: Option<(RateControlConfig, Box<dyn RateActuator>)>,
}

impl Controller {
    /// Builds a controller for every dynamic-grouping edge of `topology`.
    ///
    /// `placement` maps the subscriber tasks to the workers whose health
    /// governs their weight.
    pub fn for_topology(
        topology: &Topology,
        placement: &Placement,
        config: ControllerConfig,
        mode: ControlMode,
    ) -> Result<Self> {
        let mut edges = Vec::new();
        let mut task_worker = HashMap::new();
        let mut workers: Vec<WorkerId> = Vec::new();
        for ((producer, stream, subscriber), handle) in topology.dynamic_handles() {
            let sub = topology
                .component_by_name(subscriber)
                .ok_or_else(|| Error::Config(format!("unknown subscriber {subscriber}")))?;
            let tasks: Vec<TaskId> = sub.tasks().collect();
            for &t in &tasks {
                let w = placement.worker_of(t);
                task_worker.insert(t, w);
                if !workers.contains(&w) {
                    workers.push(w);
                }
            }
            edges.push(ControlledEdge {
                label: format!("{producer}/{stream}->{subscriber}"),
                handle: handle.clone(),
                tasks,
            });
        }
        if edges.is_empty() {
            return Err(Error::Config(
                "topology has no dynamic-grouping edge to control".into(),
            ));
        }
        workers.sort();
        Ok(Controller {
            detector: Detector::new(config.detector),
            config,
            mode,
            edges,
            task_worker,
            workers,
            history: Vec::new(),
            events: Vec::new(),
            calibrated: false,
            last_estimates: HashMap::new(),
            journal: None,
            rate_control: None,
        })
    }

    /// Attaches a control-plane [`Journal`] (typically the running
    /// topology's, via `RunningTopology::journal()`): every subsequent
    /// flag / recover / ratio decision is appended there as a
    /// [`JournalEvent`] alongside the in-memory [`ControlEvent`] audit log,
    /// cross-referencable with the runtime's restart and replay events.
    pub fn attach_journal(&mut self, journal: Arc<Journal>) {
        self.journal = Some(journal);
    }

    /// Attaches a spout-rate actuator (typically the running topology's
    /// `BackpressureHandle`): each control epoch then also holds the
    /// topology's complete-latency p99 under `config.p99_slo_ms` by cutting
    /// the spout rate cap multiplicatively, recovering it once the p99 sits
    /// comfortably under half the SLO.  Decisions are pushed through the
    /// actuator (which journals them as `ThrottleChanged` with reason
    /// `"controller"`) and recorded as [`ControlEvent::RateCapApplied`].
    pub fn attach_rate_actuator(
        &mut self,
        actuator: Box<dyn RateActuator>,
        config: RateControlConfig,
    ) {
        self.rate_control = Some((config, actuator));
    }

    /// The workers whose health this controller tracks.
    pub fn controlled_workers(&self) -> &[WorkerId] {
        &self.workers
    }

    /// The control-decision audit log.
    pub fn events(&self) -> &[ControlEvent] {
        &self.events
    }

    /// Retained metrics history (oldest first).
    pub fn history(&self) -> &[MetricsSnapshot] {
        &self.history
    }

    /// The control mode's name.
    pub fn mode_name(&self) -> String {
        self.mode.name()
    }

    /// Sets a worker's healthy baseline explicitly (µs).  Otherwise
    /// baselines auto-calibrate from the warmup window.
    pub fn set_baseline(&mut self, worker: WorkerId, baseline_us: f64) {
        self.detector.set_baseline(worker, baseline_us);
        self.calibrated = true;
    }

    /// Latest latency estimate per worker (prediction in predictive mode).
    pub fn latest_estimates(&self) -> &HashMap<WorkerId, f64> {
        &self.last_estimates
    }

    fn calibrate_from_warmup(&mut self) {
        // In predictive mode the baseline is the median of the *model's own
        // warmup predictions*, not of the raw observations: the detector
        // then compares prediction against prediction, so any systematic
        // bias of the model cancels instead of causing spurious flags.
        let mut baselines: Vec<(WorkerId, f64)> = Vec::new();
        for &w in &self.workers {
            let mut lats: Vec<f64> = match &self.mode {
                ControlMode::Predictive(p) => (1..self.history.len())
                    .filter_map(|t| {
                        let refs: Vec<&MetricsSnapshot> = self.history[..=t].iter().collect();
                        p.predict(&refs, w)
                    })
                    .collect(),
                _ => Vec::new(),
            };
            if lats.is_empty() {
                lats = self
                    .history
                    .iter()
                    .filter_map(|s| s.worker_avg_latency_us(w))
                    .collect();
            }
            if lats.is_empty() {
                continue;
            }
            lats.sort_by(f64::total_cmp);
            let median = lats[lats.len() / 2];
            if median > 0.0 {
                baselines.push((w, median));
            }
        }
        // Clamp tiny baselines (mixed workers co-hosting cheap components)
        // to a fraction of the cross-worker median.
        if !baselines.is_empty() {
            let mut meds: Vec<f64> = baselines.iter().map(|(_, b)| *b).collect();
            meds.sort_by(f64::total_cmp);
            let floor = meds[meds.len() / 2] * self.config.baseline_floor_fraction;
            for (w, b) in baselines {
                self.detector.set_baseline(w, b.max(floor));
            }
        }
        self.calibrated = true;
    }

    /// Feeds one metrics snapshot; runs a control epoch when warmed up.
    pub fn on_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        self.history.push(snapshot.clone());
        if self.history.len() > self.config.history_capacity {
            let overflow = self.history.len() - self.config.history_capacity;
            self.history.drain(..overflow);
        }
        if self.history.len() < self.config.warmup_intervals {
            return;
        }
        if !self.calibrated {
            self.calibrate_from_warmup();
        }
        if matches!(self.mode, ControlMode::Monitor) {
            return;
        }

        // 1. Estimate each worker's (near-future) latency.
        let refs: Vec<&MetricsSnapshot> = self.history.iter().collect();
        let mut estimates: HashMap<WorkerId, f64> = HashMap::new();
        for &w in &self.workers {
            // A worker that executed nothing this interval gives no signal:
            // feeding the model its zeroed idle features would read as
            // "instantly healthy" and cause flag/unflag flapping.  Probe
            // traffic (see `probe_weight`) keeps bypassed workers observable.
            if snapshot.worker_avg_latency_us(w).is_none() {
                continue;
            }
            let observed = snapshot.worker_avg_latency_us(w);
            let est = match &self.mode {
                // Flagging combines the model's forecast with the current
                // observation.  Three cases for an unflagged worker:
                //   1. observation clearly healthy (below the recovery
                //      threshold): trust the measurement — acting on a
                //      prediction that contradicts a healthy measurement
                //      causes closed-loop flapping, because rerouting
                //      itself shifts the feature distribution the model
                //      was trained on;
                //   2. observation drifting: act on max(prediction,
                //      observation) — the prediction makes the controller
                //      proactive, the observation guarantees it is never
                //      slower than reactive control on faults outside the
                //      model's training distribution.
                // Recovery of an already-flagged worker is confirmed from
                // the observed latency of its probe traffic alone — the
                // probe regime (trickle load on a degraded worker) is not a
                // regime the model was trained on, and a measured probe is
                // ground truth.
                ControlMode::Predictive(p) if !self.detector.is_misbehaving(w) => {
                    match (p.predict(&refs, w), observed) {
                        (Some(pred), Some(obs)) => {
                            let clearly_healthy = self
                                .detector
                                .baseline(w)
                                .is_some_and(|b| obs <= self.config.detector.recover_factor * b);
                            Some(if clearly_healthy { obs } else { pred.max(obs) })
                        }
                        (pred, obs) => pred.or(obs),
                    }
                }
                ControlMode::Predictive(_) | ControlMode::Reactive => observed,
                ControlMode::Monitor => unreachable!(),
            };
            if let Some(est) = est {
                estimates.insert(w, est);
            }
        }

        // 2. Detect.
        let before: Vec<WorkerId> = self.detector.misbehaving_workers();
        for (&w, &lat) in &estimates {
            self.detector.observe(w, lat);
        }
        let after = self.detector.misbehaving_workers();
        for &w in &after {
            if !before.contains(&w) {
                let latency_us = estimates.get(&w).copied().unwrap_or(f64::NAN);
                if let Some(journal) = &self.journal {
                    journal.append(JournalEvent::WorkerFlagged {
                        time_s: snapshot.time_s,
                        worker: w.0,
                        latency_us,
                    });
                }
                self.events.push(ControlEvent::Flagged {
                    interval: snapshot.interval,
                    worker: w,
                    latency_us,
                });
            }
        }
        for &w in &before {
            if !after.contains(&w) {
                if let Some(journal) = &self.journal {
                    journal.append(JournalEvent::WorkerRecovered {
                        time_s: snapshot.time_s,
                        worker: w.0,
                    });
                }
                self.events.push(ControlEvent::Recovered {
                    interval: snapshot.interval,
                    worker: w,
                });
            }
        }

        // 3. Plan and actuate each edge.
        for edge in &self.edges {
            let Ok(ratio) = plan_ratio(
                self.config.policy,
                &edge.tasks,
                &self.task_worker,
                &after,
                &estimates,
                self.config.probe_weight,
            ) else {
                continue;
            };
            let current = edge.handle.ratio();
            if current.max_abs_diff(&ratio) >= self.config.min_ratio_delta
                && edge.handle.set_ratio(ratio.clone()).is_ok()
            {
                if let Some(journal) = &self.journal {
                    journal.append(JournalEvent::RatioApplied {
                        time_s: snapshot.time_s,
                        edge: edge.label.clone(),
                        ratio: ratio.as_slice().to_vec(),
                    });
                }
                self.events.push(ControlEvent::RatioApplied {
                    interval: snapshot.interval,
                    edge: edge.label.clone(),
                    ratio,
                });
            }
        }
        // 4. Rate actuation: trade throughput for tail latency.
        if let Some((rc, actuator)) = &self.rate_control {
            let p99_ms = snapshot.topology.p99_complete_latency_ms;
            let cap = actuator.rate_cap();
            let new_cap = if p99_ms > rc.p99_slo_ms {
                // Over SLO: cut.  From uncapped, start at the throughput
                // actually observed (INFINITY has no meaningful multiple).
                let base = cap.unwrap_or_else(|| snapshot.topology.throughput.max(rc.min_rate));
                Some((base * rc.decrease_factor).max(rc.min_rate))
            } else if p99_ms < rc.p99_slo_ms * 0.5 {
                // Comfortably under: recover throughput.
                cap.map(|c| c * rc.recovery_factor)
            } else {
                cap
            };
            if new_cap != cap {
                actuator.set_rate_cap(new_cap, "controller");
                self.events.push(ControlEvent::RateCapApplied {
                    interval: snapshot.interval,
                    rate_cap: new_cap,
                    p99_ms,
                });
            }
        }
        self.last_estimates = estimates;
    }
}

/// Wraps a shared controller as a [`ControlHook`] for
/// [`dsdps::sim::SimRuntime::add_control_hook`] (also usable with the
/// threaded runtime's hook).
pub fn control_hook(controller: Arc<Mutex<Controller>>) -> ControlHook {
    Box::new(move |snapshot| {
        controller.lock().on_snapshot(snapshot);
    })
}

/// Wraps a shared controller as a threaded-runtime
/// [`MetricsHook`](dsdps::rt::MetricsHook) — the wall-clock counterpart of
/// [`control_hook`], for closing the loop over a real run via
/// [`dsdps::rt::submit_with_hook`] or [`dsdps::rt::submit_faulty`].
pub fn rt_control_hook(controller: Arc<Mutex<Controller>>) -> dsdps::rt::MetricsHook {
    Box::new(move |snapshot| {
        controller.lock().on_snapshot(snapshot);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsdps::metrics::{MachineStats, TopologyStats, WorkerStats};
    use dsdps::scheduler::MachineId;

    struct StubPredictor {
        /// Worker → fixed prediction.
        preds: HashMap<WorkerId, f64>,
    }

    impl PerformancePredictor for StubPredictor {
        fn fit(&mut self, _h: &[&MetricsSnapshot], _w: &[WorkerId]) -> Result<()> {
            Ok(())
        }
        fn predict(&self, _h: &[&MetricsSnapshot], worker: WorkerId) -> Option<f64> {
            self.preds.get(&worker).copied()
        }
        fn horizon(&self) -> usize {
            1
        }
        fn name(&self) -> String {
            "stub".into()
        }
    }

    fn snapshot(interval: u64, lats: &[f64]) -> MetricsSnapshot {
        MetricsSnapshot {
            interval,
            time_s: interval as f64,
            interval_s: 1.0,
            tasks: vec![],
            workers: lats
                .iter()
                .enumerate()
                .map(|(i, &lat)| WorkerStats {
                    worker: WorkerId(i),
                    machine: MachineId(0),
                    cpu_cores_used: 0.5,
                    memory_mb: 100.0,
                    executed: 100,
                    tuples_in: 0,
                    tuples_out: 0,
                    avg_execute_latency_us: lat,
                    num_tasks: 1,
                })
                .collect(),
            machines: vec![MachineStats {
                machine: MachineId(0),
                cpu_cores_used: 1.0,
                external_load_cores: 0.0,
                cores: 4,
                num_workers: lats.len(),
            }],
            topology: TopologyStats {
                spout_emitted: 0,
                acked: 0,
                failed: 0,
                timed_out: 0,
                avg_complete_latency_ms: 0.0,
                p99_complete_latency_ms: 0.0,
                throughput: 0.0,
            },
        }
    }

    /// Builds a 1-spout → 4-task dynamic topology and its controller.
    fn build(mode: ControlMode) -> (Controller, DynamicGroupingHandle) {
        use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
        use dsdps::config::EngineConfig;
        use dsdps::topology::TopologyBuilder;
        use dsdps::tuple::Tuple;

        struct S;
        impl Spout for S {
            fn next_tuple(&mut self, _o: &mut SpoutOutput) -> bool {
                false
            }
        }
        struct B;
        impl Bolt for B {
            fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
        }
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 1, || S).unwrap();
        b.set_bolt("sink", 4, || B)
            .unwrap()
            .dynamic_grouping("s")
            .unwrap();
        let topo = b.build().unwrap();
        let handle = topo
            .dynamic_handle("s", &dsdps::stream::StreamId::default(), "sink")
            .unwrap();
        // 4 workers on 2 machines; sink tasks are tasks 1..5.
        let placement =
            dsdps::scheduler::even_placement(&topo, &EngineConfig::default().with_cluster(2, 2, 4))
                .unwrap();
        let cfg = ControllerConfig {
            warmup_intervals: 3,
            // Full bypass in these tests: zeroed-task assertions are exact.
            probe_weight: 0.0,
            ..ControllerConfig::default()
        };
        let c = Controller::for_topology(&topo, &placement, cfg, mode).unwrap();
        (c, handle)
    }

    #[test]
    fn builds_edges_and_workers_from_topology() {
        let (c, _) = build(ControlMode::Monitor);
        assert_eq!(c.controlled_workers().len(), 4);
        assert_eq!(c.mode_name(), "monitor");
    }

    #[test]
    fn errors_without_dynamic_edges() {
        use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
        use dsdps::config::EngineConfig;
        use dsdps::topology::TopologyBuilder;
        use dsdps::tuple::Tuple;
        struct S;
        impl Spout for S {
            fn next_tuple(&mut self, _o: &mut SpoutOutput) -> bool {
                false
            }
        }
        struct B;
        impl Bolt for B {
            fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
        }
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 1, || S).unwrap();
        b.set_bolt("sink", 2, || B)
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        let topo = b.build().unwrap();
        let placement = dsdps::scheduler::even_placement(&topo, &EngineConfig::default()).unwrap();
        assert!(Controller::for_topology(
            &topo,
            &placement,
            ControllerConfig::default(),
            ControlMode::Monitor
        )
        .is_err());
    }

    #[test]
    fn monitor_mode_never_actuates() {
        let (mut c, handle) = build(ControlMode::Monitor);
        let v0 = handle.version();
        for i in 0..20 {
            c.on_snapshot(&snapshot(i, &[100.0, 100.0, 9999.0, 100.0]));
        }
        assert_eq!(handle.version(), v0);
        assert!(c.events().is_empty());
    }

    #[test]
    fn reactive_mode_zeroes_tasks_of_misbehaving_worker() {
        let (mut c, handle) = build(ControlMode::Reactive);
        // Warmup with healthy latencies → baselines ≈ 100.
        for i in 0..5 {
            c.on_snapshot(&snapshot(i, &[100.0, 100.0, 100.0, 100.0]));
        }
        // Worker 2 degrades hard for several epochs.
        for i in 5..10 {
            c.on_snapshot(&snapshot(i, &[100.0, 100.0, 800.0, 100.0]));
        }
        let flagged: Vec<_> = c
            .events()
            .iter()
            .filter(|e| matches!(e, ControlEvent::Flagged { .. }))
            .collect();
        assert!(!flagged.is_empty(), "worker 2 must be flagged");
        let ratio = handle.ratio();
        // The sink task hosted by worker 2 must be zeroed.  With the even
        // scheduler, task 1+k is on worker (1+k) % 4; worker 2 hosts task 1.
        let zeroed = ratio.zeroed_tasks();
        assert_eq!(zeroed.len(), 1, "exactly one task bypassed: {ratio:?}");
    }

    #[test]
    fn predictive_mode_ignores_prediction_when_observation_healthy() {
        // Clearly healthy observation + alarming prediction: the
        // corroboration rule trusts the measurement (prevents closed-loop
        // flapping after reroutes shift the feature distribution).
        let mut preds: HashMap<WorkerId, f64> = (0..4).map(|i| (WorkerId(i), 100.0)).collect();
        preds.insert(WorkerId(2), 900.0);
        let (mut c, _handle) = build(ControlMode::Predictive(Box::new(StubPredictor { preds })));
        for &w in &[0, 1, 2, 3] {
            c.set_baseline(WorkerId(w), 100.0);
        }
        for i in 0..10 {
            c.on_snapshot(&snapshot(i, &[100.0; 4]));
        }
        assert!(
            !c.events()
                .iter()
                .any(|e| matches!(e, ControlEvent::Flagged { .. })),
            "healthy measurement must veto the prediction: {:?}",
            c.events()
        );
    }

    #[test]
    fn predictive_mode_never_slower_than_reactive() {
        // Healthy predictions but terrible observations: the hybrid
        // max(prediction, observation) estimate must still flag, so the
        // predictive controller is never blinder than the reactive one.
        let preds: HashMap<WorkerId, f64> = (0..4).map(|i| (WorkerId(i), 100.0)).collect();
        let (mut c, handle) = build(ControlMode::Predictive(Box::new(StubPredictor { preds })));
        for &w in &[0, 1, 2, 3] {
            c.set_baseline(WorkerId(w), 100.0);
        }
        for i in 0..10 {
            c.on_snapshot(&snapshot(i, &[100.0, 100.0, 5000.0, 100.0]));
        }
        assert!(c
            .events()
            .iter()
            .any(|e| matches!(e, ControlEvent::Flagged { worker, .. } if *worker == WorkerId(2))));
        let _ = handle;
    }

    #[test]
    fn predictive_mode_flags_on_predicted_degradation() {
        let mut preds: HashMap<WorkerId, f64> = (0..4).map(|i| (WorkerId(i), 100.0)).collect();
        preds.insert(WorkerId(1), 900.0); // model predicts worker 1 will degrade
        let (mut c, handle) = build(ControlMode::Predictive(Box::new(StubPredictor { preds })));
        for &w in &[0, 1, 2, 3] {
            c.set_baseline(WorkerId(w), 100.0);
        }
        // Worker 1's observation is drifting (above the recovery threshold
        // of 1.4x baseline but below the 2x trigger), so the corroboration
        // rule lets the *prediction* flag it proactively.
        for i in 0..10 {
            c.on_snapshot(&snapshot(i, &[100.0, 160.0, 100.0, 100.0]));
        }
        assert!(c
            .events()
            .iter()
            .any(|e| matches!(e, ControlEvent::Flagged { worker, .. } if *worker == WorkerId(1))));
        assert_eq!(handle.ratio().zeroed_tasks().len(), 1);
    }

    #[test]
    fn ratio_churn_suppressed_below_delta() {
        let (mut c, handle) = build(ControlMode::Reactive);
        for i in 0..30 {
            // Tiny latency wiggle: capacity-proportional ratios barely move.
            let wiggle = 100.0 + (i % 2) as f64 * 0.5;
            c.on_snapshot(&snapshot(i, &[wiggle, 100.0, 100.0, 100.0]));
        }
        let applied = c
            .events()
            .iter()
            .filter(|e| matches!(e, ControlEvent::RatioApplied { .. }))
            .count();
        assert!(applied <= 1, "churn: {applied} ratio updates");
        let _ = handle;
    }

    #[test]
    fn history_is_bounded() {
        let (mut c, _) = build(ControlMode::Monitor);
        for i in 0..600 {
            c.on_snapshot(&snapshot(i, &[100.0; 4]));
        }
        assert_eq!(
            c.history().len(),
            ControllerConfig::default().history_capacity
        );
    }

    /// Stub rate actuator: a shared cell standing in for the runtime's
    /// `BackpressureHandle`.
    struct StubActuator {
        cap: Arc<Mutex<Option<f64>>>,
    }
    impl RateActuator for StubActuator {
        fn rate_cap(&self) -> Option<f64> {
            *self.cap.lock()
        }
        fn set_rate_cap(&self, cap: Option<f64>, _reason: &str) {
            *self.cap.lock() = cap;
        }
    }

    fn snapshot_with_p99(interval: u64, p99_ms: f64, throughput: f64) -> MetricsSnapshot {
        let mut s = snapshot(interval, &[100.0; 4]);
        s.topology.p99_complete_latency_ms = p99_ms;
        s.topology.throughput = throughput;
        s
    }

    #[test]
    fn rate_actuator_caps_over_slo_and_recovers_under_it() {
        let (mut c, _) = build(ControlMode::Reactive);
        let cap = Arc::new(Mutex::new(None));
        c.attach_rate_actuator(
            Box::new(StubActuator { cap: cap.clone() }),
            RateControlConfig {
                p99_slo_ms: 50.0,
                ..RateControlConfig::default()
            },
        );
        // Warmup + over-SLO intervals: the first breach caps at
        // throughput × decrease_factor, further breaches keep cutting.
        for i in 0..5 {
            c.on_snapshot(&snapshot_with_p99(i, 10.0, 2000.0));
        }
        assert_eq!(*cap.lock(), None, "under SLO stays uncapped");
        for i in 5..8 {
            c.on_snapshot(&snapshot_with_p99(i, 200.0, 2000.0));
        }
        let capped = cap.lock().expect("over-SLO run must be capped");
        assert!(capped < 2000.0, "cap below observed throughput: {capped}");
        // Comfortably under half the SLO: the cap recovers multiplicatively.
        for i in 8..12 {
            c.on_snapshot(&snapshot_with_p99(i, 5.0, 1000.0));
        }
        let recovered = cap.lock().expect("recovery keeps a (growing) cap");
        assert!(recovered > capped, "{recovered} vs {capped}");
        // Decisions land in the audit log.
        assert!(c
            .events()
            .iter()
            .any(|e| matches!(e, ControlEvent::RateCapApplied { .. })));
        // Never below the floor.
        let floor = RateControlConfig::default().min_rate;
        for i in 12..40 {
            c.on_snapshot(&snapshot_with_p99(i, 500.0, 2000.0));
        }
        assert!(cap.lock().unwrap() >= floor);
    }

    #[test]
    fn control_hook_drives_shared_controller() {
        let (c, _) = build(ControlMode::Monitor);
        let shared = Arc::new(Mutex::new(c));
        let mut hook = control_hook(shared.clone());
        hook(&snapshot(0, &[1.0; 4]));
        hook(&snapshot(1, &[1.0; 4]));
        assert_eq!(shared.lock().history().len(), 2);
    }
}

#[cfg(test)]
mod multi_edge_tests {
    use super::*;
    use crate::detector::DetectorConfig;
    use dsdps::component::{Bolt, BoltOutput, Spout, SpoutOutput};
    use dsdps::config::EngineConfig;
    use dsdps::metrics::{MachineStats, TopologyStats, WorkerStats};
    use dsdps::scheduler::MachineId;
    use dsdps::topology::TopologyBuilder;
    use dsdps::tuple::Tuple;

    struct S;
    impl Spout for S {
        fn next_tuple(&mut self, _o: &mut SpoutOutput) -> bool {
            false
        }
    }
    struct B;
    impl Bolt for B {
        fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {}
    }

    fn snapshot(interval: u64, lats: &[f64]) -> MetricsSnapshot {
        MetricsSnapshot {
            interval,
            time_s: interval as f64,
            interval_s: 1.0,
            tasks: vec![],
            workers: lats
                .iter()
                .enumerate()
                .map(|(i, &lat)| WorkerStats {
                    worker: WorkerId(i),
                    machine: MachineId(0),
                    cpu_cores_used: 0.5,
                    memory_mb: 100.0,
                    executed: 100,
                    tuples_in: 0,
                    tuples_out: 0,
                    avg_execute_latency_us: lat,
                    num_tasks: 1,
                })
                .collect(),
            machines: vec![MachineStats {
                machine: MachineId(0),
                cpu_cores_used: 1.0,
                external_load_cores: 0.0,
                cores: 4,
                num_workers: lats.len(),
            }],
            topology: TopologyStats {
                spout_emitted: 0,
                acked: 0,
                failed: 0,
                timed_out: 0,
                avg_complete_latency_ms: 0.0,
                p99_complete_latency_ms: 0.0,
                throughput: 0.0,
            },
        }
    }

    /// A topology with TWO dynamic edges feeding different stages; the
    /// controller must manage both, and a flagged worker affects exactly
    /// the edge(s) whose tasks it hosts.
    #[test]
    fn controller_manages_multiple_dynamic_edges() {
        let mut b = TopologyBuilder::new("multi");
        b.set_spout("s", 1, || S).unwrap();
        b.set_bolt("stage_a", 3, || B)
            .unwrap()
            .dynamic_grouping("s")
            .unwrap();
        b.set_bolt("stage_b", 2, || B)
            .unwrap()
            .dynamic_grouping("stage_a")
            .unwrap();
        let topo = b.build().unwrap();
        let handle_a = topo
            .dynamic_handle("s", &dsdps::stream::StreamId::default(), "stage_a")
            .unwrap();
        let handle_b = topo
            .dynamic_handle("stage_a", &dsdps::stream::StreamId::default(), "stage_b")
            .unwrap();
        // 6 tasks over 6 workers: stage_a on w1..w3, stage_b on w4..w5.
        let placement =
            dsdps::scheduler::even_placement(&topo, &EngineConfig::default().with_cluster(3, 2, 4))
                .unwrap();
        let mut c = Controller::for_topology(
            &topo,
            &placement,
            ControllerConfig {
                warmup_intervals: 3,
                probe_weight: 0.0,
                detector: DetectorConfig {
                    trigger_factor: 2.0,
                    trigger_consecutive: 2,
                    ..DetectorConfig::default()
                },
                ..ControllerConfig::default()
            },
            ControlMode::Reactive,
        )
        .unwrap();
        assert_eq!(c.controlled_workers().len(), 5);

        // Warmup healthy, then degrade w4 (hosts stage_b task 0) only.
        for i in 0..5 {
            c.on_snapshot(&snapshot(i, &[100.0; 6]));
        }
        for i in 5..12 {
            let mut lats = [100.0; 6];
            lats[4] = 900.0;
            c.on_snapshot(&snapshot(i, &lats));
        }
        // Edge A (stage_a on w1..w3) stays balanced; edge B zeroes task 0.
        let ra = handle_a.ratio();
        assert!(ra.zeroed_tasks().is_empty(), "edge A untouched: {ra:?}");
        let rb = handle_b.ratio();
        assert_eq!(
            rb.zeroed_tasks(),
            vec![0],
            "edge B bypasses w4's task: {rb:?}"
        );
    }
}

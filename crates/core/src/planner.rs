//! Split-ratio planning: translating per-worker health and predicted
//! capacity into the ratio vectors applied to dynamic-grouping edges.

use std::collections::HashMap;

use dsdps::grouping::dynamic::SplitRatio;
use dsdps::scheduler::WorkerId;
use dsdps::topology::TaskId;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// How healthy workers share the load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlanPolicy {
    /// Equal weight to every healthy task (misbehaving tasks zeroed).
    UniformExcluding,
    /// Weight each healthy task by predicted capacity
    /// `(1 / predicted_latency)^alpha` of its worker (misbehaving zeroed).
    CapacityProportional {
        /// Skew exponent; 1.0 = proportional, 0.0 = uniform.
        alpha: f64,
    },
}

impl Default for PlanPolicy {
    fn default() -> Self {
        PlanPolicy::CapacityProportional { alpha: 1.0 }
    }
}

/// Computes a split ratio over `tasks` (the subscriber tasks of one dynamic
/// edge, in task-index order).
///
/// * `task_worker` — which worker hosts each task;
/// * `misbehaving` — workers whose tasks are bypassed;
/// * `predicted_latency_us` — per-worker latency predictions (used by the
///   capacity-proportional policy; missing workers default to the mean);
/// * `probe_weight` — the share of traffic each bypassed task keeps
///   receiving as a health probe (`0` = full bypass).  Without probe
///   traffic a bypassed worker goes silent and its recovery can never be
///   observed, so the controller defaults to a small non-zero value.
///
/// If *every* task would be zeroed, the planner falls back to uniform —
/// degraded service beats dropping the stream entirely.
pub fn plan_ratio(
    policy: PlanPolicy,
    tasks: &[TaskId],
    task_worker: &HashMap<TaskId, WorkerId>,
    misbehaving: &[WorkerId],
    predicted_latency_us: &HashMap<WorkerId, f64>,
    probe_weight: f64,
) -> Result<SplitRatio> {
    if tasks.is_empty() {
        return Err(Error::Config(
            "dynamic edge with no subscriber tasks".into(),
        ));
    }
    if !(0.0..0.5).contains(&probe_weight) {
        return Err(Error::Config(format!(
            "probe_weight {probe_weight} out of [0, 0.5)"
        )));
    }
    let mean_lat = if predicted_latency_us.is_empty() {
        1.0
    } else {
        predicted_latency_us.values().sum::<f64>() / predicted_latency_us.len() as f64
    };

    let mut weights = Vec::with_capacity(tasks.len());
    let mut flagged = Vec::new();
    for (i, task) in tasks.iter().enumerate() {
        let worker = task_worker
            .get(task)
            .copied()
            .ok_or_else(|| Error::Config(format!("task {task} has no placement")))?;
        if misbehaving.contains(&worker) {
            flagged.push(i);
            weights.push(0.0);
            continue;
        }
        let w = match policy {
            PlanPolicy::UniformExcluding => 1.0,
            PlanPolicy::CapacityProportional { alpha } => {
                let lat = predicted_latency_us
                    .get(&worker)
                    .copied()
                    .unwrap_or(mean_lat)
                    .max(1e-6);
                (1.0 / lat).powf(alpha)
            }
        };
        weights.push(w);
    }

    if weights.iter().all(|&w| w == 0.0) {
        // Every downstream worker is flagged: shed nothing, degrade evenly.
        return Ok(SplitRatio::uniform(tasks.len()));
    }

    // Healthy tasks share (1 - probe_total); flagged tasks get probe_weight
    // each (capped so healthy tasks keep the majority).
    if probe_weight > 0.0 && !flagged.is_empty() {
        let probe_total = (probe_weight * flagged.len() as f64).min(0.2);
        let per_probe = probe_total / flagged.len() as f64;
        let healthy_sum: f64 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w *= (1.0 - probe_total) / healthy_sum;
        }
        for &i in &flagged {
            weights[i] = per_probe;
        }
    }
    Ok(SplitRatio::new(weights)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vec<TaskId>, HashMap<TaskId, WorkerId>) {
        let tasks: Vec<TaskId> = (0..4).map(TaskId).collect();
        let placement: HashMap<TaskId, WorkerId> =
            tasks.iter().map(|&t| (t, WorkerId(t.0))).collect();
        (tasks, placement)
    }

    #[test]
    fn uniform_excluding_zeroes_flagged_workers() {
        let (tasks, placement) = setup();
        let ratio = plan_ratio(
            PlanPolicy::UniformExcluding,
            &tasks,
            &placement,
            &[WorkerId(2)],
            &HashMap::new(),
            0.0,
        )
        .unwrap();
        assert_eq!(ratio.get(2), 0.0);
        for i in [0, 1, 3] {
            assert!((ratio.get(i) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn capacity_proportional_weights_by_inverse_latency() {
        let (tasks, placement) = setup();
        let lat: HashMap<WorkerId, f64> = [
            (WorkerId(0), 100.0),
            (WorkerId(1), 200.0),
            (WorkerId(2), 100.0),
            (WorkerId(3), 400.0),
        ]
        .into_iter()
        .collect();
        let ratio = plan_ratio(
            PlanPolicy::CapacityProportional { alpha: 1.0 },
            &tasks,
            &placement,
            &[],
            &lat,
            0.0,
        )
        .unwrap();
        // Weights ∝ 1/100, 1/200, 1/100, 1/400 = 4:2:4:1 over 11.
        assert!((ratio.get(0) - 4.0 / 11.0).abs() < 1e-12);
        assert!((ratio.get(1) - 2.0 / 11.0).abs() < 1e-12);
        assert!((ratio.get(3) - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let (tasks, placement) = setup();
        let lat: HashMap<WorkerId, f64> = [(WorkerId(0), 1.0), (WorkerId(1), 1000.0)]
            .into_iter()
            .collect();
        let ratio = plan_ratio(
            PlanPolicy::CapacityProportional { alpha: 0.0 },
            &tasks,
            &placement,
            &[],
            &lat,
            0.0,
        )
        .unwrap();
        for i in 0..4 {
            assert!((ratio.get(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn missing_predictions_use_mean() {
        let (tasks, placement) = setup();
        let lat: HashMap<WorkerId, f64> = [(WorkerId(0), 100.0), (WorkerId(1), 300.0)]
            .into_iter()
            .collect();
        let ratio = plan_ratio(
            PlanPolicy::CapacityProportional { alpha: 1.0 },
            &tasks,
            &placement,
            &[],
            &lat,
            0.0,
        )
        .unwrap();
        // Workers 2 and 3 default to mean latency 200.
        assert!((ratio.get(2) - ratio.get(3)).abs() < 1e-12);
        assert!(ratio.get(0) > ratio.get(2));
        assert!(ratio.get(2) > ratio.get(1));
    }

    #[test]
    fn all_flagged_falls_back_to_uniform() {
        let (tasks, placement) = setup();
        let ratio = plan_ratio(
            PlanPolicy::UniformExcluding,
            &tasks,
            &placement,
            &[WorkerId(0), WorkerId(1), WorkerId(2), WorkerId(3)],
            &HashMap::new(),
            0.02,
        )
        .unwrap();
        for i in 0..4 {
            assert!((ratio.get(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn combined_exclusion_and_capacity() {
        let (tasks, placement) = setup();
        let lat: HashMap<WorkerId, f64> = (0..4).map(|i| (WorkerId(i), 100.0)).collect();
        let ratio = plan_ratio(
            PlanPolicy::CapacityProportional { alpha: 1.0 },
            &tasks,
            &placement,
            &[WorkerId(1)],
            &lat,
            0.0,
        )
        .unwrap();
        assert_eq!(ratio.get(1), 0.0);
        assert!((ratio.get(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probe_weight_keeps_flagged_tasks_observable() {
        let (tasks, placement) = setup();
        let ratio = plan_ratio(
            PlanPolicy::UniformExcluding,
            &tasks,
            &placement,
            &[WorkerId(2)],
            &HashMap::new(),
            0.02,
        )
        .unwrap();
        assert!(
            (ratio.get(2) - 0.02).abs() < 1e-12,
            "probe share: {ratio:?}"
        );
        for i in [0, 1, 3] {
            assert!((ratio.get(i) - 0.98 / 3.0).abs() < 1e-12);
        }
        assert!(ratio.zeroed_tasks().is_empty());
    }

    #[test]
    fn probe_total_capped_with_many_flagged() {
        let (tasks, placement) = setup();
        let ratio = plan_ratio(
            PlanPolicy::UniformExcluding,
            &tasks,
            &placement,
            &[WorkerId(0), WorkerId(1), WorkerId(2)],
            &HashMap::new(),
            0.1,
        )
        .unwrap();
        // 3 flagged x 0.1 = 0.3 caps to 0.2 total.
        let flagged_total: f64 = ratio.get(0) + ratio.get(1) + ratio.get(2);
        assert!((flagged_total - 0.2).abs() < 1e-12);
        assert!((ratio.get(3) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_probe_weight() {
        let (tasks, placement) = setup();
        for bad in [-0.1, 0.5, 1.0] {
            assert!(plan_ratio(
                PlanPolicy::UniformExcluding,
                &tasks,
                &placement,
                &[],
                &HashMap::new(),
                bad,
            )
            .is_err());
        }
    }

    #[test]
    fn errors_on_empty_or_unplaced() {
        let (_, placement) = setup();
        assert!(plan_ratio(
            PlanPolicy::UniformExcluding,
            &[],
            &placement,
            &[],
            &HashMap::new(),
            0.0,
        )
        .is_err());
        assert!(plan_ratio(
            PlanPolicy::UniformExcluding,
            &[TaskId(99)],
            &placement,
            &[],
            &HashMap::new(),
            0.0,
        )
        .is_err());
    }
}

//! Misbehaving-worker detection with hysteresis.
//!
//! A worker is flagged *misbehaving* when its (predicted or observed)
//! execute latency exceeds `trigger_factor ×` its healthy baseline for
//! `trigger_consecutive` control epochs, and *recovered* when it stays
//! below `recover_factor ×` baseline for `recover_consecutive` epochs.
//! The two-threshold hysteresis prevents flapping when latency hovers near
//! the trigger point.

use std::collections::HashMap;

use dsdps::scheduler::WorkerId;
use serde::{Deserialize, Serialize};

/// Detector thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Latency multiple of baseline that counts as degraded.
    pub trigger_factor: f64,
    /// Consecutive degraded epochs before flagging.
    pub trigger_consecutive: usize,
    /// Latency multiple of baseline that counts as healthy again.
    pub recover_factor: f64,
    /// Consecutive healthy epochs before unflagging.
    pub recover_consecutive: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            trigger_factor: 2.0,
            trigger_consecutive: 2,
            recover_factor: 1.3,
            recover_consecutive: 3,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct WorkerState {
    misbehaving: bool,
    over_count: usize,
    under_count: usize,
}

/// Stateful per-worker misbehavior detector.
#[derive(Debug, Clone)]
pub struct Detector {
    config: DetectorConfig,
    /// Healthy-operation latency baselines (µs) per worker.
    baselines: HashMap<WorkerId, f64>,
    states: HashMap<WorkerId, WorkerState>,
}

impl Detector {
    /// New detector; baselines must be set before observations mean anything.
    pub fn new(config: DetectorConfig) -> Self {
        Detector {
            config,
            baselines: HashMap::new(),
            states: HashMap::new(),
        }
    }

    /// Sets a worker's healthy latency baseline (µs), e.g. the median of
    /// its training-phase latency.
    pub fn set_baseline(&mut self, worker: WorkerId, baseline_us: f64) {
        assert!(baseline_us > 0.0, "baseline must be positive");
        self.baselines.insert(worker, baseline_us);
    }

    /// The baseline for `worker`, if set.
    pub fn baseline(&self, worker: WorkerId) -> Option<f64> {
        self.baselines.get(&worker).copied()
    }

    /// Feeds one epoch's latency (predicted or observed) for `worker` and
    /// returns whether the worker is currently considered misbehaving.
    pub fn observe(&mut self, worker: WorkerId, latency_us: f64) -> bool {
        let Some(&baseline) = self.baselines.get(&worker) else {
            return false;
        };
        let state = self.states.entry(worker).or_default();
        let ratio = latency_us / baseline;
        if !state.misbehaving {
            if ratio >= self.config.trigger_factor {
                state.over_count += 1;
                if state.over_count >= self.config.trigger_consecutive {
                    state.misbehaving = true;
                    state.under_count = 0;
                }
            } else {
                state.over_count = 0;
            }
        } else if ratio <= self.config.recover_factor {
            state.under_count += 1;
            if state.under_count >= self.config.recover_consecutive {
                state.misbehaving = false;
                state.over_count = 0;
            }
        } else {
            state.under_count = 0;
        }
        state.misbehaving
    }

    /// Whether `worker` is currently flagged.
    pub fn is_misbehaving(&self, worker: WorkerId) -> bool {
        self.states
            .get(&worker)
            .map(|s| s.misbehaving)
            .unwrap_or(false)
    }

    /// All currently flagged workers.
    pub fn misbehaving_workers(&self) -> Vec<WorkerId> {
        let mut v: Vec<WorkerId> = self
            .states
            .iter()
            .filter(|(_, s)| s.misbehaving)
            .map(|(w, _)| *w)
            .collect();
        v.sort();
        v
    }

    /// Clears detection state (baselines are kept).
    pub fn reset(&mut self) {
        self.states.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> Detector {
        let mut d = Detector::new(DetectorConfig {
            trigger_factor: 2.0,
            trigger_consecutive: 2,
            recover_factor: 1.3,
            recover_consecutive: 3,
        });
        d.set_baseline(WorkerId(0), 100.0);
        d
    }

    #[test]
    fn triggers_only_after_consecutive_epochs() {
        let mut d = detector();
        assert!(!d.observe(WorkerId(0), 250.0), "one epoch is not enough");
        assert!(
            d.observe(WorkerId(0), 250.0),
            "second consecutive epoch flags"
        );
        assert!(d.is_misbehaving(WorkerId(0)));
        assert_eq!(d.misbehaving_workers(), vec![WorkerId(0)]);
    }

    #[test]
    fn single_spike_does_not_trigger() {
        let mut d = detector();
        d.observe(WorkerId(0), 250.0);
        d.observe(WorkerId(0), 110.0); // back to normal resets the count
        assert!(!d.observe(WorkerId(0), 250.0));
        assert!(!d.is_misbehaving(WorkerId(0)));
    }

    #[test]
    fn recovery_needs_consecutive_healthy_epochs() {
        let mut d = detector();
        d.observe(WorkerId(0), 300.0);
        d.observe(WorkerId(0), 300.0);
        assert!(d.is_misbehaving(WorkerId(0)));
        assert!(d.observe(WorkerId(0), 100.0));
        assert!(d.observe(WorkerId(0), 100.0));
        // Third healthy epoch clears the flag.
        assert!(!d.observe(WorkerId(0), 100.0));
        assert!(!d.is_misbehaving(WorkerId(0)));
    }

    #[test]
    fn hysteresis_band_keeps_flag() {
        // 1.5x baseline: below trigger (2.0) but above recover (1.3) —
        // once flagged, it stays flagged.
        let mut d = detector();
        d.observe(WorkerId(0), 300.0);
        d.observe(WorkerId(0), 300.0);
        for _ in 0..10 {
            assert!(d.observe(WorkerId(0), 150.0));
        }
    }

    #[test]
    fn recovery_counter_resets_on_relapse() {
        let mut d = detector();
        d.observe(WorkerId(0), 300.0);
        d.observe(WorkerId(0), 300.0);
        d.observe(WorkerId(0), 100.0);
        d.observe(WorkerId(0), 100.0);
        d.observe(WorkerId(0), 200.0); // relapse into the hysteresis band
        assert!(d.observe(WorkerId(0), 100.0));
        assert!(d.observe(WorkerId(0), 100.0));
        assert!(
            !d.observe(WorkerId(0), 100.0),
            "needs 3 fresh healthy epochs"
        );
    }

    #[test]
    fn unknown_worker_never_flags() {
        let mut d = detector();
        assert!(!d.observe(WorkerId(9), 1e9));
        assert!(!d.is_misbehaving(WorkerId(9)));
    }

    #[test]
    fn reset_clears_flags_not_baselines() {
        let mut d = detector();
        d.observe(WorkerId(0), 300.0);
        d.observe(WorkerId(0), 300.0);
        d.reset();
        assert!(!d.is_misbehaving(WorkerId(0)));
        assert_eq!(d.baseline(WorkerId(0)), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "baseline must be positive")]
    fn rejects_zero_baseline() {
        let mut d = detector();
        d.set_baseline(WorkerId(1), 0.0);
    }
}

//! Errors raised by the forecasting baselines.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Forecasting errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The series is too short for the requested model order.
    NotEnoughData {
        /// Minimum observations required.
        needed: usize,
        /// Observations provided.
        got: usize,
    },
    /// `forecast` called before `fit`.
    NotFitted,
    /// The normal equations were singular.
    SingularSystem,
    /// Automatic order selection found no fittable model.
    NoViableModel,
    /// Invalid hyper-parameter.
    BadParameter(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotEnoughData { needed, got } => {
                write!(f, "need at least {needed} observations, got {got}")
            }
            Error::NotFitted => write!(f, "model must be fitted before forecasting"),
            Error::SingularSystem => write!(f, "normal equations are singular"),
            Error::NoViableModel => write!(f, "no model order could be fitted"),
            Error::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::NotEnoughData { needed: 30, got: 5 };
        assert!(e.to_string().contains("30"));
        assert!(e.to_string().contains('5'));
        assert!(Error::NotFitted.to_string().contains("fitted"));
    }
}

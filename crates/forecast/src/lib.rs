//! # forecast — classical time-series baselines, from scratch
//!
//! The two baseline predictors the IPDPS 2019 paper compares its DRNN
//! against:
//!
//! * [`arima`] — ARIMA(p, d, q) fitted by Hannan–Rissanen two-stage least
//!   squares, with differencing and AIC-based automatic order selection;
//! * [`svr`] — ε-Support Vector Regression with linear/RBF/polynomial
//!   kernels, trained by exact dual coordinate descent.
//!
//! Both implement the common [`forecaster::Forecaster`] trait, so the
//! evaluation harness compares every model (including the DRNN adapter in
//! the `stream-control` crate) through one interface, with
//! [`forecaster::rolling_forecast`] walk-forward evaluation.
//!
//! ```
//! use forecast::prelude::*;
//!
//! let series: Vec<f64> = (0..300).map(|t| (t as f64 / 7.0).sin() + 5.0).collect();
//! let (train, test) = series.split_at(250);
//! let mut model = Arima::new(ArimaOrder::new(2, 0, 1));
//! model.fit(train).unwrap();
//! let (actuals, preds) = rolling_forecast(&model, train, test, 1).unwrap();
//! assert_eq!(actuals.len(), preds.len());
//! ```

#![warn(missing_docs)]

pub mod arima;
pub mod error;
pub mod ets;
pub mod forecaster;
pub mod stats;
pub mod svr;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::arima::{auto_arima, Arima, ArimaOrder};
    pub use crate::error::{Error, Result};
    pub use crate::ets::{Ets, EtsKind};
    pub use crate::forecaster::{rolling_forecast, Forecaster, NaiveForecaster};
    pub use crate::svr::{Kernel, Svr, SvrForecaster, SvrParams};
}

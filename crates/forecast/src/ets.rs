//! Exponential smoothing (Holt–Winters) forecasters — an additional
//! classical baseline beyond the paper's ARIMA/SVR pair: simple (level),
//! Holt (level + trend) and Holt–Winters (level + trend + seasonality),
//! with grid-searched smoothing parameters.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::forecaster::Forecaster;

/// Which smoothing components are active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EtsKind {
    /// Simple exponential smoothing: level only.
    Simple,
    /// Holt's linear method: level + additive trend.
    Holt,
    /// Holt–Winters: level + trend + additive seasonality of the given
    /// period (in observations).
    HoltWinters {
        /// Season length in observations (>= 2).
        period: usize,
    },
}

/// Fitted smoothing state.
#[derive(Debug, Clone, Default)]
struct State {
    level: f64,
    trend: f64,
    season: Vec<f64>,
}

/// Exponential-smoothing forecaster with grid-searched parameters.
#[derive(Debug, Clone)]
pub struct Ets {
    kind: EtsKind,
    alpha: f64,
    beta: f64,
    gamma: f64,
    state: Option<State>,
    /// Observations consumed when producing `state` (seasonal phase).
    train_len: usize,
    /// One-step-ahead in-sample MSE of the selected parameters.
    mse: f64,
}

impl Ets {
    /// New unfitted model.  Parameters are selected on `fit` by grid search
    /// over the smoothing coefficients.
    pub fn new(kind: EtsKind) -> Result<Self> {
        if let EtsKind::HoltWinters { period } = kind {
            if period < 2 {
                return Err(Error::BadParameter("seasonal period must be >= 2".into()));
            }
        }
        Ok(Ets {
            kind,
            alpha: 0.3,
            beta: 0.1,
            gamma: 0.1,
            state: None,
            train_len: 0,
            mse: f64::INFINITY,
        })
    }

    /// Selected smoothing parameters `(alpha, beta, gamma)`.
    pub fn params(&self) -> (f64, f64, f64) {
        (self.alpha, self.beta, self.gamma)
    }

    /// In-sample one-step MSE of the selected fit.
    pub fn in_sample_mse(&self) -> f64 {
        self.mse
    }

    fn init_state(&self, series: &[f64]) -> State {
        match self.kind {
            EtsKind::Simple => State {
                level: series[0],
                ..State::default()
            },
            EtsKind::Holt => State {
                level: series[0],
                trend: series.get(1).map(|s| s - series[0]).unwrap_or(0.0),
                season: Vec::new(),
            },
            EtsKind::HoltWinters { period } => {
                let mean1: f64 = series[..period].iter().sum::<f64>() / period as f64;
                let season = (0..period).map(|i| series[i] - mean1).collect();
                State {
                    level: mean1,
                    trend: 0.0,
                    season,
                }
            }
        }
    }

    /// Runs the smoother over `series` starting from `state`, returning the
    /// final state and the one-step-ahead MSE.
    fn smooth(
        &self,
        series: &[f64],
        alpha: f64,
        beta: f64,
        gamma: f64,
        mut state: State,
    ) -> (State, f64) {
        let mut se = 0.0;
        let mut n = 0usize;
        let period = match self.kind {
            EtsKind::HoltWinters { period } => period,
            _ => 0,
        };
        for (t, &y) in series.iter().enumerate() {
            let seasonal = if period > 0 {
                state.season[t % period]
            } else {
                0.0
            };
            let forecast = state.level + state.trend + seasonal;
            se += (y - forecast) * (y - forecast);
            n += 1;

            let prev_level = state.level;
            match self.kind {
                EtsKind::Simple => {
                    state.level = alpha * y + (1.0 - alpha) * state.level;
                }
                EtsKind::Holt => {
                    state.level = alpha * y + (1.0 - alpha) * (state.level + state.trend);
                    state.trend = beta * (state.level - prev_level) + (1.0 - beta) * state.trend;
                }
                EtsKind::HoltWinters { period } => {
                    let s = state.season[t % period];
                    state.level = alpha * (y - s) + (1.0 - alpha) * (state.level + state.trend);
                    state.trend = beta * (state.level - prev_level) + (1.0 - beta) * state.trend;
                    state.season[t % period] = gamma * (y - state.level) + (1.0 - gamma) * s;
                }
            }
        }
        (state, se / n.max(1) as f64)
    }

    fn forecast_from_state(&self, state: &State, start_t: usize, horizon: usize) -> Vec<f64> {
        (1..=horizon)
            .map(|h| {
                let seasonal = match self.kind {
                    EtsKind::HoltWinters { period } => state.season[(start_t + h - 1) % period],
                    _ => 0.0,
                };
                state.level + state.trend * h as f64 + seasonal
            })
            .collect()
    }

    fn min_len(&self) -> usize {
        match self.kind {
            EtsKind::Simple => 3,
            EtsKind::Holt => 4,
            EtsKind::HoltWinters { period } => 2 * period + 2,
        }
    }

    /// Candidate grid per smoothing coefficient.
    const GRID: [f64; 5] = [0.05, 0.15, 0.3, 0.5, 0.8];
}

impl Forecaster for Ets {
    fn fit(&mut self, series: &[f64]) -> Result<()> {
        if series.len() < self.min_len() {
            return Err(Error::NotEnoughData {
                needed: self.min_len(),
                got: series.len(),
            });
        }
        let mut best = (f64::INFINITY, 0.3, 0.1, 0.1, State::default());
        let betas: &[f64] = match self.kind {
            EtsKind::Simple => &[0.0],
            _ => &Self::GRID,
        };
        let gammas: &[f64] = match self.kind {
            EtsKind::HoltWinters { .. } => &Self::GRID,
            _ => &[0.0],
        };
        for &alpha in &Self::GRID {
            for &beta in betas {
                for &gamma in gammas {
                    let (state, mse) =
                        self.smooth(series, alpha, beta, gamma, self.init_state(series));
                    if mse < best.0 {
                        best = (mse, alpha, beta, gamma, state);
                    }
                }
            }
        }
        self.mse = best.0;
        self.alpha = best.1;
        self.beta = best.2;
        self.gamma = best.3;
        self.state = Some(best.4);
        self.train_len = series.len();
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        let state = self.state.as_ref().ok_or(Error::NotFitted)?;
        Ok(self.forecast_from_state(state, self.train_len, horizon))
    }

    fn forecast_from(&self, series: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if self.state.is_none() {
            return Err(Error::NotFitted);
        }
        if series.len() < self.min_len() {
            return Err(Error::NotEnoughData {
                needed: self.min_len(),
                got: series.len(),
            });
        }
        // Re-run the smoother with the fitted coefficients over the new
        // history (no re-selection of parameters).
        let (state, _) = self.smooth(
            series,
            self.alpha,
            self.beta,
            self.gamma,
            self.init_state(series),
        );
        Ok(self.forecast_from_state(&state, series.len(), horizon))
    }

    fn name(&self) -> String {
        match self.kind {
            EtsKind::Simple => "SES".into(),
            EtsKind::Holt => "Holt".into(),
            EtsKind::HoltWinters { period } => format!("Holt-Winters(m={period})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_trend(n: usize) -> Vec<f64> {
        let mut state = 3u64;
        (0..n)
            .map(|t| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                10.0 + 0.5 * t as f64 + e
            })
            .collect()
    }

    fn seasonal(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                50.0 + 10.0 * ((t % period) as f64 / period as f64 * std::f64::consts::TAU).sin()
            })
            .collect()
    }

    #[test]
    fn simple_tracks_level_shifts() {
        let mut series = vec![10.0; 50];
        series.extend(vec![30.0; 50]);
        let mut m = Ets::new(EtsKind::Simple).unwrap();
        m.fit(&series).unwrap();
        let f = m.forecast(5).unwrap();
        for v in f {
            assert!(
                (v - 30.0).abs() < 2.0,
                "forecast {v} should be near the new level"
            );
        }
    }

    #[test]
    fn holt_extrapolates_trend() {
        let series = noisy_trend(200);
        let mut m = Ets::new(EtsKind::Holt).unwrap();
        m.fit(&series).unwrap();
        let f = m.forecast(10).unwrap();
        // True continuation: 10 + 0.5 * (200..210)
        for (h, v) in f.iter().enumerate() {
            let expected = 10.0 + 0.5 * (200 + h) as f64;
            assert!((v - expected).abs() < 3.0, "h={h}: {v} vs {expected}");
        }
        assert!(f[9] > f[0], "trend extrapolated upward");
    }

    #[test]
    fn holt_winters_captures_seasonality() {
        let period = 12;
        let series = seasonal(240, period);
        let mut m = Ets::new(EtsKind::HoltWinters { period }).unwrap();
        m.fit(&series).unwrap();
        let f = m.forecast(period).unwrap();
        let truth = seasonal(240 + period, period);
        for (h, v) in f.iter().enumerate() {
            let expected = truth[240 + h];
            assert!((v - expected).abs() < 2.0, "h={h}: {v} vs {expected}");
        }
        // Forecast must actually oscillate.
        let spread =
            f.iter().cloned().fold(f64::MIN, f64::max) - f.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 10.0, "seasonal spread {spread}");
    }

    #[test]
    fn grid_search_beats_fixed_bad_params() {
        let series = noisy_trend(150);
        let mut m = Ets::new(EtsKind::Holt).unwrap();
        m.fit(&series).unwrap();
        assert!(
            m.in_sample_mse() < 5.0,
            "selected fit MSE {}",
            m.in_sample_mse()
        );
        let (alpha, _, _) = m.params();
        assert!((0.0..=1.0).contains(&alpha));
    }

    #[test]
    fn rejects_bad_period_and_short_series() {
        assert!(Ets::new(EtsKind::HoltWinters { period: 1 }).is_err());
        let mut m = Ets::new(EtsKind::HoltWinters { period: 10 }).unwrap();
        assert!(matches!(m.fit(&[1.0; 5]), Err(Error::NotEnoughData { .. })));
    }

    #[test]
    fn forecast_before_fit_errors() {
        let m = Ets::new(EtsKind::Simple).unwrap();
        assert!(matches!(m.forecast(1), Err(Error::NotFitted)));
    }

    #[test]
    fn forecast_from_new_history() {
        let series = noisy_trend(150);
        let mut m = Ets::new(EtsKind::Holt).unwrap();
        m.fit(&series[..100]).unwrap();
        let f_old = m.forecast(1).unwrap()[0];
        let f_new = m.forecast_from(&series, 1).unwrap()[0];
        // New history extends 50 steps of +0.5 trend: forecast moves up.
        assert!(f_new > f_old + 15.0, "{f_new} vs {f_old}");
    }
}

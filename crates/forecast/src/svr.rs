//! ε-Support Vector Regression, trained by exact coordinate descent on the
//! dual with the bias folded into the kernel.
//!
//! With the augmented kernel `K'(a, b) = K(a, b) + 1` the equality
//! constraint of the classical SVR dual disappears, leaving the
//! box-constrained problem
//!
//! ```text
//! min_β  ½ βᵀK'β − yᵀβ + ε‖β‖₁ ,   β ∈ [−C, C]ⁿ
//! ```
//!
//! whose coordinate-wise minimizer has the closed form
//! `β_i = clip( soft(r_i, ε) / K'_ii , ±C )` — an exact solver in the same
//! family as LIBLINEAR's dual coordinate descent.  (The paper's comparison
//! only requires the SVR *model class*; the solver choice is documented in
//! `DESIGN.md`.)  Prediction is `f(x) = Σ_j β_j (K(x_j, x) + 1)`.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::forecaster::Forecaster;

/// Kernel functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Dot product.
    Linear,
    /// Gaussian radial basis function `exp(-γ‖a-b‖²)`.
    Rbf {
        /// Bandwidth parameter.
        gamma: f64,
    },
    /// Polynomial `(γ·aᵀb + coef0)^degree`.
    Poly {
        /// Scale.
        gamma: f64,
        /// Offset.
        coef0: f64,
        /// Degree.
        degree: u32,
    },
}

impl Kernel {
    /// Evaluates the kernel on two points.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Poly {
                gamma,
                coef0,
                degree,
            } => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                (gamma * dot + coef0).powi(*degree as i32)
            }
        }
    }
}

/// SVR hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Box constraint (regularization inverse).
    pub c: f64,
    /// Width of the ε-insensitive tube.
    pub epsilon: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// Maximum coordinate-descent sweeps.
    pub max_sweeps: usize,
    /// Convergence tolerance on the largest coordinate change per sweep.
    pub tol: f64,
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams {
            c: 10.0,
            epsilon: 0.01,
            kernel: Kernel::Rbf { gamma: 0.5 },
            max_sweeps: 300,
            tol: 1e-6,
        }
    }
}

/// A trained support vector regressor.
#[derive(Debug, Clone)]
pub struct Svr {
    params: SvrParams,
    /// Support vectors (training points with non-zero dual coefficient).
    support: Vec<Vec<f64>>,
    /// Dual coefficients of the support vectors.
    beta: Vec<f64>,
    sweeps_used: usize,
}

impl Svr {
    /// Creates an untrained SVR.
    pub fn new(params: SvrParams) -> Result<Self> {
        if params.c <= 0.0 {
            return Err(Error::BadParameter("C must be positive".into()));
        }
        if params.epsilon < 0.0 {
            return Err(Error::BadParameter("epsilon must be >= 0".into()));
        }
        Ok(Svr {
            params,
            support: Vec::new(),
            beta: Vec::new(),
            sweeps_used: 0,
        })
    }

    /// Trains on `(x, y)` pairs.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        let n = x.len();
        if n == 0 || y.len() != n {
            return Err(Error::NotEnoughData {
                needed: 1,
                got: n.min(y.len()),
            });
        }
        let k = &self.params.kernel;
        // Augmented kernel matrix (bias folded in).
        let mut gram = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v = k.eval(&x[i], &x[j]) + 1.0;
                gram[i * n + j] = v;
                gram[j * n + i] = v;
            }
        }

        let c = self.params.c;
        let eps = self.params.epsilon;
        let mut beta = vec![0.0; n];
        // f_i = Σ_j K'_ij β_j, maintained incrementally.
        let mut f = vec![0.0; n];
        let mut sweeps = 0;
        for sweep in 0..self.params.max_sweeps {
            sweeps = sweep + 1;
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let kii = gram[i * n + i];
                if kii <= 0.0 {
                    continue;
                }
                // Residual excluding i's own contribution.
                let r = y[i] - (f[i] - kii * beta[i]);
                // Soft threshold then clip to the box.
                let unclipped = if r > eps {
                    (r - eps) / kii
                } else if r < -eps {
                    (r + eps) / kii
                } else {
                    0.0
                };
                let new_beta = unclipped.clamp(-c, c);
                let delta = new_beta - beta[i];
                if delta != 0.0 {
                    beta[i] = new_beta;
                    let row = &gram[i * n..(i + 1) * n];
                    for (fj, kij) in f.iter_mut().zip(row) {
                        *fj += delta * kij;
                    }
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.params.tol {
                break;
            }
        }
        self.sweeps_used = sweeps;
        // Keep only support vectors.
        self.support = Vec::new();
        self.beta = Vec::new();
        for (i, &b) in beta.iter().enumerate() {
            if b.abs() > 1e-12 {
                self.support.push(x[i].clone());
                self.beta.push(b);
            }
        }
        Ok(())
    }

    /// Predicts a single point.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.beta)
            .map(|(sv, &b)| b * (self.params.kernel.eval(sv, x) + 1.0))
            .sum()
    }

    /// Number of support vectors.
    pub fn support_count(&self) -> usize {
        self.support.len()
    }

    /// Coordinate-descent sweeps the last `fit` used.
    pub fn sweeps_used(&self) -> usize {
        self.sweeps_used
    }
}

/// Column scaler used by [`SvrForecaster`].
#[derive(Debug, Clone, Default)]
struct Scaler {
    mean: f64,
    std: f64,
}

impl Scaler {
    fn fit(xs: &[f64]) -> Self {
        let mean = crate::stats::mean(xs);
        let std = crate::stats::variance(xs).sqrt().max(1e-9);
        Scaler { mean, std }
    }

    fn fwd(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    fn inv(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }
}

/// Autoregressive SVR forecaster: embeds the series into lag vectors
/// (`x_t = [y_{t-L} .. y_{t-1}]`, target `y_t`) and forecasts recursively.
#[derive(Debug, Clone)]
pub struct SvrForecaster {
    lags: usize,
    params: SvrParams,
    svr: Option<Svr>,
    scaler: Scaler,
    train_tail: Vec<f64>,
}

impl SvrForecaster {
    /// New forecaster with `lags` autoregressive features.
    pub fn new(lags: usize, params: SvrParams) -> Result<Self> {
        if lags == 0 {
            return Err(Error::BadParameter("lags must be >= 1".into()));
        }
        Ok(SvrForecaster {
            lags,
            params,
            svr: None,
            scaler: Scaler::default(),
            train_tail: Vec::new(),
        })
    }

    fn forecast_recursive(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>> {
        let svr = self.svr.as_ref().ok_or(Error::NotFitted)?;
        if history.len() < self.lags {
            return Err(Error::NotEnoughData {
                needed: self.lags,
                got: history.len(),
            });
        }
        let mut window: Vec<f64> = history[history.len() - self.lags..]
            .iter()
            .map(|&v| self.scaler.fwd(v))
            .collect();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let pred = svr.predict(&window);
            out.push(self.scaler.inv(pred));
            window.rotate_left(1);
            *window.last_mut().unwrap() = pred;
        }
        Ok(out)
    }
}

impl Forecaster for SvrForecaster {
    fn fit(&mut self, series: &[f64]) -> Result<()> {
        if series.len() < self.lags + 8 {
            return Err(Error::NotEnoughData {
                needed: self.lags + 8,
                got: series.len(),
            });
        }
        self.scaler = Scaler::fit(series);
        let scaled: Vec<f64> = series.iter().map(|&v| self.scaler.fwd(v)).collect();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for t in self.lags..scaled.len() {
            x.push(scaled[t - self.lags..t].to_vec());
            y.push(scaled[t]);
        }
        let mut svr = Svr::new(self.params)?;
        svr.fit(&x, &y)?;
        self.svr = Some(svr);
        self.train_tail = series[series.len() - self.lags..].to_vec();
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        self.forecast_recursive(&self.train_tail, horizon)
    }

    fn forecast_from(&self, series: &[f64], horizon: usize) -> Result<Vec<f64>> {
        self.forecast_recursive(series, horizon)
    }

    fn name(&self) -> String {
        let k = match self.params.kernel {
            Kernel::Linear => "linear".to_string(),
            Kernel::Rbf { gamma } => format!("rbf γ={gamma}"),
            Kernel::Poly { degree, .. } => format!("poly d={degree}"),
        };
        format!("SVR({k}, L={})", self.lags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_values() {
        let a = [1.0, 2.0];
        let b = [3.0, -1.0];
        assert_eq!(Kernel::Linear.eval(&a, &b), 1.0);
        assert_eq!(Kernel::Rbf { gamma: 0.1 }.eval(&a, &a), 1.0);
        assert!(Kernel::Rbf { gamma: 0.1 }.eval(&a, &b) < 1.0);
        let p = Kernel::Poly {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        assert_eq!(p.eval(&a, &b), 4.0); // (1 + 1)^2
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Svr::new(SvrParams {
            c: 0.0,
            ..SvrParams::default()
        })
        .is_err());
        assert!(Svr::new(SvrParams {
            epsilon: -1.0,
            ..SvrParams::default()
        })
        .is_err());
        assert!(SvrForecaster::new(0, SvrParams::default()).is_err());
    }

    #[test]
    fn linear_svr_fits_linear_function() {
        // y = 2 x + 1
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let mut svr = Svr::new(SvrParams {
            kernel: Kernel::Linear,
            c: 100.0,
            epsilon: 0.01,
            ..SvrParams::default()
        })
        .unwrap();
        svr.fit(&x, &y).unwrap();
        for probe in [0.0, 2.0, 4.9] {
            let p = svr.predict(&[probe]);
            let expect = 2.0 * probe + 1.0;
            assert!((p - expect).abs() < 0.1, "at {probe}: {p} vs {expect}");
        }
    }

    #[test]
    fn rbf_svr_fits_nonlinear_function() {
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0]).sin()).collect();
        let mut svr = Svr::new(SvrParams {
            kernel: Kernel::Rbf { gamma: 2.0 },
            c: 50.0,
            epsilon: 0.005,
            ..SvrParams::default()
        })
        .unwrap();
        svr.fit(&x, &y).unwrap();
        let mut max_err: f64 = 0.0;
        for i in 0..70 {
            let probe = i as f64 / 10.0 + 0.05; // between training points
            max_err = max_err.max((svr.predict(&[probe]) - probe.sin()).abs());
        }
        assert!(max_err < 0.1, "max interpolation error {max_err}");
    }

    #[test]
    fn predictions_stay_inside_epsilon_tube_mostly() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 5.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 0.5 * r[0]).collect();
        let eps = 0.05;
        let mut svr = Svr::new(SvrParams {
            kernel: Kernel::Linear,
            c: 100.0,
            epsilon: eps,
            ..SvrParams::default()
        })
        .unwrap();
        svr.fit(&x, &y).unwrap();
        let violations = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| (svr.predict(xi) - yi).abs() > eps + 1e-6)
            .count();
        assert_eq!(violations, 0, "training points should sit in the tube");
    }

    #[test]
    fn epsilon_tube_sparsifies_support() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        let fit_with_eps = |eps: f64| {
            let mut svr = Svr::new(SvrParams {
                kernel: Kernel::Linear,
                epsilon: eps,
                c: 10.0,
                ..SvrParams::default()
            })
            .unwrap();
            svr.fit(&x, &y).unwrap();
            svr.support_count()
        };
        let tight = fit_with_eps(0.001);
        let loose = fit_with_eps(0.5);
        assert!(
            loose < tight,
            "wider tube must need fewer SVs: {loose} vs {tight}"
        );
    }

    #[test]
    fn box_constraint_is_respected() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        // One wild outlier that would need a huge coefficient.
        let mut y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        y[10] = 1000.0;
        let c = 1.0;
        let mut svr = Svr::new(SvrParams {
            kernel: Kernel::Linear,
            c,
            epsilon: 0.01,
            ..SvrParams::default()
        })
        .unwrap();
        svr.fit(&x, &y).unwrap();
        assert!(svr.beta.iter().all(|b| b.abs() <= c + 1e-9));
    }

    #[test]
    fn forecaster_predicts_sine_out_of_sample() {
        let series: Vec<f64> = (0..400)
            .map(|t| (t as f64 / 8.0).sin() * 3.0 + 10.0)
            .collect();
        let (train, test) = series.split_at(320);
        let mut m = SvrForecaster::new(
            12,
            SvrParams {
                kernel: Kernel::Rbf { gamma: 0.5 },
                c: 10.0,
                epsilon: 0.01,
                ..SvrParams::default()
            },
        )
        .unwrap();
        m.fit(train).unwrap();
        let (actuals, preds) = crate::forecaster::rolling_forecast(&m, train, test, 1).unwrap();
        let rmse = {
            let se: f64 = actuals
                .iter()
                .zip(&preds)
                .map(|(a, p)| (a - p) * (a - p))
                .sum();
            (se / actuals.len() as f64).sqrt()
        };
        assert!(rmse < 0.3, "rolling RMSE {rmse} too high for a clean sine");
    }

    #[test]
    fn forecaster_errors_before_fit_and_on_short_history() {
        let m = SvrForecaster::new(5, SvrParams::default()).unwrap();
        assert!(matches!(m.forecast(1), Err(Error::NotFitted)));
        let mut m = SvrForecaster::new(5, SvrParams::default()).unwrap();
        let series: Vec<f64> = (0..100).map(|t| (t as f64).sin()).collect();
        m.fit(&series).unwrap();
        assert!(matches!(
            m.forecast_from(&[1.0, 2.0], 1),
            Err(Error::NotEnoughData { .. })
        ));
    }

    #[test]
    fn multi_step_forecast_is_recursive() {
        let series: Vec<f64> = (0..200).map(|t| (t as f64 / 6.0).sin()).collect();
        let mut m = SvrForecaster::new(10, SvrParams::default()).unwrap();
        m.fit(&series).unwrap();
        let fc = m.forecast(20).unwrap();
        assert_eq!(fc.len(), 20);
        // Should roughly continue the oscillation, not explode.
        assert!(fc.iter().all(|v| v.abs() < 2.0), "{fc:?}");
    }
}

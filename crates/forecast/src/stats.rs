//! Time-series statistics primitives: autocorrelation, partial
//! autocorrelation (Durbin–Levinson), differencing, and a small dense
//! linear solver used by the ARIMA fitting routines.

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample variance (population normalization).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Autocorrelation function for lags `0..=max_lag`.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (0..=max_lag)
        .map(|lag| {
            if lag >= n || denom < 1e-12 {
                return if lag == 0 { 1.0 } else { 0.0 };
            }
            let num: f64 = (0..n - lag).map(|t| (xs[t] - m) * (xs[t + lag] - m)).sum();
            num / denom
        })
        .collect()
}

/// Partial autocorrelation for lags `1..=max_lag` via Durbin–Levinson.
pub fn pacf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let rho = acf(xs, max_lag);
    let mut phi = vec![vec![0.0; max_lag + 1]; max_lag + 1];
    let mut out = Vec::with_capacity(max_lag);
    for k in 1..=max_lag {
        if k == 1 {
            phi[1][1] = rho[1];
        } else {
            let num = rho[k] - (1..k).map(|j| phi[k - 1][j] * rho[k - j]).sum::<f64>();
            let den = 1.0 - (1..k).map(|j| phi[k - 1][j] * rho[j]).sum::<f64>();
            phi[k][k] = if den.abs() < 1e-12 { 0.0 } else { num / den };
            for j in 1..k {
                phi[k][j] = phi[k - 1][j] - phi[k][k] * phi[k - 1][k - j];
            }
        }
        out.push(phi[k][k]);
    }
    out
}

/// Applies `d` rounds of first differencing.
pub fn difference(xs: &[f64], d: usize) -> Vec<f64> {
    let mut v = xs.to_vec();
    for _ in 0..d {
        if v.len() < 2 {
            return Vec::new();
        }
        v = v.windows(2).map(|w| w[1] - w[0]).collect();
    }
    v
}

/// Inverts `d` rounds of differencing for a forecast path.
///
/// `tails[r]` is the last value of the series after `r` rounds of
/// differencing (so `tails[0]` is the last original observation and
/// `tails[d-1]` the last value of the `(d-1)`-times-differenced series).
/// `forecast` is a path in the `d`-times-differenced domain.
pub fn undifference(forecast: &[f64], tails: &[f64]) -> Vec<f64> {
    let mut path = forecast.to_vec();
    for tail in tails.iter().rev() {
        let mut acc = *tail;
        for v in path.iter_mut() {
            acc += *v;
            *v = acc;
        }
    }
    path
}

/// Collects the differencing tails needed by [`undifference`].
pub fn difference_tails(xs: &[f64], d: usize) -> Vec<f64> {
    let mut tails = Vec::with_capacity(d);
    let mut v = xs.to_vec();
    for _ in 0..d {
        tails.push(*v.last().expect("series long enough to difference"));
        v = v.windows(2).map(|w| w[1] - w[0]).collect();
    }
    tails
}

/// Solves the dense system `A x = b` by Gaussian elimination with partial
/// pivoting.  Returns `None` for (numerically) singular systems.
#[allow(clippy::needless_range_loop)] // indexed loops mirror the textbook algorithm
pub fn solve_linear(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert!(
        a.len() == n && a.iter().all(|r| r.len() == n),
        "square system"
    );
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        for row in col + 1..n {
            let factor = m[row][col] / m[col][col];
            for k in col..=n {
                m[row][k] -= factor * m[col][k];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for k in row + 1..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// Ordinary least squares: finds `beta` minimizing `‖X·beta − y‖²` via the
/// normal equations with ridge jitter for stability.
#[allow(clippy::needless_range_loop)] // indexed loops mirror the textbook algorithm
pub fn ols(x_rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let n = x_rows.len();
    if n == 0 {
        return None;
    }
    let p = x_rows[0].len();
    assert!(x_rows.iter().all(|r| r.len() == p) && y.len() == n);
    // XtX and Xty.
    let mut xtx = vec![vec![0.0; p]; p];
    let mut xty = vec![0.0; p];
    for (row, &target) in x_rows.iter().zip(y) {
        for i in 0..p {
            xty[i] += row[i] * target;
            for j in i..p {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..p {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
        xtx[i][i] += 1e-8; // ridge jitter
    }
    solve_linear(&xtx, &xty)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // lag indices are part of the assertions
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn acf_lag0_is_one_and_white_noise_decorrelated() {
        let mut state = 42u64;
        let xs: Vec<f64> = (0..500)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64
            })
            .collect();
        let r = acf(&xs, 5);
        assert!((r[0] - 1.0).abs() < 1e-12);
        for lag in 1..=5 {
            assert!(r[lag].abs() < 0.15, "lag {lag}: {}", r[lag]);
        }
    }

    #[test]
    fn acf_of_ar1_decays_geometrically() {
        // x_t = 0.8 x_{t-1} + e_t  →  rho(k) ≈ 0.8^k
        let mut xs = vec![0.0];
        let mut state = 12345u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            let prev = *xs.last().unwrap();
            xs.push(0.8 * prev + e);
        }
        let r = acf(&xs, 3);
        assert!((r[1] - 0.8).abs() < 0.05, "rho1 {}", r[1]);
        assert!((r[2] - 0.64).abs() < 0.08, "rho2 {}", r[2]);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        let mut xs = vec![0.0];
        let mut state = 999u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            let prev = *xs.last().unwrap();
            xs.push(0.7 * prev + e);
        }
        let p = pacf(&xs, 4);
        assert!((p[0] - 0.7).abs() < 0.05, "pacf1 {}", p[0]);
        for lag in 1..4 {
            assert!(p[lag].abs() < 0.1, "pacf{} = {}", lag + 1, p[lag]);
        }
    }

    #[test]
    fn differencing_removes_linear_trend() {
        let xs: Vec<f64> = (0..50).map(|i| 3.0 * i as f64 + 7.0).collect();
        let d1 = difference(&xs, 1);
        assert!(d1.iter().all(|&v| (v - 3.0).abs() < 1e-12));
        let d2 = difference(&xs, 2);
        assert!(d2.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn undifference_inverts_difference() {
        let xs: Vec<f64> = (0..20)
            .map(|i| (i as f64 * 0.7).sin() * 10.0 + i as f64)
            .collect();
        for d in 1..=2 {
            let diffed = difference(&xs, d);
            let tails = difference_tails(&xs, d);
            // "Forecast" the actual continuation and check reconstruction.
            let future: Vec<f64> = (20..25)
                .map(|i| (i as f64 * 0.7).sin() * 10.0 + i as f64)
                .collect();
            let all: Vec<f64> = xs.iter().chain(&future).copied().collect();
            let all_diffed = difference(&all, d);
            let future_diffed = &all_diffed[diffed.len()..];
            let rebuilt = undifference(future_diffed, &tails);
            for (a, b) in rebuilt.iter().zip(&future) {
                assert!((a - b).abs() < 1e-9, "d={d}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn solve_linear_known_system() {
        // 2x + y = 5 ; x - y = 1  → x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_linear_needs_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn ols_recovers_coefficients() {
        // y = 2 x1 - 3 x2 + 1 (intercept as constant feature)
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let x1 = (i as f64 * 0.1).sin();
                let x2 = (i as f64 * 0.07).cos();
                vec![x1, x2, 1.0]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 1.0).collect();
        let beta = ols(&rows, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-6);
        assert!((beta[1] + 3.0).abs() < 1e-6);
        assert!((beta[2] - 1.0).abs() < 1e-6);
    }
}

//! ARIMA(p, d, q) fitted by the Hannan–Rissanen two-stage procedure, with
//! AIC-based automatic order selection.
//!
//! Stage 1 fits a long autoregression to estimate the innovation sequence;
//! stage 2 regresses the series on its own lags *and* the estimated
//! innovations, giving consistent AR and MA coefficients by ordinary least
//! squares.  Differencing (`d`) is applied before fitting and inverted when
//! forecasting.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::forecaster::Forecaster;
use crate::stats::{difference, difference_tails, mean, ols, undifference};

/// ARIMA model order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArimaOrder {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl ArimaOrder {
    /// Convenience constructor.
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        ArimaOrder { p, d, q }
    }
}

/// A fitted (or yet-unfitted) ARIMA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Arima {
    order: ArimaOrder,
    /// AR coefficients φ_1..φ_p (on the differenced, demeaned series).
    ar: Vec<f64>,
    /// MA coefficients θ_1..θ_q.
    ma: Vec<f64>,
    /// Mean of the differenced series.
    mu: f64,
    /// Innovation variance estimate.
    sigma2: f64,
    /// The differenced, demeaned training series (needed to roll forecasts).
    #[serde(skip)]
    history: Vec<f64>,
    /// Residuals aligned with `history`.
    #[serde(skip)]
    residuals: Vec<f64>,
    /// Differencing tails of the raw series.
    tails: Vec<f64>,
    fitted: bool,
}

impl Arima {
    /// A new, unfitted model of the given order.
    pub fn new(order: ArimaOrder) -> Self {
        Arima {
            order,
            ar: Vec::new(),
            ma: Vec::new(),
            mu: 0.0,
            sigma2: 0.0,
            history: Vec::new(),
            residuals: Vec::new(),
            tails: Vec::new(),
            fitted: false,
        }
    }

    /// The model order.
    pub fn order(&self) -> ArimaOrder {
        self.order
    }

    /// Fitted AR coefficients.
    pub fn ar_coefficients(&self) -> &[f64] {
        &self.ar
    }

    /// Fitted MA coefficients.
    pub fn ma_coefficients(&self) -> &[f64] {
        &self.ma
    }

    /// Akaike information criterion of the fit.
    pub fn aic(&self) -> f64 {
        let n = self.history.len() as f64;
        let k = (self.order.p + self.order.q + 1) as f64;
        n * self.sigma2.max(1e-12).ln() + 2.0 * k
    }

    /// Innovation variance estimate.
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    fn compute_residuals(&self, w: &[f64]) -> Vec<f64> {
        // One-step-ahead residuals with past residuals fed back in
        // (conditional on zero pre-sample innovations).
        let p = self.order.p;
        let q = self.order.q;
        let mut res = vec![0.0; w.len()];
        for t in 0..w.len() {
            let mut pred = 0.0;
            for (i, &phi) in self.ar.iter().enumerate() {
                if t > i {
                    pred += phi * w[t - 1 - i];
                }
            }
            for (j, &theta) in self.ma.iter().enumerate() {
                if t > j {
                    pred += theta * res[t - 1 - j];
                }
            }
            res[t] = w[t] - pred;
        }
        let _ = (p, q);
        res
    }

    /// Forecasts `horizon` steps beyond the end of `history_w` (differenced,
    /// demeaned domain), with residuals `res_w` aligned to it.
    fn forecast_differenced(&self, history_w: &[f64], res_w: &[f64], horizon: usize) -> Vec<f64> {
        let mut w: Vec<f64> = history_w.to_vec();
        let mut res: Vec<f64> = res_w.to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let t = w.len();
            let mut pred = 0.0;
            for (i, &phi) in self.ar.iter().enumerate() {
                if t > i {
                    pred += phi * w[t - 1 - i];
                }
            }
            for (j, &theta) in self.ma.iter().enumerate() {
                if t > j {
                    pred += theta * res[t - 1 - j];
                }
            }
            w.push(pred);
            res.push(0.0); // future innovations have zero expectation
            out.push(pred);
        }
        out
    }
}

impl Forecaster for Arima {
    fn fit(&mut self, series: &[f64]) -> Result<()> {
        let ArimaOrder { p, d, q } = self.order;
        let min_len = p.max(q) * 3 + d + 8;
        if series.len() < min_len {
            return Err(Error::NotEnoughData {
                needed: min_len,
                got: series.len(),
            });
        }
        self.tails = difference_tails(series, d);
        let w_raw = difference(series, d);
        self.mu = mean(&w_raw);
        let w: Vec<f64> = w_raw.iter().map(|v| v - self.mu).collect();

        if p == 0 && q == 0 {
            self.ar = Vec::new();
            self.ma = Vec::new();
            self.sigma2 = crate::stats::variance(&w);
        } else if q == 0 {
            // Pure AR: conditional least squares on lagged values.
            let rows: Vec<Vec<f64>> = (p..w.len())
                .map(|t| (1..=p).map(|i| w[t - i]).collect())
                .collect();
            let y: Vec<f64> = w[p..].to_vec();
            self.ar = ols(&rows, &y).ok_or(Error::SingularSystem)?;
            self.ma = Vec::new();
        } else {
            // Hannan–Rissanen stage 1: long AR to estimate innovations.
            let m = ((w.len() as f64).ln().ceil() as usize * 2 + p + q)
                .min(w.len() / 4)
                .max(p + q);
            let rows: Vec<Vec<f64>> = (m..w.len())
                .map(|t| (1..=m).map(|i| w[t - i]).collect())
                .collect();
            let y: Vec<f64> = w[m..].to_vec();
            let long_ar = ols(&rows, &y).ok_or(Error::SingularSystem)?;
            let mut eps = vec![0.0; w.len()];
            for t in m..w.len() {
                let pred: f64 = (1..=m).map(|i| long_ar[i - 1] * w[t - i]).sum();
                eps[t] = w[t] - pred;
            }
            // Stage 2: regress on p lags of w and q lags of eps.
            let start = m.max(p).max(q);
            let rows: Vec<Vec<f64>> = (start..w.len())
                .map(|t| {
                    let mut r = Vec::with_capacity(p + q);
                    for i in 1..=p {
                        r.push(w[t - i]);
                    }
                    for j in 1..=q {
                        r.push(eps[t - j]);
                    }
                    r
                })
                .collect();
            let y: Vec<f64> = w[start..].to_vec();
            let beta = ols(&rows, &y).ok_or(Error::SingularSystem)?;
            self.ar = beta[..p].to_vec();
            self.ma = beta[p..].to_vec();
        }

        self.residuals = self.compute_residuals(&w);
        // Skip the burn-in residuals when estimating sigma².
        let burn = (p.max(q)).min(self.residuals.len());
        let tail = &self.residuals[burn..];
        self.sigma2 = if tail.is_empty() {
            0.0
        } else {
            tail.iter().map(|e| e * e).sum::<f64>() / tail.len() as f64
        };
        self.history = w;
        self.fitted = true;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(Error::NotFitted);
        }
        let fw = self.forecast_differenced(&self.history, &self.residuals, horizon);
        let fw_mu: Vec<f64> = fw.iter().map(|v| v + self.mu).collect();
        Ok(undifference(&fw_mu, &self.tails))
    }

    fn forecast_from(&self, series: &[f64], horizon: usize) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(Error::NotFitted);
        }
        let d = self.order.d;
        if series.len() < d + 1 {
            return Err(Error::NotEnoughData {
                needed: d + 1,
                got: series.len(),
            });
        }
        let tails = difference_tails(series, d);
        let w: Vec<f64> = difference(series, d).iter().map(|v| v - self.mu).collect();
        let res = self.compute_residuals(&w);
        let fw = self.forecast_differenced(&w, &res, horizon);
        let fw_mu: Vec<f64> = fw.iter().map(|v| v + self.mu).collect();
        Ok(undifference(&fw_mu, &tails))
    }

    fn name(&self) -> String {
        format!("ARIMA({},{},{})", self.order.p, self.order.d, self.order.q)
    }
}

/// Fits every order in `p ∈ 0..=max_p`, `d ∈ 0..=max_d`, `q ∈ 0..=max_q`
/// and returns the model with the lowest AIC.
pub fn auto_arima(series: &[f64], max_p: usize, max_d: usize, max_q: usize) -> Result<Arima> {
    let mut best: Option<Arima> = None;
    for d in 0..=max_d {
        for p in 0..=max_p {
            for q in 0..=max_q {
                if p == 0 && q == 0 {
                    continue;
                }
                let mut m = Arima::new(ArimaOrder::new(p, d, q));
                if m.fit(series).is_ok() {
                    let better = match &best {
                        None => true,
                        Some(b) => m.aic() < b.aic(),
                    };
                    if better {
                        best = Some(m);
                    }
                }
            }
        }
    }
    best.ok_or(Error::NoViableModel)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG noise in [-1, 1).
    fn noise(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    fn ar2_series(n: usize, phi1: f64, phi2: f64, seed: u64) -> Vec<f64> {
        let e = noise(seed, n);
        let mut xs = vec![0.0, 0.0];
        for t in 2..n {
            let v = phi1 * xs[t - 1] + phi2 * xs[t - 2] + e[t] * 0.5;
            xs.push(v);
        }
        xs
    }

    #[test]
    fn ar2_coefficients_recovered() {
        let xs = ar2_series(4000, 0.6, 0.25, 42);
        let mut m = Arima::new(ArimaOrder::new(2, 0, 0));
        m.fit(&xs).unwrap();
        assert!(
            (m.ar_coefficients()[0] - 0.6).abs() < 0.05,
            "{:?}",
            m.ar_coefficients()
        );
        assert!(
            (m.ar_coefficients()[1] - 0.25).abs() < 0.05,
            "{:?}",
            m.ar_coefficients()
        );
    }

    #[test]
    fn ma1_coefficient_recovered() {
        // x_t = e_t + 0.7 e_{t-1}
        let e = noise(7, 4000);
        let xs: Vec<f64> = (1..4000).map(|t| e[t] + 0.7 * e[t - 1]).collect();
        let mut m = Arima::new(ArimaOrder::new(0, 0, 1));
        m.fit(&xs).unwrap();
        assert!(
            (m.ma_coefficients()[0] - 0.7).abs() < 0.1,
            "theta {:?}",
            m.ma_coefficients()
        );
    }

    #[test]
    fn differencing_handles_trend() {
        // Linear trend + AR(1) noise: ARIMA(1,1,0) should forecast the
        // continuation far better than ignoring the trend.
        let base = ar2_series(600, 0.5, 0.0, 3);
        let xs: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.5 * i as f64)
            .collect();
        let (train, test) = xs.split_at(500);
        let mut m = Arima::new(ArimaOrder::new(1, 1, 0));
        m.fit(train).unwrap();
        let fc = m.forecast(20).unwrap();
        for (i, f) in fc.iter().enumerate() {
            let actual = test[i];
            assert!(
                (f - actual).abs() < 8.0,
                "step {i}: forecast {f} vs actual {actual}"
            );
        }
        // The forecast must keep climbing with the trend.
        assert!(fc[19] > fc[0] + 5.0, "trend not extrapolated: {fc:?}");
    }

    #[test]
    fn forecast_errors_before_fit() {
        let m = Arima::new(ArimaOrder::new(1, 0, 0));
        assert!(matches!(m.forecast(3), Err(Error::NotFitted)));
        assert!(matches!(
            m.forecast_from(&[1.0; 50], 3),
            Err(Error::NotFitted)
        ));
    }

    #[test]
    fn fit_rejects_short_series() {
        let mut m = Arima::new(ArimaOrder::new(3, 1, 3));
        assert!(matches!(
            m.fit(&[1.0, 2.0, 3.0]),
            Err(Error::NotEnoughData { .. })
        ));
    }

    #[test]
    fn forecast_from_uses_new_history() {
        let xs = ar2_series(1000, 0.8, 0.0, 11);
        let mut m = Arima::new(ArimaOrder::new(1, 0, 0));
        m.fit(&xs[..800]).unwrap();
        // One-step forecasts from two different recent histories differ and
        // track the AR structure: E[x_{t+1}] ≈ mu + phi (x_t - mu).
        let h1 = &xs[..900];
        let h2 = &xs[..950];
        let f1 = m.forecast_from(h1, 1).unwrap()[0];
        let f2 = m.forecast_from(h2, 1).unwrap()[0];
        let phi = m.ar_coefficients()[0];
        let expect1 = phi * (h1.last().unwrap());
        assert!((f1 - expect1).abs() < 0.5, "{f1} vs {expect1}");
        assert_ne!(f1, f2);
    }

    #[test]
    fn auto_arima_prefers_ar_for_ar_data() {
        let xs = ar2_series(1500, 0.7, 0.0, 5);
        let best = auto_arima(&xs, 2, 1, 2).unwrap();
        // On an AR(1) process the selected model must include an AR term
        // and no differencing.
        assert!(best.order().p >= 1, "chose {:?}", best.order());
        assert_eq!(best.order().d, 0, "chose {:?}", best.order());
    }

    #[test]
    fn aic_penalizes_extra_parameters_on_white_noise() {
        let xs = noise(9, 1200);
        let mut small = Arima::new(ArimaOrder::new(1, 0, 0));
        small.fit(&xs).unwrap();
        let mut big = Arima::new(ArimaOrder::new(3, 0, 3));
        big.fit(&xs).unwrap();
        // Both fit noise equally badly; the bigger model pays the 2k penalty.
        assert!(small.aic() < big.aic() + 1e-9);
    }

    #[test]
    fn one_step_rolling_beats_mean_on_ar_process() {
        let xs = ar2_series(1200, 0.85, 0.0, 21);
        let (train, test) = xs.split_at(1000);
        let mut m = Arima::new(ArimaOrder::new(1, 0, 0));
        m.fit(train).unwrap();
        let mut history = train.to_vec();
        let mut se_model = 0.0;
        let mut se_mean = 0.0;
        let mu = mean(train);
        for &actual in test {
            let f = m.forecast_from(&history, 1).unwrap()[0];
            se_model += (f - actual) * (f - actual);
            se_mean += (mu - actual) * (mu - actual);
            history.push(actual);
        }
        assert!(
            se_model < se_mean * 0.6,
            "model MSE {se_model} should beat mean MSE {se_mean}"
        );
    }
}

//! The common forecaster interface and rolling one-step evaluation, used to
//! compare ARIMA, SVR and the DRNN on identical terms.

use crate::error::Result;

/// A univariate time-series forecaster.
pub trait Forecaster {
    /// Fits the model on the training series.
    fn fit(&mut self, series: &[f64]) -> Result<()>;

    /// Forecasts `horizon` steps past the end of the *training* series.
    fn forecast(&self, horizon: usize) -> Result<Vec<f64>>;

    /// Forecasts `horizon` steps past the end of `series` using the fitted
    /// parameters (no refit) — the rolling-evaluation primitive.
    fn forecast_from(&self, series: &[f64], horizon: usize) -> Result<Vec<f64>>;

    /// Human-readable model name for reports.
    fn name(&self) -> String;
}

/// Rolling `horizon`-step-ahead evaluation: for each test point, forecast
/// from the history ending just before it (actuals are appended as they are
/// observed — "walk-forward" evaluation).  Returns `(actuals, predictions)`
/// for points where a forecast was possible.
pub fn rolling_forecast(
    model: &dyn Forecaster,
    train: &[f64],
    test: &[f64],
    horizon: usize,
) -> Result<(Vec<f64>, Vec<f64>)> {
    assert!(horizon >= 1);
    let mut history: Vec<f64> = train.to_vec();
    let mut actuals = Vec::new();
    let mut preds = Vec::new();
    for i in 0..test.len() {
        if i + horizon > test.len() {
            break;
        }
        let f = model.forecast_from(&history, horizon)?;
        preds.push(f[horizon - 1]);
        actuals.push(test[i + horizon - 1]);
        history.push(test[i]);
    }
    Ok((actuals, preds))
}

/// Naive persistence baseline: tomorrow equals today.  Useful as the
/// sanity floor every real model must beat.
#[derive(Debug, Default, Clone)]
pub struct NaiveForecaster {
    last: Option<f64>,
}

impl Forecaster for NaiveForecaster {
    fn fit(&mut self, series: &[f64]) -> Result<()> {
        self.last = series.last().copied();
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        match self.last {
            Some(v) => Ok(vec![v; horizon]),
            None => Err(crate::error::Error::NotFitted),
        }
    }

    fn forecast_from(&self, series: &[f64], horizon: usize) -> Result<Vec<f64>> {
        match series.last() {
            Some(&v) => Ok(vec![v; horizon]),
            None => Err(crate::error::Error::NotEnoughData { needed: 1, got: 0 }),
        }
    }

    fn name(&self) -> String {
        "Naive".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_repeats_last_value() {
        let mut m = NaiveForecaster::default();
        assert!(m.forecast(1).is_err());
        m.fit(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.forecast(3).unwrap(), vec![3.0, 3.0, 3.0]);
        assert_eq!(m.forecast_from(&[9.0], 2).unwrap(), vec![9.0, 9.0]);
    }

    #[test]
    fn rolling_walks_forward() {
        let m = {
            let mut m = NaiveForecaster::default();
            m.fit(&[0.0]).unwrap();
            m
        };
        let train = [10.0];
        let test = [1.0, 2.0, 3.0, 4.0];
        let (actuals, preds) = rolling_forecast(&m, &train, &test, 1).unwrap();
        assert_eq!(actuals, vec![1.0, 2.0, 3.0, 4.0]);
        // Naive h=1 prediction of test[i] is test[i-1] (train tail first).
        assert_eq!(preds, vec![10.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn rolling_horizon_two() {
        let m = {
            let mut m = NaiveForecaster::default();
            m.fit(&[0.0]).unwrap();
            m
        };
        let (actuals, preds) = rolling_forecast(&m, &[5.0], &[1.0, 2.0, 3.0], 2).unwrap();
        // Only test[1] and test[2] are 2-step-ahead reachable.
        assert_eq!(actuals, vec![2.0, 3.0]);
        assert_eq!(preds, vec![5.0, 1.0]);
    }
}

//! Property-based tests for the forecasting baselines: differencing
//! round trips, linear-solver correctness, OLS recovery and kernel laws.

use proptest::prelude::*;

use forecast::stats::{difference, difference_tails, ols, solve_linear, undifference};
use forecast::svr::Kernel;

proptest! {
    /// undifference(difference(x)) reconstructs the continuation exactly.
    #[test]
    fn difference_round_trip(
        series in prop::collection::vec(-1e3f64..1e3, 8..60),
        future in prop::collection::vec(-1e3f64..1e3, 1..10),
        d in 1usize..3,
    ) {
        let tails = difference_tails(&series, d);
        let all: Vec<f64> = series.iter().chain(&future).copied().collect();
        let all_diffed = difference(&all, d);
        let hist_diffed = difference(&series, d);
        let future_diffed = &all_diffed[hist_diffed.len()..];
        let rebuilt = undifference(future_diffed, &tails);
        prop_assert_eq!(rebuilt.len(), future.len());
        for (a, b) in rebuilt.iter().zip(&future) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{} vs {}", a, b);
        }
    }

    /// Diagonally dominant systems solve exactly: A·x == b.
    #[test]
    fn solve_linear_residual_is_zero(
        n in 1usize..8,
        seed in prop::collection::vec(-10.0f64..10.0, 64 + 8),
    ) {
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    a[i][j] = seed[i * 8 + j];
                    row_sum += a[i][j].abs();
                }
            }
            a[i][i] = row_sum + 1.0 + seed[64 + i].abs();
        }
        let b: Vec<f64> = (0..n).map(|i| seed[i * 8 + 7] * 3.0).collect();
        let x = solve_linear(&a, &b).expect("diagonally dominant is non-singular");
        for i in 0..n {
            let residual: f64 = (0..n).map(|j| a[i][j] * x[j]).sum::<f64>() - b[i];
            prop_assert!(residual.abs() < 1e-8, "row {}: residual {}", i, residual);
        }
    }

    /// OLS exactly recovers coefficients of noise-free linear data.
    #[test]
    fn ols_recovers_exact_linear_models(
        beta in prop::collection::vec(-5.0f64..5.0, 1..4),
        n_obs in 10usize..60,
    ) {
        let p = beta.len();
        let rows: Vec<Vec<f64>> = (0..n_obs)
            .map(|i| (0..p).map(|j| ((i * (j + 3) + j) % 17) as f64 - 8.0).collect())
            .collect();
        // Require non-degenerate design (distinct rows across features).
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&beta).map(|(x, b)| x * b).sum())
            .collect();
        if let Some(est) = ols(&rows, &y) {
            for (e, b) in est.iter().zip(&beta) {
                prop_assert!((e - b).abs() < 1e-3, "est {:?} vs true {:?}", est, beta);
            }
        }
    }

    /// RBF kernel: symmetric, bounded in (0, 1], and k(a, a) = 1.
    #[test]
    fn rbf_kernel_laws(
        a in prop::collection::vec(-50.0f64..50.0, 3),
        b in prop::collection::vec(-50.0f64..50.0, 3),
        gamma in 0.001f64..2.0,
    ) {
        let k = Kernel::Rbf { gamma };
        let kab = k.eval(&a, &b);
        let kba = k.eval(&b, &a);
        prop_assert_eq!(kab, kba);
        prop_assert!((0.0..=1.0).contains(&kab)); // exp underflows to 0 at extreme distances
        prop_assert!((k.eval(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// Linear kernel is bilinear: k(2a, b) = 2 k(a, b).
    #[test]
    fn linear_kernel_bilinear(
        a in prop::collection::vec(-10.0f64..10.0, 4),
        b in prop::collection::vec(-10.0f64..10.0, 4),
        s in -3.0f64..3.0,
    ) {
        let k = Kernel::Linear;
        let scaled: Vec<f64> = a.iter().map(|x| x * s).collect();
        let lhs = k.eval(&scaled, &b);
        let rhs = s * k.eval(&a, &b);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + rhs.abs()));
    }

    /// Differencing reduces a linear trend to a constant regardless of slope.
    #[test]
    fn differencing_kills_linear_trends(slope in -100.0f64..100.0, intercept in -100.0f64..100.0, n in 3usize..50) {
        let xs: Vec<f64> = (0..n).map(|i| slope * i as f64 + intercept).collect();
        let d = difference(&xs, 1);
        for v in &d {
            prop_assert!((v - slope).abs() < 1e-9 * (1.0 + slope.abs()));
        }
    }
}

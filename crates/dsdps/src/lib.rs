//! # dsdps — a Storm-model Distributed Stream Data Processing System
//!
//! This crate is a from-scratch reproduction of the substrate that the
//! IPDPS 2019 paper *"A Deep Recurrent Neural Network Based Predictive
//! Control Framework for Reliable Distributed Stream Data Processing"*
//! builds on: Apache Storm.  It implements the Storm programming and
//! execution model:
//!
//! * **Tuples and streams** — dynamically typed tuples ([`tuple::Tuple`])
//!   flowing on named streams between components.
//! * **Topologies** — directed graphs of **spouts** (sources) and **bolts**
//!   (operators), built with [`topology::TopologyBuilder`].
//! * **Stream groupings** — shuffle, fields (hash), global, all, direct,
//!   key-ratio and, crucially, the paper's **dynamic grouping**
//!   ([`grouping::dynamic`]) which splits tuples across downstream tasks
//!   according to a ratio vector that can be swapped atomically *while the
//!   topology runs*.
//! * **Reliability** — Storm's tuple-tree XOR acker with message timeouts
//!   and replay ([`acker`]).
//! * **Multilevel runtime metrics** — task-, worker- and machine-level
//!   statistics ([`metrics`]), the feature source for the paper's DRNN
//!   performance predictor.
//! * **Two runtimes** sharing the same topology API:
//!   - [`sim`]: a deterministic discrete-event simulation with a virtual
//!     clock, a machine/worker/executor placement hierarchy, a co-location
//!     interference model and fault injection.  All paper experiments run
//!     here (see `DESIGN.md` for the substitution argument).
//!   - [`rt`]: a threaded runtime executing the same topologies on real OS
//!     threads connected by crossbeam channels.
//! * **Observability** — sampled per-tuple-tree tracing, a live Prometheus
//!   metrics registry, and a control-plane event journal ([`telemetry`]).
//!
//! ## Quick example
//!
//! ```
//! use dsdps::prelude::*;
//!
//! struct Numbers(i64);
//! impl Spout for Numbers {
//!     fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
//!         self.0 += 1;
//!         out.emit(Tuple::of([Value::from(self.0)]));
//!         self.0 < 100
//!     }
//! }
//!
//! struct Doubler;
//! impl Bolt for Doubler {
//!     fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
//!         let v = tuple.values()[0].as_i64().unwrap();
//!         out.emit(Tuple::of([Value::from(v * 2)]));
//!     }
//! }
//!
//! let mut builder = TopologyBuilder::new("doubling");
//! builder.set_spout("nums", 1, move || Numbers(0)).unwrap();
//! builder
//!     .set_bolt("double", 2, || Doubler)
//!     .unwrap()
//!     .shuffle_grouping("nums")
//!     .unwrap();
//! let topology = builder.build().unwrap();
//! assert_eq!(topology.components().count(), 2);
//! ```

#![warn(missing_docs)]

pub mod acker;
pub mod component;
pub mod config;
pub mod dist;
pub mod error;
pub mod grouping;
pub mod hash;
pub mod metrics;
pub mod rt;
pub mod scheduler;
pub mod sim;
pub mod stream;
pub mod telemetry;
pub mod topology;
pub mod tuple;
pub mod window;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::component::{Bolt, BoltOutput, Spout, SpoutOutput, TopologyContext};
    pub use crate::config::EngineConfig;
    pub use crate::error::{Error, Result};
    pub use crate::grouping::dynamic::{DynamicGroupingHandle, SplitRatio};
    pub use crate::grouping::Grouping;
    pub use crate::stream::StreamId;
    pub use crate::topology::{ComponentId, TaskId, Topology, TopologyBuilder};
    pub use crate::tuple::{Fields, Tuple, Value};
}

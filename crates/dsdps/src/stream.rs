//! Stream identifiers and per-stream declarations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::tuple::Fields;

/// Name of Storm's implicit default stream.
pub const DEFAULT_STREAM: &str = "default";

/// Identifier of a named output stream of a component.
///
/// Cheap to clone and compare; the default stream is [`StreamId::default`].
// Hash stays derived (content-based): the manual `PartialEq` only adds a
// pointer fast path and agrees with content equality, so the Eq/Hash
// contract holds.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Debug, Clone, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(Arc<str>);

impl PartialEq for StreamId {
    fn eq(&self, other: &Self) -> bool {
        // Ids cloned from one declaration (the interned default stream, a
        // router's wiring-time copies) share the allocation, so the hot-path
        // compare is two pointer words, no string walk.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl StreamId {
    /// Creates a stream id from a name.
    pub fn new(name: &str) -> Self {
        StreamId(Arc::from(name))
    }

    /// The stream's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if this is the implicit default stream.
    pub fn is_default(&self) -> bool {
        &*self.0 == DEFAULT_STREAM
    }
}

impl Default for StreamId {
    /// The implicit default stream.  Returns clones of one interned
    /// allocation, so every `default()` call is a refcount bump (not a fresh
    /// `Arc<str>`) and default-stream ids compare by pointer.
    fn default() -> Self {
        static DEFAULT: OnceLock<StreamId> = OnceLock::new();
        DEFAULT
            .get_or_init(|| StreamId::new(DEFAULT_STREAM))
            .clone()
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for StreamId {
    fn from(s: &str) -> Self {
        StreamId::new(s)
    }
}

/// Declaration of one output stream: its id and schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDecl {
    /// The stream id.
    pub id: StreamId,
    /// Schema of tuples on the stream.
    pub fields: Fields,
}

impl StreamDecl {
    /// Declares the default stream with the given schema.
    pub fn default_stream(fields: Fields) -> Self {
        StreamDecl {
            id: StreamId::default(),
            fields,
        }
    }

    /// Declares a named stream with the given schema.
    pub fn named(id: &str, fields: Fields) -> Self {
        StreamDecl {
            id: StreamId::new(id),
            fields,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stream_identity() {
        assert!(StreamId::default().is_default());
        assert!(!StreamId::new("metrics").is_default());
        assert_eq!(StreamId::default(), StreamId::new(DEFAULT_STREAM));
    }

    #[test]
    fn stream_ids_hash_and_order() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(StreamId::new("a"));
        set.insert(StreamId::new("a"));
        set.insert(StreamId::new("b"));
        assert_eq!(set.len(), 2);
        assert!(StreamId::new("a") < StreamId::new("b"));
    }

    #[test]
    fn decl_constructors() {
        let d = StreamDecl::default_stream(Fields::new(["x"]));
        assert!(d.id.is_default());
        let n = StreamDecl::named("side", Fields::new(["y"]));
        assert_eq!(n.id.as_str(), "side");
        assert_eq!(format!("{}", n.id), "side");
    }
}

//! Windowing support: tumbling and sliding event-time windows as a reusable
//! assigner, plus a [`WindowedBolt`] adapter that turns a per-window
//! aggregation into an ordinary [`Bolt`].
//!
//! Storm ships `BaseWindowedBolt` for the same purpose; here windows are
//! driven by the runtime clock delivered through
//! [`BoltOutput::now_s`](crate::component::BoltOutput::now_s), so the same
//! window logic runs under virtual time in the simulator and wall time on
//! the threaded runtime.

use std::collections::{BTreeMap, BTreeSet};

use crate::component::{Bolt, BoltOutput, TopologyContext};
use crate::rt::checkpoint::{SnapshotKind, StateSnapshot, StatefulComponent};
use crate::tuple::Tuple;

/// A window assigner: maps a timestamp to the window(s) it belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowAssigner {
    /// Non-overlapping windows of `size_s` seconds.
    Tumbling {
        /// Window length in seconds.
        size_s: f64,
    },
    /// Overlapping windows of `size_s` seconds, starting every `slide_s`.
    /// `slide_s` must not exceed `size_s`.
    Sliding {
        /// Window length in seconds.
        size_s: f64,
        /// Window start spacing in seconds.
        slide_s: f64,
    },
}

/// A window instance, identified by its start index (start time =
/// `index × slide`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowId(pub i64);

impl WindowAssigner {
    /// Validates parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            WindowAssigner::Tumbling { size_s } => {
                if *size_s <= 0.0 {
                    return Err("window size must be positive".into());
                }
            }
            WindowAssigner::Sliding { size_s, slide_s } => {
                if *size_s <= 0.0 || *slide_s <= 0.0 {
                    return Err("window size and slide must be positive".into());
                }
                if slide_s > size_s {
                    return Err("slide must not exceed window size".into());
                }
            }
        }
        Ok(())
    }

    /// The slide (window start spacing) in seconds.
    pub fn slide_s(&self) -> f64 {
        match self {
            WindowAssigner::Tumbling { size_s } => *size_s,
            WindowAssigner::Sliding { slide_s, .. } => *slide_s,
        }
    }

    /// The window size in seconds.
    pub fn size_s(&self) -> f64 {
        match self {
            WindowAssigner::Tumbling { size_s } => *size_s,
            WindowAssigner::Sliding { size_s, .. } => *size_s,
        }
    }

    /// Windows containing timestamp `t` (ascending by id).
    pub fn assign(&self, t: f64) -> Vec<WindowId> {
        let size = self.size_s();
        let slide = self.slide_s();
        // A window with start index k covers [k*slide, k*slide + size).
        let last = (t / slide).floor() as i64;
        let first = ((t - size) / slide).floor() as i64 + 1;
        (first..=last).map(WindowId).collect()
    }

    /// Start time of a window.
    pub fn window_start(&self, id: WindowId) -> f64 {
        id.0 as f64 * self.slide_s()
    }

    /// End time (exclusive) of a window.
    pub fn window_end(&self, id: WindowId) -> f64 {
        self.window_start(id) + self.size_s()
    }
}

/// Per-window aggregation logic for [`WindowedBolt`].
///
/// The accumulator must be cloneable and serializable so [`WindowedBolt`]
/// can checkpoint open windows (see [`crate::rt::checkpoint`]).
pub trait WindowAggregate: Send {
    /// Accumulator type kept per open window.
    type Acc: Default + Send + Clone + serde::Serialize + serde::Deserialize;

    /// Folds one tuple into the accumulator.
    fn add(&mut self, acc: &mut Self::Acc, tuple: &Tuple);

    /// Called when a window closes; emit the window's results.
    fn emit(&mut self, window_start_s: f64, acc: Self::Acc, out: &mut BoltOutput);
}

/// Adapter running a [`WindowAggregate`] as a [`Bolt`]: assigns each input
/// tuple to its window(s) by arrival time, closes windows when the clock
/// passes their end (on tuple arrival or tick), and emits via the
/// aggregate's `emit`.
///
/// Windows close with an `allowed_lateness_s` grace period to absorb
/// in-flight tuples.
pub struct WindowedBolt<A: WindowAggregate> {
    assigner: WindowAssigner,
    aggregate: A,
    allowed_lateness_s: f64,
    open: BTreeMap<WindowId, A::Acc>,
    /// Windows closed per lifetime (observability).
    closed: u64,
    /// Tuples that arrived after their window closed.
    late_dropped: u64,
    /// Windows mutated since the last snapshot/delta (incremental
    /// checkpointing).
    dirty: BTreeSet<WindowId>,
    /// Windows closed since the last snapshot/delta.
    removed: BTreeSet<WindowId>,
    /// `closed` as of the last snapshot/delta.
    closed_at_snap: u64,
    /// `late_dropped` as of the last snapshot/delta.
    late_at_snap: u64,
}

impl<A: WindowAggregate> WindowedBolt<A> {
    /// Creates the adapter.  Panics on invalid assigner parameters.
    pub fn new(assigner: WindowAssigner, aggregate: A, allowed_lateness_s: f64) -> Self {
        assigner.validate().expect("valid window parameters");
        assert!(allowed_lateness_s >= 0.0);
        WindowedBolt {
            assigner,
            aggregate,
            allowed_lateness_s,
            open: BTreeMap::new(),
            closed: 0,
            late_dropped: 0,
            dirty: BTreeSet::new(),
            removed: BTreeSet::new(),
            closed_at_snap: 0,
            late_at_snap: 0,
        }
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.closed
    }

    /// Tuples dropped for arriving after their window closed.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Currently open windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    fn close_expired(&mut self, now: f64, out: &mut BoltOutput) {
        while let Some((&id, _)) = self.open.iter().next() {
            if self.assigner.window_end(id) + self.allowed_lateness_s > now {
                break;
            }
            let acc = self.open.remove(&id).expect("window exists");
            self.dirty.remove(&id);
            self.removed.insert(id);
            self.aggregate
                .emit(self.assigner.window_start(id), acc, out);
            self.closed += 1;
        }
    }
}

/// Full image: open windows (ascending by id), `closed`, `late_dropped`.
type WindowFullState<Acc> = (Vec<(i64, Acc)>, u64, u64);
/// Delta since the previous image: upserted windows, removed window ids,
/// `closed` increment, `late_dropped` increment.
type WindowDeltaState<Acc> = (Vec<(i64, Acc)>, Vec<i64>, u64, u64);

impl<A: WindowAggregate> StatefulComponent for WindowedBolt<A> {
    fn snapshot(&mut self) -> StateSnapshot {
        let open: Vec<(i64, A::Acc)> = self
            .open
            .iter()
            .map(|(id, acc)| (id.0, acc.clone()))
            .collect();
        let state: WindowFullState<A::Acc> = (open, self.closed, self.late_dropped);
        self.dirty.clear();
        self.removed.clear();
        self.closed_at_snap = self.closed;
        self.late_at_snap = self.late_dropped;
        StateSnapshot::encode(SnapshotKind::Full, &state)
    }

    fn delta(&mut self) -> Option<StateSnapshot> {
        let upserts: Vec<(i64, A::Acc)> = self
            .dirty
            .iter()
            .filter_map(|id| self.open.get(id).map(|acc| (id.0, acc.clone())))
            .collect();
        let removed: Vec<i64> = self.removed.iter().map(|id| id.0).collect();
        let state: WindowDeltaState<A::Acc> = (
            upserts,
            removed,
            self.closed - self.closed_at_snap,
            self.late_dropped - self.late_at_snap,
        );
        self.dirty.clear();
        self.removed.clear();
        self.closed_at_snap = self.closed;
        self.late_at_snap = self.late_dropped;
        Some(StateSnapshot::encode(SnapshotKind::Delta, &state))
    }

    fn restore(&mut self, base: &StateSnapshot, deltas: &[StateSnapshot]) -> Result<(), String> {
        let (open, closed, late): WindowFullState<A::Acc> = base.decode()?;
        self.open = open
            .into_iter()
            .map(|(id, acc)| (WindowId(id), acc))
            .collect();
        self.closed = closed;
        self.late_dropped = late;
        for d in deltas {
            let (upserts, removed, closed_inc, late_inc): WindowDeltaState<A::Acc> = d.decode()?;
            for (id, acc) in upserts {
                self.open.insert(WindowId(id), acc);
            }
            for id in removed {
                self.open.remove(&WindowId(id));
            }
            self.closed += closed_inc;
            self.late_dropped += late_inc;
        }
        self.dirty.clear();
        self.removed.clear();
        self.closed_at_snap = self.closed;
        self.late_at_snap = self.late_dropped;
        Ok(())
    }
}

impl<A: WindowAggregate + 'static> Bolt for WindowedBolt<A> {
    fn prepare(&mut self, _ctx: &TopologyContext) {}

    fn execute(&mut self, tuple: &Tuple, out: &mut BoltOutput) {
        let now = out.now_s();
        self.close_expired(now, out);
        let mut assigned = false;
        for id in self.assigner.assign(now) {
            // A window that already closed cannot accept this tuple.
            if self.assigner.window_end(id) + self.allowed_lateness_s <= now {
                continue;
            }
            let acc = self.open.entry(id).or_default();
            self.aggregate.add(acc, tuple);
            // A window can be touched after closing (non-monotone clock):
            // keep the dirty/removed sets disjoint so delta application is
            // order-independent.
            self.dirty.insert(id);
            self.removed.remove(&id);
            assigned = true;
        }
        if !assigned {
            self.late_dropped += 1;
        }
    }

    fn tick(&mut self, out: &mut BoltOutput) {
        let now = out.now_s();
        self.close_expired(now, out);
    }

    fn stateful(&mut self) -> Option<&mut dyn StatefulComponent> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    #[test]
    fn tumbling_assignment_is_partition() {
        let a = WindowAssigner::Tumbling { size_s: 5.0 };
        assert_eq!(a.assign(0.0), vec![WindowId(0)]);
        assert_eq!(a.assign(4.999), vec![WindowId(0)]);
        assert_eq!(a.assign(5.0), vec![WindowId(1)]);
        assert_eq!(a.assign(12.3), vec![WindowId(2)]);
        assert_eq!(a.window_start(WindowId(2)), 10.0);
        assert_eq!(a.window_end(WindowId(2)), 15.0);
    }

    #[test]
    fn sliding_assignment_overlaps() {
        // size 10, slide 5: each instant belongs to exactly 2 windows.
        let a = WindowAssigner::Sliding {
            size_s: 10.0,
            slide_s: 5.0,
        };
        assert_eq!(a.assign(7.0), vec![WindowId(0), WindowId(1)]);
        assert_eq!(a.assign(12.0), vec![WindowId(1), WindowId(2)]);
        // Window 1 covers [5, 15).
        assert_eq!(a.window_start(WindowId(1)), 5.0);
        assert_eq!(a.window_end(WindowId(1)), 15.0);
    }

    #[test]
    fn sliding_cover_count_is_size_over_slide() {
        let a = WindowAssigner::Sliding {
            size_s: 9.0,
            slide_s: 3.0,
        };
        for t in [0.5, 3.7, 10.1, 100.9] {
            assert_eq!(a.assign(t).len(), 3, "t={t}");
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(WindowAssigner::Tumbling { size_s: 0.0 }.validate().is_err());
        assert!(WindowAssigner::Sliding {
            size_s: 5.0,
            slide_s: 6.0
        }
        .validate()
        .is_err());
        assert!(WindowAssigner::Sliding {
            size_s: 5.0,
            slide_s: -1.0
        }
        .validate()
        .is_err());
        assert!(WindowAssigner::Tumbling { size_s: 1.0 }.validate().is_ok());
    }

    /// Sums the integer in field 0 per window; emits (start, sum).
    struct SumAgg;

    impl WindowAggregate for SumAgg {
        type Acc = i64;

        fn add(&mut self, acc: &mut i64, tuple: &Tuple) {
            *acc += tuple.get(0).and_then(Value::as_i64).unwrap_or(0);
        }

        fn emit(&mut self, window_start_s: f64, acc: i64, out: &mut BoltOutput) {
            out.emit_unanchored(Tuple::of([Value::from(window_start_s), Value::from(acc)]));
        }
    }

    fn feed(bolt: &mut WindowedBolt<SumAgg>, t: f64, v: i64, out: &mut BoltOutput) {
        out.set_now(t);
        bolt.execute(&Tuple::of([Value::from(v)]), out);
    }

    #[test]
    fn tumbling_windowed_bolt_sums_per_window() {
        let mut bolt = WindowedBolt::new(WindowAssigner::Tumbling { size_s: 2.0 }, SumAgg, 0.0);
        let mut out = BoltOutput::new();
        feed(&mut bolt, 0.5, 1, &mut out);
        feed(&mut bolt, 1.5, 2, &mut out);
        feed(&mut bolt, 2.5, 10, &mut out); // closes window 0
        let (emissions, _) = out.drain();
        assert_eq!(emissions.len(), 1);
        assert_eq!(emissions[0].tuple.get(0).unwrap().as_f64(), Some(0.0));
        assert_eq!(emissions[0].tuple.get(1).unwrap().as_i64(), Some(3));
        assert_eq!(bolt.windows_closed(), 1);
        assert_eq!(bolt.open_windows(), 1);
    }

    #[test]
    fn tick_closes_windows_without_traffic() {
        let mut bolt = WindowedBolt::new(WindowAssigner::Tumbling { size_s: 1.0 }, SumAgg, 0.0);
        let mut out = BoltOutput::new();
        feed(&mut bolt, 0.2, 7, &mut out);
        out.set_now(5.0);
        bolt.tick(&mut out);
        let (emissions, _) = out.drain();
        assert_eq!(emissions.len(), 1, "idle window flushed by tick");
        assert_eq!(emissions[0].tuple.get(1).unwrap().as_i64(), Some(7));
    }

    #[test]
    fn sliding_windows_double_count_by_design() {
        let mut bolt = WindowedBolt::new(
            WindowAssigner::Sliding {
                size_s: 4.0,
                slide_s: 2.0,
            },
            SumAgg,
            0.0,
        );
        let mut out = BoltOutput::new();
        // t=3 belongs to windows starting at 0 and 2.
        feed(&mut bolt, 3.0, 5, &mut out);
        out.set_now(20.0);
        bolt.tick(&mut out);
        let (emissions, _) = out.drain();
        let sums: Vec<i64> = emissions
            .iter()
            .map(|e| e.tuple.get(1).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(
            sums,
            vec![5, 5],
            "tuple counted in both overlapping windows"
        );
    }

    #[test]
    fn allowed_lateness_delays_close() {
        let mut strict = WindowedBolt::new(WindowAssigner::Tumbling { size_s: 1.0 }, SumAgg, 0.0);
        let mut lenient = WindowedBolt::new(WindowAssigner::Tumbling { size_s: 1.0 }, SumAgg, 1.0);
        let mut out = BoltOutput::new();
        feed(&mut strict, 0.5, 1, &mut out);
        feed(&mut lenient, 0.5, 1, &mut out);
        out.drain();
        out.set_now(1.5);
        strict.tick(&mut out);
        lenient.tick(&mut out);
        let (e, _) = out.drain();
        assert_eq!(e.len(), 1, "only the strict bolt closed at t=1.5");
        assert_eq!(strict.windows_closed(), 1);
        assert_eq!(lenient.windows_closed(), 0);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut bolt = WindowedBolt::new(WindowAssigner::Tumbling { size_s: 2.0 }, SumAgg, 0.0);
        let mut out = BoltOutput::new();
        feed(&mut bolt, 0.5, 1, &mut out);
        feed(&mut bolt, 2.5, 10, &mut out); // closes window 0
        feed(&mut bolt, 3.5, 20, &mut out);
        let snap = bolt.snapshot();

        let mut fresh = WindowedBolt::new(WindowAssigner::Tumbling { size_s: 2.0 }, SumAgg, 0.0);
        fresh.restore(&snap, &[]).unwrap();
        assert_eq!(fresh.open_windows(), 1);
        assert_eq!(fresh.windows_closed(), 1);
        // The restored bolt closes window 1 with the pre-snapshot sum.
        out.drain();
        out.set_now(10.0);
        fresh.tick(&mut out);
        let (e, _) = out.drain();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].tuple.get(1).unwrap().as_i64(), Some(30));
    }

    #[test]
    fn deltas_compose_to_full_snapshot() {
        let mut bolt = WindowedBolt::new(WindowAssigner::Tumbling { size_s: 1.0 }, SumAgg, 0.0);
        let mut out = BoltOutput::new();
        feed(&mut bolt, 0.1, 1, &mut out);
        let base = bolt.snapshot();
        feed(&mut bolt, 0.2, 2, &mut out);
        let d1 = bolt.delta().unwrap();
        assert_eq!(d1.kind, SnapshotKind::Delta);
        feed(&mut bolt, 1.3, 5, &mut out); // closes window 0
        feed(&mut bolt, 7.7, 9, &mut out); // closes window 1 too
        let d2 = bolt.delta().unwrap();
        let full = bolt.snapshot();

        let mut via_deltas =
            WindowedBolt::new(WindowAssigner::Tumbling { size_s: 1.0 }, SumAgg, 0.0);
        via_deltas.restore(&base, &[d1, d2]).unwrap();
        let mut via_full = WindowedBolt::new(WindowAssigner::Tumbling { size_s: 1.0 }, SumAgg, 0.0);
        via_full.restore(&full, &[]).unwrap();
        assert_eq!(via_deltas.windows_closed(), via_full.windows_closed());
        assert_eq!(via_deltas.open_windows(), via_full.open_windows());
        assert_eq!(
            via_deltas.snapshot().bytes,
            via_full.snapshot().bytes,
            "delta-composed state matches the full image byte-for-byte"
        );
    }

    #[test]
    fn windows_close_in_order() {
        let mut bolt = WindowedBolt::new(WindowAssigner::Tumbling { size_s: 1.0 }, SumAgg, 0.0);
        let mut out = BoltOutput::new();
        for t in [0.1, 1.1, 2.1, 3.1] {
            feed(&mut bolt, t, 1, &mut out);
        }
        out.set_now(10.0);
        bolt.tick(&mut out);
        let (emissions, _) = out.drain();
        let starts: Vec<f64> = emissions
            .iter()
            .map(|e| e.tuple.get(0).unwrap().as_f64().unwrap())
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(starts, sorted, "windows emitted oldest-first");
        assert_eq!(starts.len(), 4);
    }
}

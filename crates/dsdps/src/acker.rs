//! Storm's tuple-tree acking algorithm.
//!
//! Each spout tuple roots a *tuple tree*.  Every tuple instance flowing in
//! the tree carries a 64-bit edge id; the acker keeps one 64-bit XOR
//! accumulator per root.  Emitting a child XORs its edge id in, acking a
//! received tuple XORs its edge id out — so the accumulator reaches zero
//! exactly when every emitted tuple has been acked, using O(1) memory per
//! root regardless of tree size.
//!
//! Edge ids must behave like independent random 64-bit values for the
//! zero-test to be sound (a structured sequence like 1,2,3 XORs to zero
//! spuriously: `1 ^ 2 ^ 3 == 0`).  We generate them deterministically with a
//! SplitMix64 scramble of a counter, which is reproducible across runs yet
//! statistically indistinguishable from random for this purpose.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::component::MessageId;
use crate::hash::FxHashMap;
use crate::topology::TaskId;

/// Identifier of one spout-tuple tree.
pub type RootId = u64;

/// Why a tree left the pending table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Every tuple in the tree was acked.
    Acked,
    /// A bolt explicitly failed a tuple of the tree.
    Failed,
    /// The tree outlived the message timeout.
    TimedOut,
}

/// Record of a completed (acked/failed/timed-out) tree, returned to the
/// runtime so it can notify the spout.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeOutcome {
    /// The root id.
    pub root: RootId,
    /// Task id of the originating spout.
    pub spout_task: TaskId,
    /// Spout-assigned message id.
    pub message_id: MessageId,
    /// How the tree completed.
    pub completion: Completion,
    /// Time the root was emitted (runtime clock, seconds).
    pub spawned_at: f64,
    /// Time the tree completed.
    pub completed_at: f64,
}

impl TreeOutcome {
    /// End-to-end *complete latency* of the tree in seconds.
    pub fn complete_latency(&self) -> f64 {
        self.completed_at - self.spawned_at
    }
}

#[derive(Debug)]
struct Pending {
    ack_val: u64,
    spout_task: TaskId,
    message_id: MessageId,
    spawned_at: f64,
}

/// SplitMix64 — the standard 64-bit finalizer used to scramble counters
/// into high-quality pseudo-random ids.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The acker: pending tuple trees and their XOR accumulators.
#[derive(Debug, Default)]
pub struct Acker {
    pending: FxHashMap<RootId, Pending>,
    next_edge: u64,
    /// Completed-tree outcomes not yet drained by the runtime.
    outcomes: Vec<TreeOutcome>,
}

impl Acker {
    /// Creates an empty acker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh edge id (scrambled counter).
    pub fn new_edge_id(&mut self) -> u64 {
        self.next_edge += 1;
        // Zero is reserved: XORing 0 would be a no-op and break accounting.
        let id = splitmix64(self.next_edge);
        if id == 0 {
            self.new_edge_id()
        } else {
            id
        }
    }

    /// Registers a new tree rooted at a spout emission whose root tuple got
    /// `root_edge` as its edge id.
    pub fn track(
        &mut self,
        root: RootId,
        root_edge: u64,
        spout_task: TaskId,
        message_id: MessageId,
        now: f64,
    ) {
        self.pending.insert(
            root,
            Pending {
                ack_val: root_edge,
                spout_task,
                message_id,
                spawned_at: now,
            },
        );
    }

    /// A bolt emitted a child tuple with `edge` anchored to `root`.
    pub fn on_emit(&mut self, root: RootId, edge: u64) {
        if let Some(p) = self.pending.get_mut(&root) {
            p.ack_val ^= edge;
        }
    }

    /// A tuple with `edge` anchored to `root` was acked.  If the
    /// accumulator reaches zero the tree completes.
    pub fn on_ack(&mut self, root: RootId, edge: u64, now: f64) {
        let done = match self.pending.get_mut(&root) {
            Some(p) => {
                p.ack_val ^= edge;
                p.ack_val == 0
            }
            None => false,
        };
        if done {
            self.finish(root, Completion::Acked, now);
        }
    }

    /// A bolt failed a tuple of `root`: the whole tree fails immediately.
    pub fn on_fail(&mut self, root: RootId, now: f64) {
        if self.pending.contains_key(&root) {
            self.finish(root, Completion::Failed, now);
        }
    }

    fn finish(&mut self, root: RootId, completion: Completion, now: f64) {
        if let Some(p) = self.pending.remove(&root) {
            self.outcomes.push(TreeOutcome {
                root,
                spout_task: p.spout_task,
                message_id: p.message_id,
                completion,
                spawned_at: p.spawned_at,
                completed_at: now,
            });
        }
    }

    /// Expires every tree older than `timeout` seconds.
    pub fn expire(&mut self, now: f64, timeout: f64) {
        let expired: Vec<RootId> = self
            .pending
            .iter()
            .filter(|(_, p)| now - p.spawned_at > timeout)
            .map(|(r, _)| *r)
            .collect();
        for root in expired {
            self.finish(root, Completion::TimedOut, now);
        }
    }

    /// Drains completed-tree outcomes accumulated since the last drain.
    pub fn drain_outcomes(&mut self) -> Vec<TreeOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Moves queued outcomes into `out`, keeping this acker's buffer
    /// capacity (the allocation-free variant of
    /// [`drain_outcomes`](Self::drain_outcomes)).
    pub fn drain_outcomes_into(&mut self, out: &mut Vec<TreeOutcome>) {
        out.append(&mut self.outcomes);
    }

    /// Number of trees still in flight.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Completed-tree outcomes waiting to be drained.
    pub fn outcome_count(&self) -> usize {
        self.outcomes.len()
    }
}

/// Lock-striped acker: `N` independent [`Acker`] shards, each behind its own
/// mutex, keyed by `root % N`.
///
/// Every operation on one tuple tree touches exactly one shard, so trees
/// whose roots land in different shards never contend — this is what lets
/// the threaded runtime's ack traffic scale with cores instead of
/// serializing on a single global lock (the same striping Storm applies by
/// running several acker executors and Flink by partitioning channel state).
/// The per-root ordering that the XOR accounting relies on is preserved
/// because a root always maps to the same shard; operations on *different*
/// roots commute.
///
/// Edge ids come from one shared lock-free counter so the scrambled
/// sequence stays globally unique, exactly as with a single acker.
#[derive(Debug)]
pub struct ShardedAcker {
    shards: Vec<Mutex<Acker>>,
    next_edge: AtomicU64,
}

impl ShardedAcker {
    /// Creates an acker striped over `num_shards` locks (at least one).
    pub fn new(num_shards: usize) -> Self {
        ShardedAcker {
            shards: (0..num_shards.max(1))
                .map(|_| Mutex::new(Acker::new()))
                .collect(),
            next_edge: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index owning `root`.
    #[inline]
    pub fn shard_of(&self, root: RootId) -> usize {
        (root % self.shards.len() as u64) as usize
    }

    /// Direct access to one shard's lock, for callers that batch several
    /// operations under a single acquisition (the runtime's per-shard ack
    /// batches).  The caller must route each root to
    /// [`shard_of`](Self::shard_of)`(root)` or trees will be split across
    /// accumulators and never complete.
    pub fn shard(&self, idx: usize) -> &Mutex<Acker> {
        &self.shards[idx]
    }

    /// Allocates a fresh nonzero edge id without taking any shard lock.
    pub fn new_edge_id(&self) -> u64 {
        loop {
            let raw = self
                .next_edge
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_add(1);
            let id = splitmix64(raw);
            if id != 0 {
                return id;
            }
        }
    }

    /// Registers a new tree.  See [`Acker::track`].
    pub fn track(
        &self,
        root: RootId,
        root_edge: u64,
        spout_task: TaskId,
        message_id: MessageId,
        now: f64,
    ) {
        self.shards[self.shard_of(root)]
            .lock()
            .track(root, root_edge, spout_task, message_id, now);
    }

    /// A child tuple was emitted anchored to `root`.  See [`Acker::on_emit`].
    pub fn on_emit(&self, root: RootId, edge: u64) {
        self.shards[self.shard_of(root)].lock().on_emit(root, edge);
    }

    /// A tuple anchored to `root` was acked.  See [`Acker::on_ack`].
    pub fn on_ack(&self, root: RootId, edge: u64, now: f64) {
        self.shards[self.shard_of(root)]
            .lock()
            .on_ack(root, edge, now);
    }

    /// A tuple of `root`'s tree was failed.  See [`Acker::on_fail`].
    pub fn on_fail(&self, root: RootId, now: f64) {
        self.shards[self.shard_of(root)].lock().on_fail(root, now);
    }

    /// Expires trees older than `timeout` in every shard.
    pub fn expire(&self, now: f64, timeout: f64) {
        for shard in &self.shards {
            shard.lock().expire(now, timeout);
        }
    }

    /// Drains completed-tree outcomes from every shard.  Shards with nothing
    /// queued are skipped without blocking on their lock.
    pub fn drain_outcomes(&self) -> Vec<TreeOutcome> {
        let mut out = Vec::new();
        for shard in &self.shards {
            // Opportunistic: if another thread holds the shard it is either
            // applying ops (and will drain its own completions) or draining
            // already, so skipping cannot strand an outcome forever.
            if let Some(mut acker) = shard.try_lock() {
                if acker.outcome_count() > 0 {
                    out.append(&mut acker.drain_outcomes());
                }
            }
        }
        out
    }

    /// Drains every shard unconditionally (shutdown/reporting path).
    pub fn drain_outcomes_blocking(&self) -> Vec<TreeOutcome> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut shard.lock().drain_outcomes());
        }
        out
    }

    /// Trees still in flight, summed over shards.
    pub fn pending_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pending_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_of(acker: &mut Acker) -> TreeOutcome {
        let mut o = acker.drain_outcomes();
        assert_eq!(o.len(), 1);
        o.pop().unwrap()
    }

    #[test]
    fn linear_chain_completes_when_all_acked() {
        // spout -> b1 -> b2 (b2 emits nothing)
        let mut a = Acker::new();
        let root = 1;
        let e_root = a.new_edge_id();
        a.track(root, e_root, TaskId(0), 7, 0.0);

        // b1 receives root tuple, emits one child, acks input.
        let e_child = a.new_edge_id();
        a.on_emit(root, e_child);
        a.on_ack(root, e_root, 1.0);
        assert_eq!(a.pending_count(), 1, "child still outstanding");

        // b2 receives child, emits nothing, acks.
        a.on_ack(root, e_child, 2.0);
        assert_eq!(a.pending_count(), 0);
        let o = outcome_of(&mut a);
        assert_eq!(o.completion, Completion::Acked);
        assert_eq!(o.message_id, 7);
        assert!((o.complete_latency() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fan_out_tree_completes_only_after_every_branch() {
        let mut a = Acker::new();
        let root = 9;
        let e_root = a.new_edge_id();
        a.track(root, e_root, TaskId(2), 1, 0.0);

        // One bolt emits 3 children then acks its input.
        let children: Vec<u64> = (0..3).map(|_| a.new_edge_id()).collect();
        for &c in &children {
            a.on_emit(root, c);
        }
        a.on_ack(root, e_root, 0.5);

        for (i, &c) in children.iter().enumerate() {
            assert_eq!(a.pending_count(), 1, "branch {i} outstanding");
            a.on_ack(root, c, 1.0 + i as f64);
        }
        assert_eq!(a.pending_count(), 0);
        assert_eq!(outcome_of(&mut a).completion, Completion::Acked);
    }

    #[test]
    fn explicit_fail_completes_tree_as_failed() {
        let mut a = Acker::new();
        let e = a.new_edge_id();
        a.track(5, e, TaskId(0), 42, 0.0);
        a.on_fail(5, 3.0);
        let o = outcome_of(&mut a);
        assert_eq!(o.completion, Completion::Failed);
        assert_eq!(o.message_id, 42);
        // Late acks for the failed tree are ignored.
        a.on_ack(5, e, 4.0);
        assert!(a.drain_outcomes().is_empty());
    }

    #[test]
    fn timeout_expires_only_old_trees() {
        let mut a = Acker::new();
        let e1 = a.new_edge_id();
        let e2 = a.new_edge_id();
        a.track(1, e1, TaskId(0), 1, 0.0);
        a.track(2, e2, TaskId(0), 2, 8.0);
        a.expire(10.0, 5.0);
        let outcomes = a.drain_outcomes();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].root, 1);
        assert_eq!(outcomes[0].completion, Completion::TimedOut);
        assert_eq!(a.pending_count(), 1);
    }

    #[test]
    fn edge_ids_do_not_xor_to_zero_spuriously() {
        // The failure mode of naive counter ids: 1 ^ 2 ^ 3 == 0.  Verify the
        // scrambled sequence has no small-prefix zero XOR.
        let mut a = Acker::new();
        let mut acc = 0u64;
        for _ in 0..10_000 {
            acc ^= a.new_edge_id();
            assert_ne!(acc, 0);
        }
    }

    #[test]
    fn edge_ids_unique_over_long_runs() {
        let mut a = Acker::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100_000 {
            assert!(seen.insert(a.new_edge_id()));
        }
    }

    #[test]
    fn ack_for_unknown_root_is_ignored() {
        let mut a = Acker::new();
        a.on_ack(99, 123, 0.0);
        a.on_emit(99, 123);
        a.on_fail(99, 0.0);
        assert!(a.drain_outcomes().is_empty());
        assert_eq!(a.pending_count(), 0);
    }

    #[test]
    fn diamond_topology_double_delivery() {
        // spout tuple goes to two bolts (all-grouping style): the runtime
        // assigns each delivered instance its own edge id by re-emitting.
        let mut a = Acker::new();
        let root = 3;
        let e_a = a.new_edge_id();
        let e_b = a.new_edge_id();
        a.track(root, e_a, TaskId(0), 0, 0.0);
        a.on_emit(root, e_b); // second delivery instance
        a.on_ack(root, e_a, 1.0);
        assert_eq!(a.pending_count(), 1);
        a.on_ack(root, e_b, 1.5);
        assert_eq!(outcome_of(&mut a).completion, Completion::Acked);
    }

    /// Counts outcomes per root over a sequence of acker operations — the
    /// invariant the spout relies on: exactly one ack *or* fail notification
    /// per tracked root, never zero, never two.
    fn outcomes_per_root(acker: &mut Acker) -> std::collections::HashMap<RootId, Vec<Completion>> {
        let mut per_root: std::collections::HashMap<RootId, Vec<Completion>> =
            std::collections::HashMap::new();
        for o in acker.drain_outcomes() {
            per_root.entry(o.root).or_default().push(o.completion);
        }
        per_root
    }

    #[test]
    fn full_tree_ack_spout_sees_exactly_one_ack() {
        // Three-level tree: root -> 2 children -> 2 grandchildren each.
        let mut a = Acker::new();
        let root = 11;
        let e_root = a.new_edge_id();
        a.track(root, e_root, TaskId(0), 77, 0.0);
        let children: Vec<u64> = (0..2).map(|_| a.new_edge_id()).collect();
        for &c in &children {
            a.on_emit(root, c);
        }
        a.on_ack(root, e_root, 0.1);
        let mut grandchildren = Vec::new();
        for &c in &children {
            for _ in 0..2 {
                let g = a.new_edge_id();
                a.on_emit(root, g);
                grandchildren.push(g);
            }
            a.on_ack(root, c, 0.2);
        }
        for &g in &grandchildren {
            a.on_ack(root, g, 0.3);
        }
        let per_root = outcomes_per_root(&mut a);
        assert_eq!(per_root.len(), 1);
        assert_eq!(per_root[&root], vec![Completion::Acked]);
        // Replayed late acks must not produce a second notification.
        a.on_ack(root, e_root, 0.4);
        assert!(a.drain_outcomes().is_empty());
    }

    #[test]
    fn explicit_fail_spout_sees_exactly_one_fail() {
        let mut a = Acker::new();
        let root = 21;
        let e_root = a.new_edge_id();
        a.track(root, e_root, TaskId(1), 5, 0.0);
        let child = a.new_edge_id();
        a.on_emit(root, child);
        a.on_fail(root, 0.5);
        // Everything after the fail is noise: acks of in-flight tuples of
        // the dead tree, even a second explicit fail.
        a.on_ack(root, e_root, 0.6);
        a.on_ack(root, child, 0.7);
        a.on_fail(root, 0.8);
        let per_root = outcomes_per_root(&mut a);
        assert_eq!(per_root.len(), 1);
        assert_eq!(per_root[&root], vec![Completion::Failed]);
    }

    #[test]
    fn timeout_then_replay_one_outcome_per_root() {
        let mut a = Acker::new();
        // Root 1 times out; the spout replays the message under a fresh
        // root id (root 2), which then completes.
        let e1 = a.new_edge_id();
        a.track(1, e1, TaskId(0), 99, 0.0);
        a.expire(10.0, 5.0);
        // Straggler ack for the expired tree arrives after the timeout.
        a.on_ack(1, e1, 10.5);
        let e2 = a.new_edge_id();
        a.track(2, e2, TaskId(0), 99, 11.0);
        a.on_ack(2, e2, 11.5);
        let per_root = outcomes_per_root(&mut a);
        assert_eq!(per_root.len(), 2);
        assert_eq!(per_root[&1], vec![Completion::TimedOut]);
        assert_eq!(per_root[&2], vec![Completion::Acked]);
        // Both outcomes carry the same message id: the spout keys replay
        // state off the message id, not the root.
        assert_eq!(a.pending_count(), 0);
    }

    #[test]
    fn anchored_fan_out_one_outcome_per_root() {
        // Two roots in flight at once; each fans out to 3 anchored copies
        // (e.g. all-grouping), interleaved acks.  Each root completes
        // exactly once, independently.
        let mut a = Acker::new();
        let mut edges: Vec<Vec<u64>> = Vec::new();
        for root in [31u64, 32] {
            let e_root = a.new_edge_id();
            a.track(root, e_root, TaskId(0), root, 0.0);
            let mut es = vec![e_root];
            for _ in 0..3 {
                let e = a.new_edge_id();
                a.on_emit(root, e);
                es.push(e);
            }
            edges.push(es);
        }
        // Interleave acks across the two trees.
        for i in 0..4 {
            a.on_ack(31, edges[0][i], 1.0 + i as f64);
            a.on_ack(32, edges[1][3 - i], 1.0 + i as f64);
        }
        let per_root = outcomes_per_root(&mut a);
        assert_eq!(per_root.len(), 2);
        assert_eq!(per_root[&31], vec![Completion::Acked]);
        assert_eq!(per_root[&32], vec![Completion::Acked]);
    }
}

//! Engine configuration shared by both runtimes.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Cluster and engine parameters.
///
/// Defaults match the reconstructed experimental setup in `DESIGN.md`:
/// 4 machines × 2 workers, 4 cores each, acking on, 30 s message timeout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of simulated machines in the cluster.
    pub num_machines: usize,
    /// Worker processes per machine.
    pub workers_per_machine: usize,
    /// CPU cores per machine (capacity of the interference model).
    pub machine_cores: usize,
    /// Whether the acker tracks tuple trees (reliability on/off).
    pub ack_enabled: bool,
    /// Seconds before an unacked tuple tree times out and is replayed.
    pub message_timeout_s: f64,
    /// Maximum spout tuple trees in flight per spout task before the spout
    /// is throttled (Storm's `topology.max.spout.pending`).
    ///
    /// This bound counts **tuple trees** and is independent of
    /// [`queue_capacity`](Self::queue_capacity), which counts **batches**
    /// queued at a single task: the two compose.  A spout can never have
    /// more than `max_spout_pending` trees unacked in total, while no
    /// single task's input queue can hold more than `queue_capacity`
    /// batches (further reduced by the credit window when
    /// `RtConfig::credit_flow` is on — see
    /// `RtConfig::effective_queue_bound` for the combined per-task figure
    /// in tuples).  Overload experiments that want the *queue-level*
    /// backpressure machinery to engage must raise this gate, or the
    /// in-flight cap throttles the spout first.
    pub max_spout_pending: usize,
    /// Length of one metrics interval (seconds); the control framework's
    /// sampling period.
    pub metrics_interval_s: f64,
    /// Bolt tick interval in seconds (0 disables ticks).
    pub tick_interval_s: f64,
    /// One-way tuple transfer latency between tasks in the same worker (µs).
    pub local_transfer_us: f64,
    /// One-way transfer latency between workers/machines (µs).
    pub remote_transfer_us: f64,
    /// Per-task input queue capacity; beyond this, backpressure throttles
    /// upstream spouts.
    pub queue_capacity: usize,
    /// Metrics snapshots retained in the in-memory history window (`0` =
    /// unbounded).  Both runtimes honour it: the simulator's
    /// [`run_until`](crate::sim::SimRuntime::run_until) history and the
    /// threaded runtime's metrics thread evict the oldest snapshot past this
    /// cap and journal a `history_truncated` event the first time it trips.
    pub metrics_history_cap: usize,
    /// Master RNG seed for workloads, jitter and placement tie-breaks.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_machines: 4,
            workers_per_machine: 2,
            machine_cores: 4,
            ack_enabled: true,
            message_timeout_s: 30.0,
            max_spout_pending: 512,
            metrics_interval_s: 1.0,
            tick_interval_s: 1.0,
            local_transfer_us: 20.0,
            remote_transfer_us: 300.0,
            queue_capacity: 2048,
            // Generous enough for every long-horizon experiment in the repo
            // (tens of minutes at 1 s intervals) while still bounding
            // multi-hour scenario sweeps.
            metrics_history_cap: 4096,
            seed: 42,
        }
    }
}

impl EngineConfig {
    /// Total number of workers in the cluster.
    pub fn num_workers(&self) -> usize {
        self.num_machines * self.workers_per_machine
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.num_machines == 0 {
            return Err(Error::Config("num_machines must be >= 1".into()));
        }
        if self.workers_per_machine == 0 {
            return Err(Error::Config("workers_per_machine must be >= 1".into()));
        }
        if self.machine_cores == 0 {
            return Err(Error::Config("machine_cores must be >= 1".into()));
        }
        if self.message_timeout_s <= 0.0 {
            return Err(Error::Config("message_timeout_s must be positive".into()));
        }
        if self.metrics_interval_s <= 0.0 {
            return Err(Error::Config("metrics_interval_s must be positive".into()));
        }
        if self.max_spout_pending == 0 {
            return Err(Error::Config("max_spout_pending must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(Error::Config("queue_capacity must be >= 1".into()));
        }
        if self.local_transfer_us < 0.0 || self.remote_transfer_us < 0.0 {
            return Err(Error::Config("transfer latencies must be >= 0".into()));
        }
        Ok(())
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the metrics-history retention window
    /// (`0` = unbounded).
    pub fn with_metrics_history_cap(mut self, cap: usize) -> Self {
        self.metrics_history_cap = cap;
        self
    }

    /// Builder-style setter for the cluster shape.
    pub fn with_cluster(
        mut self,
        machines: usize,
        workers_per_machine: usize,
        cores: usize,
    ) -> Self {
        self.num_machines = machines;
        self.workers_per_machine = workers_per_machine;
        self.machine_cores = cores;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = EngineConfig::default();
        c.validate().unwrap();
        assert_eq!(c.num_workers(), 8);
    }

    #[test]
    fn validation_catches_each_zero() {
        let base = EngineConfig::default();
        let mut c = base.clone();
        c.num_machines = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.workers_per_machine = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.machine_cores = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.message_timeout_s = 0.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.metrics_interval_s = -1.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.max_spout_pending = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.queue_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.remote_transfer_us = -5.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::default()
            .with_seed(7)
            .with_cluster(2, 3, 8)
            .with_metrics_history_cap(64);
        assert_eq!(c.seed, 7);
        assert_eq!(c.num_workers(), 6);
        assert_eq!(c.machine_cores, 8);
        assert_eq!(c.metrics_history_cap, 64);
    }

    #[test]
    fn serde_round_trip() {
        let c = EngineConfig::default().with_seed(123);
        let s = serde_json::to_string(&c).unwrap();
        let back: EngineConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}

//! Spout and bolt thread loops.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::acker::Completion;
use crate::component::{Bolt, BoltOutput, Spout, SpoutOutput, TopologyContext};
use crate::config::EngineConfig;
use crate::topology::TaskId;

use super::batch::{AckMsg, AckOp, AckOps, Delivered};
use super::router::Router;
use super::Shared;

/// Cumulative per-task counters (written by the task thread, read by the
/// metrics thread).
#[derive(Default)]
pub(crate) struct TaskAtomics {
    pub(super) executed: AtomicU64,
    pub(super) emitted: AtomicU64,
    pub(super) failed: AtomicU64,
    pub(super) busy_nanos: AtomicU64,
    pub(super) queue_len: AtomicUsize,
    /// Output batches flushed downstream.
    pub(super) batches_flushed: AtomicU64,
    /// Of those, flushes triggered by the linger deadline rather than a full
    /// buffer.
    pub(super) linger_flushes: AtomicU64,
}

/// Drains completed trees (timeouts are handled by the metrics thread).
pub(super) fn drain_acker_outcomes(shared: &Shared, ack_senders: &[Option<Sender<Vec<AckMsg>>>]) {
    let outcomes = shared.acker.lock().drain_outcomes();
    deliver_outcomes(shared, ack_senders, outcomes);
}

/// Updates totals/latency for completed trees and notifies spouts, one
/// batched message per spout per drain.
pub(super) fn deliver_outcomes(
    shared: &Shared,
    ack_senders: &[Option<Sender<Vec<AckMsg>>>],
    outcomes: Vec<crate::acker::TreeOutcome>,
) {
    if outcomes.is_empty() {
        return;
    }
    let mut per_spout: Vec<(usize, Vec<AckMsg>)> = Vec::new();
    for o in outcomes {
        let spout = o.spout_task.0;
        shared.pending[spout].fetch_sub(1, Ordering::Relaxed);
        let latency_us = o.complete_latency() * 1e6;
        let msg = match o.completion {
            Completion::Acked => {
                shared.acked_total.fetch_add(1, Ordering::Relaxed);
                let mut lat = shared.complete_us.lock();
                lat.0.update(latency_us);
                lat.1.record(latency_us);
                AckMsg::Ack(o.message_id)
            }
            Completion::Failed => {
                shared.failed_total.fetch_add(1, Ordering::Relaxed);
                AckMsg::Fail(o.message_id)
            }
            Completion::TimedOut => {
                shared.timed_out_total.fetch_add(1, Ordering::Relaxed);
                AckMsg::Fail(o.message_id)
            }
        };
        match per_spout.iter_mut().find(|(s, _)| *s == spout) {
            Some((_, msgs)) => msgs.push(msg),
            None => per_spout.push((spout, vec![msg])),
        }
    }
    for (spout, msgs) in per_spout {
        if let Some(tx) = &ack_senders[spout] {
            let _ = tx.send(msgs);
        }
    }
}

/// Body of a spout thread.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_spout(
    mut spout: Box<dyn Spout>,
    ctx: TopologyContext,
    tid: usize,
    mut router: Router,
    shared: Arc<Shared>,
    ack_senders: Arc<Vec<Option<Sender<Vec<AckMsg>>>>>,
    ack_rx: Receiver<Vec<AckMsg>>,
    cfg: EngineConfig,
) {
    spout.open(&ctx);
    let mut out = SpoutOutput::new();
    let mut ops = AckOps::default();
    while !shared.stop.load(Ordering::Relaxed) {
        // Deliver ack/fail feedback first.
        while let Ok(batch) = ack_rx.try_recv() {
            for msg in batch {
                match msg {
                    AckMsg::Ack(id) => spout.ack(id),
                    AckMsg::Fail(id) => spout.fail(id),
                }
            }
        }
        if cfg.ack_enabled && shared.pending[tid].load(Ordering::Relaxed) >= cfg.max_spout_pending {
            // Keep buffered output moving while throttled, or the in-flight
            // count can never drain.
            router.flush_expired(Instant::now(), &mut ops);
            drain_acker_outcomes(&shared, &ack_senders);
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        out.set_now(shared.now_s());
        let t0 = Instant::now();
        let keep = spout.next_tuple(&mut out);
        let emissions = out.drain();
        if emissions.is_empty() {
            if !keep {
                break;
            }
            router.flush_expired(Instant::now(), &mut ops);
            std::thread::sleep(Duration::from_micros(500));
            continue;
        }
        let n = emissions.len() as u64;
        for emission in emissions {
            let root = match emission.message_id {
                Some(message_id) if cfg.ack_enabled => {
                    let root = shared.next_root.fetch_add(1, Ordering::Relaxed) + 1;
                    ops.push(AckOp::Track {
                        root,
                        spout_task: TaskId(tid),
                        message_id,
                        now_s: shared.now_s(),
                    });
                    shared.pending[tid].fetch_add(1, Ordering::Relaxed);
                    Some(root)
                }
                _ => None,
            };
            let delivered = router.route(&emission, root, &mut ops);
            if delivered == 0 {
                if let Some(root) = root {
                    // Nothing subscribed: complete the tree immediately.
                    ops.push(AckOp::Ack {
                        root,
                        edge: 0,
                        now_s: shared.now_s(),
                    });
                }
            }
        }
        shared.spout_emitted_total.fetch_add(n, Ordering::Relaxed);
        let s = &shared.task_stats[tid];
        s.executed.fetch_add(n, Ordering::Relaxed);
        s.busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        router.flush_expired(Instant::now(), &mut ops);
        ops.apply(&shared);
        drain_acker_outcomes(&shared, &ack_senders);
        if !keep {
            break;
        }
    }
    router.flush_all(&mut ops);
    ops.apply(&shared);
    drain_acker_outcomes(&shared, &ack_senders);
    spout.close();
}

/// Body of a bolt thread.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_bolt(
    mut bolt: Box<dyn Bolt>,
    ctx: TopologyContext,
    tid: usize,
    mut router: Router,
    shared: Arc<Shared>,
    ack_senders: Arc<Vec<Option<Sender<Vec<AckMsg>>>>>,
    rx: Receiver<Vec<Delivered>>,
    cfg: EngineConfig,
) {
    bolt.prepare(&ctx);
    let mut out = BoltOutput::new();
    let mut ops = AckOps::default();
    let tick = if cfg.tick_interval_s > 0.0 {
        Duration::from_secs_f64(cfg.tick_interval_s)
    } else {
        Duration::from_millis(100)
    };
    let ticks_enabled = cfg.tick_interval_s > 0.0;
    let mut last_tick = Instant::now();
    let base_timeout = Duration::from_millis(20);
    loop {
        // Wake in time to honor pending linger deadlines.
        let timeout = match router.next_deadline() {
            Some(d) => base_timeout.min(d.saturating_duration_since(Instant::now())),
            None => base_timeout,
        };
        match rx.recv_timeout(timeout) {
            Ok(batch) => {
                shared.task_stats[tid]
                    .queue_len
                    .store(rx.len(), Ordering::Relaxed);
                for delivered in batch {
                    out.set_now(shared.now_s());
                    let t0 = Instant::now();
                    bolt.execute(&delivered.tuple, &mut out);
                    let busy = t0.elapsed().as_nanos() as u64;
                    let (emissions, failed) = out.drain();
                    let root = delivered.anchor.map(|(r, _)| r);
                    for emission in &emissions {
                        let anchor = if emission.anchored { root } else { None };
                        router.route(emission, anchor, &mut ops);
                    }
                    if let Some((root, edge)) = delivered.anchor {
                        if failed {
                            ops.push(AckOp::Fail {
                                root,
                                now_s: shared.now_s(),
                            });
                        } else {
                            ops.push(AckOp::Ack {
                                root,
                                edge,
                                now_s: shared.now_s(),
                            });
                        }
                    }
                    let s = &shared.task_stats[tid];
                    s.executed.fetch_add(1, Ordering::Relaxed);
                    s.busy_nanos.fetch_add(busy, Ordering::Relaxed);
                    if failed {
                        s.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                router.flush_expired(Instant::now(), &mut ops);
                ops.apply(&shared);
                drain_acker_outcomes(&shared, &ack_senders);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                if router.has_pending() || !ops.is_empty() {
                    router.flush_expired(Instant::now(), &mut ops);
                    ops.apply(&shared);
                    drain_acker_outcomes(&shared, &ack_senders);
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if ticks_enabled && last_tick.elapsed() >= tick {
            last_tick = Instant::now();
            out.set_now(shared.now_s());
            bolt.tick(&mut out);
            let (emissions, _) = out.drain();
            for emission in &emissions {
                router.route(emission, None, &mut ops);
            }
        }
    }
    router.flush_all(&mut ops);
    ops.apply(&shared);
    drain_acker_outcomes(&shared, &ack_senders);
    bolt.cleanup();
}

//! Spout and bolt thread loops.
//!
//! Every loop iteration stores a heartbeat and checks its generation
//! against the task slot's current one: the supervisor bumps the generation
//! when it supersedes a hung thread, and the superseded thread exits
//! silently at the next check without touching the slot's liveness flags.
//! Scheduled faults (panic / hang / drop / slowdown) are consulted from
//! [`Shared::fault`] so both loops misbehave on cue; see
//! [`fault`](super::fault) for the exact semantics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::acker::Completion;
use crate::component::{
    Bolt, BoltOutput, Emission, MessageId, Spout, SpoutOutput, TopologyContext,
};
use crate::config::EngineConfig;
use crate::hash::FxHashSet;
use crate::telemetry::{trace::trace_id, JournalEvent, SpanKind};
use crate::topology::TaskId;

use super::batch::{AckMsg, AckOp, AckOps, Batch};
use super::checkpoint::{LoggedInput, RecoveryMode};
use super::fault::SLOWDOWN_FLOOR_NANOS;
use super::replay::FailDecision;
use super::router::Router;
use super::Shared;

/// Cumulative per-task counters (written by the task thread, read by the
/// metrics and supervisor threads).
#[derive(Default)]
pub(crate) struct TaskAtomics {
    pub(super) executed: AtomicU64,
    pub(super) emitted: AtomicU64,
    pub(super) failed: AtomicU64,
    pub(super) busy_nanos: AtomicU64,
    pub(super) queue_len: AtomicUsize,
    /// Output batches flushed downstream.
    pub(super) batches_flushed: AtomicU64,
    /// Of those, flushes triggered by the linger deadline rather than a full
    /// buffer.
    pub(super) linger_flushes: AtomicU64,
    /// Tuples delivered into the task (bolts; spouts count ack feedback
    /// elsewhere).
    pub(super) received: AtomicU64,
    /// Panics caught in this task slot (any generation).
    pub(super) panics: AtomicU64,
    /// Supervisor restarts of this task slot.
    pub(super) restarts: AtomicU64,
    /// Nanoseconds since runtime start at the last loop iteration — the
    /// liveness heartbeat.
    pub(super) heartbeat_ns: AtomicU64,
    /// Generation of the thread currently owning the slot; stale threads
    /// observe a mismatch and retire.
    pub(super) generation: AtomicU64,
    /// Thread running (set by the spawner, cleared on exit by the current
    /// generation only).
    pub(super) alive: AtomicBool,
    /// Task body returned normally (spout exhausted / shutdown) — not a
    /// crash, so the supervisor must not restart it.
    pub(super) finished: AtomicBool,
    /// Message of the most recent caught panic.
    pub(super) last_panic: Mutex<Option<String>>,
    /// Checkpoints deposited by this task slot (any generation).
    pub(super) checkpoints_taken: AtomicU64,
    /// Snapshot restores performed by restarted generations of this slot.
    pub(super) restores: AtomicU64,
    /// Serialized snapshot bytes deposited by this slot.
    pub(super) snapshot_bytes: AtomicU64,
}

/// Applies queued acker ops and delivers whatever outcomes they completed.
/// `lat_slot` is the caller's private latency slot (its task id, or the
/// metrics slot) — see [`Shared::latency`].
pub(super) fn apply_and_deliver(
    shared: &Shared,
    ack_senders: &[Option<Sender<Vec<AckMsg>>>],
    ops: &mut AckOps,
    lat_slot: usize,
) {
    ops.apply(shared);
    if ops.has_outcomes() {
        deliver_outcomes(shared, ack_senders, ops.take_outcomes(), lat_slot);
    }
}

/// Updates totals/latency for completed trees and notifies spouts, one
/// batched message per spout per drain.  Latency samples land in the
/// caller's own `lat_slot` so concurrent callers never contend on a shared
/// stats lock.
pub(super) fn deliver_outcomes(
    shared: &Shared,
    ack_senders: &[Option<Sender<Vec<AckMsg>>>],
    outcomes: Vec<crate::acker::TreeOutcome>,
    lat_slot: usize,
) {
    if outcomes.is_empty() {
        return;
    }
    let replaying = shared.replay_on;
    let trace_on = shared.tracer.enabled();
    // Lock the (uncontended) slot once for the whole batch, and only when a
    // completion actually carries a latency sample.
    let mut lat = None;
    let mut per_spout: Vec<(usize, Vec<AckMsg>)> = Vec::new();
    for o in outcomes {
        let spout = o.spout_task.0;
        shared.pending[spout].fetch_sub(1, Ordering::Relaxed);
        let latency_us = o.complete_latency() * 1e6;
        if trace_on && shared.tracer.sampled(o.root) {
            let kind = match o.completion {
                Completion::Acked => SpanKind::Ack,
                Completion::Failed => SpanKind::Fail,
                Completion::TimedOut => SpanKind::Timeout,
            };
            shared.tracer.record_terminal(
                lat_slot,
                o.root,
                kind,
                spout,
                (o.completed_at * 1e6) as u64,
                latency_us.max(0.0) as u64,
                o.message_id,
            );
        }
        let msg = match o.completion {
            Completion::Acked => {
                shared.acked_total.fetch_add(1, Ordering::Relaxed);
                let lat = lat.get_or_insert_with(|| shared.latency[lat_slot].lock());
                lat.0.update(latency_us);
                lat.1.record(latency_us);
                AckMsg::Ack(o.message_id)
            }
            Completion::Failed => {
                shared.failed_total.fetch_add(1, Ordering::Relaxed);
                if !replaying {
                    shared.perm_failed_total.fetch_add(1, Ordering::Relaxed);
                }
                AckMsg::Fail(o.message_id)
            }
            Completion::TimedOut => {
                shared.timed_out_total.fetch_add(1, Ordering::Relaxed);
                if !replaying {
                    shared.perm_failed_total.fetch_add(1, Ordering::Relaxed);
                }
                AckMsg::Fail(o.message_id)
            }
        };
        match per_spout.iter_mut().find(|(s, _)| *s == spout) {
            Some((_, msgs)) => msgs.push(msg),
            None => per_spout.push((spout, vec![msg])),
        }
    }
    drop(lat);
    for (spout, msgs) in per_spout {
        if let Some(tx) = &ack_senders[spout] {
            let _ = tx.send(msgs);
        }
    }
}

/// Fires scheduled panic/hang faults for this task.  Returns `false` when
/// the thread was superseded while hanging and must exit.
fn inject_control_faults(shared: &Shared, tid: usize, my_gen: u64) -> bool {
    let Some(inj) = shared.fault.as_ref() else {
        return true;
    };
    let now = shared.now_s();
    if inj.take_panic(tid, now) {
        // Journal before unwinding; parking_lot mutexes do not poison, so
        // the journal stays usable after the panic is caught.
        shared.journal.append(JournalEvent::FaultInjected {
            time_s: now,
            task: tid,
            kind: "panic".to_string(),
        });
        panic!("injected fault: panic in task {tid} at {now:.3}s");
    }
    if let Some(until_s) = inj.take_hang(tid, now) {
        shared.journal.append(JournalEvent::FaultInjected {
            time_s: now,
            task: tid,
            kind: "hang".to_string(),
        });
        // Hang: no heartbeats, no progress — until the window closes, the
        // supervisor supersedes this thread, or shutdown.
        while !shared.stop.load(Ordering::Relaxed)
            && !shared.superseded(tid, my_gen)
            && shared.now_s() < until_s
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        return !shared.superseded(tid, my_gen);
    }
    true
}

/// Busy-spins out the extra service time of an active worker slowdown, so
/// the injected degradation burns CPU and is visible in execute latency.
fn inject_service_slowdown(shared: &Shared, tid: usize, t0: Instant) {
    let Some(inj) = shared.fault.as_ref() else {
        return;
    };
    let factor = inj.slowdown_factor(tid, shared.now_s());
    if factor <= 1.0 {
        return;
    }
    let base = t0.elapsed().max(Duration::from_nanos(SLOWDOWN_FLOOR_NANOS));
    let spin_until = Instant::now() + base.mul_f64(factor - 1.0);
    while Instant::now() < spin_until && !shared.stop.load(Ordering::Relaxed) {
        std::hint::spin_loop();
    }
}

/// Spout message ids remembered for exactly-once replay dedup; FIFO-evicted
/// above this bound so the set cannot grow without limit.
const DEDUP_CAP: usize = 65_536;

/// Per-incarnation checkpoint bookkeeping of one stateful bolt thread.
struct CkptState {
    /// Checkpoints deposited this incarnation (0 ⇒ the next one is full).
    count: u64,
    /// When the previous checkpoint was taken (or the incarnation started).
    last: Instant,
    /// Input-log length at the store (exactly-once), for the high-water
    /// trigger between interval ticks.
    log_len: usize,
    /// Recently applied spout message ids in insertion order (exactly-once
    /// dedup); the set mirrors the FIFO for O(1) membership.
    dedup_fifo: VecDeque<MessageId>,
    dedup_set: FxHashSet<MessageId>,
    /// Acks withheld until the next snapshot deposit (at-least-once /
    /// approximate alignment: a tuple is only acked once its effect is
    /// durable, so a crash replays everything after the snapshot).
    deferred_acks: Vec<AckOp>,
}

impl CkptState {
    fn new() -> Self {
        CkptState {
            count: 0,
            last: Instant::now(),
            log_len: 0,
            dedup_fifo: VecDeque::new(),
            dedup_set: FxHashSet::default(),
            deferred_acks: Vec::new(),
        }
    }

    /// True when `id` was already applied by this bolt (before or after the
    /// most recent restart).
    fn seen(&self, id: MessageId) -> bool {
        self.dedup_set.contains(&id)
    }

    /// Remembers an applied spout message id, evicting the oldest above
    /// [`DEDUP_CAP`].
    fn remember(&mut self, id: MessageId) {
        if self.dedup_set.insert(id) {
            self.dedup_fifo.push_back(id);
            if self.dedup_fifo.len() > DEDUP_CAP {
                if let Some(old) = self.dedup_fifo.pop_front() {
                    self.dedup_set.remove(&old);
                }
            }
        }
    }
}

/// Takes one checkpoint of a stateful bolt when the interval (or the
/// exactly-once input-log high-water mark, or `force`) says it is due, then
/// releases the acks deferred since the previous snapshot into `ops`.  The
/// snapshot is full every [`RtConfig::checkpoint_full_every`](super::RtConfig)
/// deposits (and always on the first of an incarnation, or when the
/// component has no delta to offer); otherwise an incremental delta.
fn maybe_checkpoint(
    bolt: &mut dyn Bolt,
    shared: &Shared,
    tid: usize,
    my_gen: u64,
    ck: &mut CkptState,
    ops: &mut AckOps,
    force: bool,
) {
    let Some(store) = shared.checkpoints.as_ref() else {
        return;
    };
    let due = force
        || ck.last.elapsed() >= shared.rt.checkpoint_interval
        || ck.log_len >= shared.rt.checkpoint_log_high_water;
    if !due {
        return;
    }
    let Some(sc) = bolt.stateful() else {
        return;
    };
    let t0 = Instant::now();
    let taken_at_s = shared.now_s();
    let want_full = ck
        .count
        .is_multiple_of(shared.rt.checkpoint_full_every as u64);
    let (snap, is_full) = if want_full {
        (sc.snapshot(), true)
    } else {
        match sc.delta() {
            Some(d) => (d, false),
            None => (sc.snapshot(), true),
        }
    };
    let bytes = snap.len() as u64;
    let dedup: Vec<MessageId> = ck.dedup_fifo.iter().copied().collect();
    let deposited = if is_full {
        store.deposit_full(tid, my_gen, taken_at_s, snap, dedup)
    } else {
        store.deposit_delta(tid, my_gen, taken_at_s, snap, dedup)
    };
    ck.last = Instant::now();
    if deposited.is_none() {
        // Superseded mid-checkpoint: a newer generation owns the entry.  The
        // deferred acks die with this thread; the unacked trees time out and
        // replay against the successor, which is the deferral contract.
        return;
    }
    ck.count += 1;
    ck.log_len = 0;
    let duration_us = t0.elapsed().as_micros() as u64;
    let s = &shared.task_stats[tid];
    s.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
    s.snapshot_bytes.fetch_add(bytes, Ordering::Relaxed);
    shared
        .checkpoint_last_us
        .store(duration_us, Ordering::Relaxed);
    shared.journal.append(JournalEvent::CheckpointTaken {
        time_s: taken_at_s,
        task: tid,
        generation: my_gen,
        kind: if is_full { "full" } else { "delta" }.to_string(),
        bytes,
        duration_us,
    });
    for op in ck.deferred_acks.drain(..) {
        ops.push(op);
    }
}

/// Restores a restarted stateful bolt from the checkpoint store.
///
/// Journals `state_restored` on success and `state_lost` when no usable
/// snapshot (or exactly-once input log) exists.  Exactly-once restores
/// rebuild the replay-dedup set and re-execute the logged post-snapshot
/// inputs with their emissions discarded (the originals already routed
/// downstream before the crash); approximate restores instead doom every
/// replay tracked before the snapshot and report the skips as the error
/// bound.
#[allow(clippy::too_many_arguments)]
fn restore_state(
    bolt: &mut dyn Bolt,
    shared: &Shared,
    tid: usize,
    my_gen: u64,
    mode: RecoveryMode,
    ck: &mut CkptState,
    out: &mut BoltOutput,
    emis: &mut Vec<Emission>,
) {
    let t0 = Instant::now();
    let restored = shared
        .checkpoints
        .as_ref()
        .and_then(|store| store.load(tid, my_gen));
    let Some(r) = restored else {
        shared.journal.append(JournalEvent::StateLost {
            time_s: shared.now_s(),
            task: tid,
            generation: my_gen,
            snapshot_age_s: None,
        });
        return;
    };
    if let Some(base) = r.base.as_ref() {
        let ok = bolt
            .stateful()
            .is_some_and(|sc| sc.restore(base, &r.deltas).is_ok());
        if !ok {
            // A snapshot that fails to decode is as good as no snapshot:
            // report the loss and run factory-fresh.
            shared.journal.append(JournalEvent::StateLost {
                time_s: shared.now_s(),
                task: tid,
                generation: my_gen,
                snapshot_age_s: r.taken_at_s.map(|t| (shared.now_s() - t).max(0.0)),
            });
            return;
        }
    }
    match mode {
        RecoveryMode::ExactlyOnceEffect => {
            for id in &r.dedup {
                ck.remember(*id);
            }
            for li in &r.input_log {
                out.set_now(li.now_s);
                bolt.execute(&li.tuple, out);
                let _ = out.drain_into(emis);
                emis.clear();
                if let Some(id) = li.dedup {
                    ck.remember(id);
                }
            }
        }
        RecoveryMode::AtLeastOnce => {}
        RecoveryMode::Approximate => {
            if let Some(cut) = r.taken_at_s {
                let mut skipped = 0usize;
                for buf in shared.replay.iter() {
                    skipped += buf.lock().doom_tracked_before(cut);
                }
                if skipped > 0 {
                    shared
                        .approx_skipped_total
                        .fetch_add(skipped as u64, Ordering::Relaxed);
                    shared
                        .perm_failed_total
                        .fetch_add(skipped as u64, Ordering::Relaxed);
                }
            }
        }
    }
    let latency_us = t0.elapsed().as_micros() as u64;
    shared.restore_last_us.store(latency_us, Ordering::Relaxed);
    shared.task_stats[tid]
        .restores
        .fetch_add(1, Ordering::Relaxed);
    shared.journal.append(JournalEvent::StateRestored {
        time_s: shared.now_s(),
        task: tid,
        generation: my_gen,
        snapshot_age_s: r.taken_at_s.map(|t| (shared.now_s() - t).max(0.0)),
        latency_us,
    });
}

/// Handles one batch of ack/fail feedback at a spout, consulting the replay
/// buffer when replay is enabled.
#[allow(clippy::borrowed_box)]
fn spout_handle_feedback(
    spout: &mut Box<dyn Spout>,
    shared: &Shared,
    tid: usize,
    batch: Vec<AckMsg>,
) {
    for msg in batch {
        match msg {
            AckMsg::Ack(id) => {
                if shared.replay_on {
                    shared.replay[tid].lock().on_ack(id);
                }
                spout.ack(id);
            }
            AckMsg::Fail(id) => {
                if !shared.replay_on {
                    spout.fail(id);
                    continue;
                }
                let decision = shared.replay[tid].lock().on_fail(
                    id,
                    shared.rt.max_replays,
                    shared.rt.replay_backoff,
                    Instant::now(),
                );
                match decision {
                    FailDecision::Scheduled { attempt, delay } => {
                        shared.journal.append(JournalEvent::ReplayScheduled {
                            time_s: shared.now_s(),
                            message_id: id,
                            attempt,
                            delay_ms: delay.as_secs_f64() * 1e3,
                        });
                    }
                    FailDecision::Exhausted { attempts } => {
                        shared.journal.append(JournalEvent::ReplayExhausted {
                            time_s: shared.now_s(),
                            message_id: id,
                            attempts,
                        });
                        shared.perm_failed_total.fetch_add(1, Ordering::Relaxed);
                        spout.fail(id);
                    }
                    FailDecision::Untracked => spout.fail(id),
                    FailDecision::Doomed => {
                        // Approximate recovery skipped this pre-snapshot
                        // tree: permanently failed for conservation, but not
                        // surfaced to user code — the skip is the reported
                        // error bound.
                        shared.perm_failed_total.fetch_add(1, Ordering::Relaxed);
                        shared.approx_skipped_total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// Re-emits every replay whose backoff has elapsed, as fresh tuple trees.
fn spout_emit_due_replays(shared: &Shared, tid: usize, router: &mut Router, ops: &mut AckOps) {
    let due = shared.replay[tid].lock().take_due(Instant::now());
    let now_s = shared.now_s();
    let trace_on = shared.tracer.enabled();
    let dedup_on =
        shared.rt.checkpoints && shared.rt.recovery_mode == RecoveryMode::ExactlyOnceEffect;
    for (message_id, emission, attempt) in due {
        let root = shared.next_root.fetch_add(1, Ordering::Relaxed) + 1;
        ops.push(AckOp::Track {
            root,
            spout_task: TaskId(tid),
            message_id,
            now_s,
        });
        shared.pending[tid].fetch_add(1, Ordering::Relaxed);
        shared.replayed_total.fetch_add(1, Ordering::Relaxed);
        shared.journal.append(JournalEvent::ReplayEmitted {
            time_s: now_s,
            message_id,
            attempt,
            root,
            trace_id: trace_id(root),
        });
        if trace_on && shared.tracer.sampled(root) {
            shared
                .tracer
                .record_emit(tid, root, tid, shared.now_us(), attempt, message_id);
        }
        if dedup_on {
            router.dedup_next = Some(message_id);
        }
        let delivered = router.route(emission.as_ref(), Some(root), ops);
        if delivered == 0 {
            ops.push(AckOp::Ack {
                root,
                edge: 0,
                now_s,
            });
        }
    }
}

/// Body of a spout thread.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_spout(
    mut spout: Box<dyn Spout>,
    ctx: TopologyContext,
    tid: usize,
    my_gen: u64,
    mut router: Router,
    shared: Arc<Shared>,
    ack_senders: Arc<Vec<Option<Sender<Vec<AckMsg>>>>>,
    ack_rx: Receiver<Vec<AckMsg>>,
    cfg: EngineConfig,
) {
    spout.open(&ctx);
    let mut out = SpoutOutput::new();
    let mut emis = Vec::new();
    let mut ops = AckOps::new(shared.ackers.num_shards());
    let replay_on = shared.replay_on;
    let trace_on = shared.tracer.enabled();
    let dedup_on =
        shared.rt.checkpoints && shared.rt.recovery_mode == RecoveryMode::ExactlyOnceEffect;
    if my_gen > 0 && shared.rt.checkpoints {
        // Spouts are rebuilt from their factory on every restart — only the
        // replay buffer (which lives in `Shared`) survives.  Report the
        // instance-state loss so recovery audits see every restart path,
        // including hang supersession.
        shared.journal.append(JournalEvent::StateLost {
            time_s: shared.now_s(),
            task: tid,
            generation: my_gen,
            snapshot_age_s: None,
        });
    }
    // Once the spout exhausts its input it stays alive (draining acks and
    // replaying lost trees) until the replay buffer empties or shutdown.
    let mut exhausted = false;
    // Token bucket enforcing the global spout rate cap (tuples/s).  The cap
    // is INFINITY unless the AIMD loop, the controller, or a
    // `BackpressureHandle` set one; tokens may go negative (debt) so a
    // multi-tuple `next_tuple` is charged in full.
    let mut tokens: f64 = 0.0;
    let mut last_refill = Instant::now();
    while !shared.stop.load(Ordering::Relaxed) {
        shared.beat(tid);
        if shared.superseded(tid, my_gen) {
            return;
        }
        if !inject_control_faults(&shared, tid, my_gen) {
            return;
        }
        // Deliver ack/fail feedback first.
        while let Ok(batch) = ack_rx.try_recv() {
            spout_handle_feedback(&mut spout, &shared, tid, batch);
        }
        if replay_on {
            spout_emit_due_replays(&shared, tid, &mut router, &mut ops);
        }
        if exhausted {
            // Stay alive until every tree this spout tracked has resolved:
            // with replay on, until the replay buffer empties; without it,
            // until the in-flight count drains (acks, fails and timeouts all
            // land as feedback the spout must still deliver to user code).
            let drained = if replay_on {
                shared.replay[tid].lock().is_empty()
            } else {
                !cfg.ack_enabled || shared.pending[tid].load(Ordering::Relaxed) == 0
            };
            if drained {
                break;
            }
            router.flush_expired(Instant::now(), &mut ops);
            apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
            // Sleep until the next scheduled replay (bounded so timeouts and
            // shutdown are still noticed promptly).
            let nap =
                shared.replay[tid]
                    .lock()
                    .next_due()
                    .map_or(Duration::from_micros(500), |due| {
                        due.saturating_duration_since(Instant::now())
                            .clamp(Duration::from_micros(100), Duration::from_millis(5))
                    });
            std::thread::sleep(nap);
            continue;
        }
        if cfg.ack_enabled && shared.pending[tid].load(Ordering::Relaxed) >= cfg.max_spout_pending {
            // Keep buffered output moving while throttled, or the in-flight
            // count can never drain.
            router.flush_expired(Instant::now(), &mut ops);
            apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        let cap = shared.rate_cap();
        if cap.is_finite() {
            let now = Instant::now();
            let dt = now.duration_since(last_refill).as_secs_f64();
            last_refill = now;
            let burst = (cap * 0.02).max(8.0);
            tokens = (tokens + cap * dt).min(burst);
            if tokens < 1.0 {
                router.flush_expired(Instant::now(), &mut ops);
                apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
                // Sleep roughly until the next token accrues.
                let wait_s = ((1.0 - tokens) / cap).clamp(50e-6, 2e-3);
                std::thread::sleep(Duration::from_secs_f64(wait_s));
                continue;
            }
        } else {
            // Uncapped: keep the bucket neutral so a later cap does not
            // inherit stale debt or a huge refill window.
            tokens = 0.0;
            last_refill = Instant::now();
        }
        let now_s = shared.now_s();
        out.set_now(now_s);
        let t0 = Instant::now();
        let keep = spout.next_tuple(&mut out);
        out.drain_into(&mut emis);
        if emis.is_empty() {
            if !keep {
                exhausted = true;
                continue;
            }
            // Replays queued above may have left ops (and, once applied,
            // outcomes) behind even though next_tuple produced nothing.
            router.flush_expired(Instant::now(), &mut ops);
            apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
            std::thread::sleep(Duration::from_micros(500));
            continue;
        }
        let n = emis.len() as u64;
        for emission in emis.drain(..) {
            let tracked = match emission.message_id {
                Some(message_id) if cfg.ack_enabled => {
                    let root = shared.next_root.fetch_add(1, Ordering::Relaxed) + 1;
                    ops.push(AckOp::Track {
                        root,
                        spout_task: TaskId(tid),
                        message_id,
                        now_s,
                    });
                    shared.pending[tid].fetch_add(1, Ordering::Relaxed);
                    if !replay_on {
                        shared.tracked_total.fetch_add(1, Ordering::Relaxed);
                    }
                    Some((root, message_id))
                }
                _ => None,
            };
            let root = tracked.map(|(root, _)| root);
            if let Some((root, message_id)) = tracked {
                if trace_on && shared.tracer.sampled(root) {
                    shared
                        .tracer
                        .record_emit(tid, root, tid, shared.now_us(), 0, message_id);
                }
            }
            if dedup_on {
                router.dedup_next = tracked.map(|(_, id)| id);
            }
            let delivered = router.route(&emission, root, &mut ops);
            if delivered == 0 {
                if let Some(root) = root {
                    // Nothing subscribed: complete the tree immediately.
                    ops.push(AckOp::Ack {
                        root,
                        edge: 0,
                        now_s,
                    });
                }
            }
            if replay_on {
                if let Some((_, message_id)) = tracked {
                    // Routing is done with the emission, so it moves into the
                    // replay cache instead of being cloned.  Feedback for
                    // this id is handled by this same thread on a later
                    // iteration, so caching after routing cannot race an ack.
                    let fresh =
                        shared.replay[tid]
                            .lock()
                            .on_track(message_id, Arc::new(emission), now_s);
                    if fresh {
                        shared.tracked_total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        inject_service_slowdown(&shared, tid, t0);
        tokens -= n as f64;
        shared.spout_emitted_total.fetch_add(n, Ordering::Relaxed);
        let s = &shared.task_stats[tid];
        s.executed.fetch_add(n, Ordering::Relaxed);
        s.busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        router.flush_expired(Instant::now(), &mut ops);
        apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
        if !keep {
            exhausted = true;
        }
    }
    router.flush_all(&mut ops);
    apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
    spout.close();
}

/// Body of a bolt thread.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_bolt(
    mut bolt: Box<dyn Bolt>,
    ctx: TopologyContext,
    tid: usize,
    my_gen: u64,
    mut router: Router,
    shared: Arc<Shared>,
    ack_senders: Arc<Vec<Option<Sender<Vec<AckMsg>>>>>,
    rx: Receiver<Batch>,
    cfg: EngineConfig,
) {
    bolt.prepare(&ctx);
    let mut out = BoltOutput::new();
    let mut emis = Vec::new();
    let mut ops = AckOps::new(shared.ackers.num_shards());
    // Checkpoint wiring: all of it is compiled-in but `ckpt_on` is false
    // unless this bolt is stateful *and* checkpointing is configured, so
    // stock runs never touch the store.
    let is_stateful = bolt.stateful().is_some();
    let ckpt_on = is_stateful && shared.checkpoints.is_some();
    let mode = shared.rt.recovery_mode;
    let log_on = ckpt_on && mode == RecoveryMode::ExactlyOnceEffect;
    let defer_acks =
        ckpt_on && matches!(mode, RecoveryMode::AtLeastOnce | RecoveryMode::Approximate);
    let mut ck = CkptState::new();
    let mut pending_log: Vec<LoggedInput> = Vec::new();
    if my_gen > 0 && shared.rt.checkpoints {
        if is_stateful {
            restore_state(
                &mut *bolt, &shared, tid, my_gen, mode, &mut ck, &mut out, &mut emis,
            );
        } else {
            // Stateless bolts are rebuilt from the factory; journal the loss
            // so every restart path is audited.
            shared.journal.append(JournalEvent::StateLost {
                time_s: shared.now_s(),
                task: tid,
                generation: my_gen,
                snapshot_age_s: None,
            });
        }
    }
    let tick = if cfg.tick_interval_s > 0.0 {
        Duration::from_secs_f64(cfg.tick_interval_s)
    } else {
        Duration::from_millis(100)
    };
    let ticks_enabled = cfg.tick_interval_s > 0.0;
    let mut last_tick = Instant::now();
    let base_timeout = Duration::from_millis(20);
    let trace_on = shared.tracer.enabled();
    // Sequence number of delivered batches within this task, stamped into
    // hop spans so a trace shows which tuples shared a batch.
    let mut batch_seq: u64 = 0;
    loop {
        shared.beat(tid);
        if shared.superseded(tid, my_gen) {
            return;
        }
        if !inject_control_faults(&shared, tid, my_gen) {
            return;
        }
        // Wake in time to honor pending linger deadlines.
        let timeout = match router.next_deadline() {
            Some(d) => base_timeout.min(d.saturating_duration_since(Instant::now())),
            None => base_timeout,
        };
        match rx.recv_timeout(timeout) {
            Ok(Batch {
                items: batch,
                sent_at_us: batch_sent_us,
            }) => {
                let s = &shared.task_stats[tid];
                s.queue_len.store(rx.len(), Ordering::Relaxed);
                s.received.fetch_add(batch.len() as u64, Ordering::Relaxed);
                // Without an injector, heartbeat / clock / busy timing happen
                // once per batch: the loop head already beat for this
                // iteration, and batch size bounds how long a batch can run.
                // With faults injected, drops, slowdowns and hang detection
                // need per-tuple clock reads, so the original per-tuple
                // bookkeeping is kept on that path.
                let faults_on = shared.fault.is_some();
                let mut now_s = shared.now_s();
                out.set_now(now_s);
                let batch_t0 = Instant::now();
                // One clock read per batch covers the batch queue-wait sample
                // (the adaptive throttle's signal, so it stays on even with
                // tracing off) and the queue-wait math of any traced tuples.
                let batch_recv_us = shared.now_us();
                shared.record_queue_wait(tid, batch_recv_us.saturating_sub(batch_sent_us));
                batch_seq += 1;
                let mut executed = 0u64;
                let mut failed_n = 0u64;
                let mut slow_busy = 0u64;
                for delivered in batch {
                    // Exactly-once dedup: a spout message id already applied
                    // (its effect recovered through the checkpoint input
                    // log) is skipped, but its edge still acks so the
                    // replayed tree completes.
                    if log_on {
                        if let Some(id) = delivered.dedup {
                            if ck.seen(id) {
                                if let Some((root, edge)) = delivered.anchor {
                                    ops.push(AckOp::Ack { root, edge, now_s });
                                }
                                continue;
                            }
                        }
                    }
                    // Sampled tuples take the per-tuple clock path (like
                    // faults) so their spans get real execute times.
                    let traced_root = if trace_on {
                        delivered
                            .anchor
                            .map(|(r, _)| r)
                            .filter(|&r| shared.tracer.sampled(r))
                    } else {
                        None
                    };
                    let t0 = if faults_on {
                        shared.beat(tid);
                        now_s = shared.now_s();
                        if shared
                            .fault
                            .as_ref()
                            .is_some_and(|inj| inj.should_drop(tid, now_s))
                        {
                            // Dropped on the floor: neither acked nor failed,
                            // so the tree times out and the spout replays it.
                            shared.dropped_total.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        out.set_now(now_s);
                        Some(Instant::now())
                    } else if traced_root.is_some() {
                        Some(Instant::now())
                    } else {
                        None
                    };
                    let hop_start_us = if traced_root.is_some() {
                        shared.now_us()
                    } else {
                        0
                    };
                    bolt.execute(&delivered.tuple, &mut out);
                    if let Some(t0) = t0 {
                        inject_service_slowdown(&shared, tid, t0);
                        if faults_on {
                            slow_busy += t0.elapsed().as_nanos() as u64;
                        }
                    }
                    if let Some(root) = traced_root {
                        let queue_wait_us = if delivered.sent_at_us == 0 {
                            0
                        } else {
                            batch_recv_us.saturating_sub(delivered.sent_at_us)
                        };
                        let exec_us = t0.map_or(0, |t| t.elapsed().as_micros() as u64);
                        shared.tracer.record_hop(
                            tid,
                            root,
                            tid,
                            hop_start_us,
                            queue_wait_us,
                            exec_us,
                            batch_seq,
                        );
                    }
                    let failed = out.drain_into(&mut emis);
                    let root = delivered.anchor.map(|(r, _)| r);
                    for emission in &emis {
                        let anchor = if emission.anchored { root } else { None };
                        router.route(emission, anchor, &mut ops);
                    }
                    emis.clear();
                    if let Some((root, edge)) = delivered.anchor {
                        if failed {
                            ops.push(AckOp::Fail { root, now_s });
                        } else if defer_acks {
                            // Ack only once the effect is durable: held back
                            // until the next snapshot deposit.
                            ck.deferred_acks.push(AckOp::Ack { root, edge, now_s });
                        } else {
                            ops.push(AckOp::Ack { root, edge, now_s });
                        }
                    }
                    if log_on {
                        pending_log.push(LoggedInput {
                            tuple: delivered.tuple.clone(),
                            now_s,
                            dedup: delivered.dedup,
                        });
                        if let Some(id) = delivered.dedup {
                            ck.remember(id);
                        }
                    }
                    executed += 1;
                    if failed {
                        failed_n += 1;
                    }
                }
                // Batch processed: hand its credit back so the producer-side
                // window keeps sliding.
                if let Some(credits) = shared.credits.as_ref() {
                    credits.grant(tid, 1);
                }
                let busy = if faults_on {
                    slow_busy
                } else {
                    batch_t0.elapsed().as_nanos() as u64
                };
                s.executed.fetch_add(executed, Ordering::Relaxed);
                s.busy_nanos.fetch_add(busy, Ordering::Relaxed);
                if failed_n > 0 {
                    s.failed.fetch_add(failed_n, Ordering::Relaxed);
                }
                router.flush_expired(Instant::now(), &mut ops);
                apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
                if ckpt_on {
                    // The input log is appended only after the batch's acks
                    // applied: a crash between batches finds log and acked
                    // frontier aligned.
                    if log_on && !pending_log.is_empty() {
                        if let Some(store) = shared.checkpoints.as_ref() {
                            for li in pending_log.drain(..) {
                                if let Some(n) = store.append_input(tid, my_gen, li) {
                                    ck.log_len = n;
                                }
                            }
                        }
                    }
                    maybe_checkpoint(&mut *bolt, &shared, tid, my_gen, &mut ck, &mut ops, false);
                    if !ops.is_empty() {
                        apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                if router.has_pending() || !ops.is_empty() {
                    router.flush_expired(Instant::now(), &mut ops);
                    apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
                }
                if ckpt_on {
                    // Interval checkpoints keep firing while idle, so acks
                    // deferred by the last partial batch still drain.
                    maybe_checkpoint(&mut *bolt, &shared, tid, my_gen, &mut ck, &mut ops, false);
                    if !ops.is_empty() {
                        apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if ticks_enabled && last_tick.elapsed() >= tick {
            last_tick = Instant::now();
            out.set_now(shared.now_s());
            bolt.tick(&mut out);
            let _ = out.drain_into(&mut emis);
            for emission in &emis {
                router.route(emission, None, &mut ops);
            }
            emis.clear();
        }
    }
    if ckpt_on {
        // Final snapshot on clean shutdown: captures state mutated since the
        // last interval tick and releases any still-deferred acks (the
        // spout-side reconciliation in `join_all` picks them up).
        maybe_checkpoint(&mut *bolt, &shared, tid, my_gen, &mut ck, &mut ops, true);
    }
    router.flush_all(&mut ops);
    apply_and_deliver(&shared, &ack_senders, &mut ops, tid);
    bolt.cleanup();
}

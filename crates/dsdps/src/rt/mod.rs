//! Threaded runtime: executes a topology on real OS threads.
//!
//! Every task runs on its own thread; tuples move through bounded crossbeam
//! channels (bounded capacity = natural backpressure).  The runtime exposes
//! the same observation surface as the simulator — periodic multilevel
//! [`MetricsSnapshot`]s — and the same actuation surface (the topology's
//! dynamic-grouping handles keep working because routers share the same
//! [`DynamicGroupingHandle`](crate::grouping::dynamic::DynamicGroupingHandle)s).
//!
//! Tuples travel in **batches**: each task buffers output per destination and
//! flushes when a buffer reaches [`RtConfig::batch_size`] or its oldest entry
//! has waited [`RtConfig::linger`].  Channel capacity counts batches, so a
//! full downstream queue still blocks the producer (flush-on-full with the
//! usual shutdown-checked timeout).  With the default `batch_size = 1` every
//! tuple flushes inline and the runtime behaves exactly as if batching did
//! not exist.  See [`batch`](self::batch) for the invariants that keep
//! batched acking equivalent to per-tuple acking.
//!
//! Overload has an explicit admission story on top of the bounded channels:
//! per-task **credit pools** ([`RtConfig::credit_flow`], see
//! [`credit`](self::credit)) bound queued-plus-in-flight batches per edge
//! and let senders shed instead of block, and an **adaptive spout
//! throttle** ([`RtConfig::adaptive_throttle`]) runs AIMD on the observed
//! batch queue-wait p99, journaling every cap change.  The
//! [`BackpressureHandle`] exposes the same rate-cap knob to the controller
//! so the planner can trade throughput against tail latency.
//!
//! The runtime is also a first-class **fault target**.  Task threads run
//! under panic isolation and (by default) supervision — a dead or hung task
//! is restarted from its component factory on the same input channel (see
//! [`supervisor`](self::supervisor)); spouts can transparently replay failed
//! or timed-out trees ([`RtConfig::max_replays`]); and
//! [`submit_faulty`] injects scheduled [`RtFault`]s (worker slowdowns,
//! external load, task panics/hangs/drops) mirroring the simulator's fault
//! vocabulary on wall-clock time.  The final [`ThreadedReport`] accounts for
//! every tracked tuple: `tracked == acked + permanently_failed + in_flight`
//! ([`ThreadedReport::conservation_holds`]).
//!
//! The simulator is the substrate for the paper's experiments (deterministic
//! virtual time); this runtime exists so the same application code can run
//! for real, and is exercised by the examples and integration tests.

mod batch;
pub mod checkpoint;
mod config;
pub mod credit;
mod fault;
pub(crate) mod replay;
mod router;
mod supervisor;
mod task;

pub use checkpoint::{RecoveryMode, SnapshotKind, StateSnapshot, StatefulComponent};
pub use config::RtConfig;
pub use credit::{CreditLedger, CreditTotals};
pub use fault::{RtFault, RtFaultPlan};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::acker::ShardedAcker;
use crate::config::EngineConfig;
use crate::error::{Error, Result};
use crate::metrics::{
    LatencyHistogram, MachineStats, MetricsHistory, MetricsSnapshot, OnlineStats, TaskStats,
    TopologyStats, WorkerStats,
};
use crate::scheduler::{even_placement, MachineId, Placement, WorkerId};
use crate::telemetry::{
    Counter, Gauge, Journal, JournalEvent, MetricsServer, Registry, Span, Summary, Tracer,
};
use crate::topology::{TaskId, Topology};

use batch::{AckMsg, Batch};
use fault::FaultInjector;
use replay::ReplayBuffer;
use supervisor::{Slot, Supervision, TaskSpec};
use task::{deliver_outcomes, TaskAtomics};

/// Shared state between task threads, the supervisor and the metrics thread.
pub(crate) struct Shared {
    /// The lock-striped acker ([`RtConfig::acker_shards`] stripes, keyed by
    /// `root % N`).
    pub(crate) ackers: ShardedAcker,
    pub(crate) stop: AtomicBool,
    pub(crate) task_stats: Vec<TaskAtomics>,
    /// In-flight tracked trees per spout task (indexed by global task id).
    pub(crate) pending: Vec<AtomicUsize>,
    pub(crate) acked_total: AtomicU64,
    pub(crate) failed_total: AtomicU64,
    pub(crate) timed_out_total: AtomicU64,
    pub(crate) spout_emitted_total: AtomicU64,
    /// Distinct tracked message ids (conservation numerator).
    pub(crate) tracked_total: AtomicU64,
    /// Messages whose replay budget is exhausted (or every failure, when
    /// replay is off).
    pub(crate) perm_failed_total: AtomicU64,
    /// Runtime-level replays emitted.
    pub(crate) replayed_total: AtomicU64,
    /// Tuples discarded by an injected drop fault.
    pub(crate) dropped_total: AtomicU64,
    /// Complete-latency accumulators: one slot per task plus one trailing
    /// slot for the metrics/timeout thread.  Each writer locks only its own
    /// slot (uncontended); readers merge all slots on demand, so the old
    /// single shared stats mutex is off the hot path entirely.
    pub(crate) latency: Vec<Mutex<(OnlineStats, LatencyHistogram)>>,
    pub(crate) start: Instant,
    pub(crate) next_root: AtomicU64,
    /// Scheduled faults, if any.
    pub(crate) fault: Option<FaultInjector>,
    /// Per-task replay buffers (only spout slots are used).
    pub(crate) replay: Vec<Mutex<ReplayBuffer>>,
    /// True when the spout loops run the replay protocol.
    pub(crate) replay_on: bool,
    /// Runtime tuning (replay budget/backoff are read from here).
    pub(crate) rt: RtConfig,
    /// Sampled tuple-tree tracer ([`RtConfig::trace_sample_rate`]); holds
    /// the per-task span buffers.  Disabled tracers cost one branch per
    /// batch on the data plane.
    pub(crate) tracer: Tracer,
    /// Control-plane event journal (restarts, replays, fault injections;
    /// the controller appends routing decisions through
    /// [`RunningTopology::journal`]).
    pub(crate) journal: Arc<Journal>,
    /// Per-task credit pools ([`RtConfig::credit_flow`]); `None` when credit
    /// flow is off and channel capacity alone provides backpressure.
    pub(crate) credits: Option<CreditLedger>,
    /// Global spout rate cap in tuples/s, stored as `f64` bits
    /// (`INFINITY` = uncapped).  Written by the AIMD loop, the controller,
    /// or a [`BackpressureHandle`]; read by every spout's token bucket.
    pub(crate) rate_cap_bits: AtomicU64,
    /// Batches shed on exhausted credit pools
    /// ([`RtConfig::shed_on_overload`]).
    pub(crate) shed_batches_total: AtomicU64,
    /// Tuples inside those shed batches.
    pub(crate) shed_tuples_total: AtomicU64,
    /// Per-task batch queue-wait accumulators: `(cumulative, interval)`
    /// histograms in µs.  The consumer records one sample per received
    /// batch; the metrics thread swaps out the interval histogram each tick
    /// to compute the steady-state p99 the AIMD throttle steers on.
    pub(crate) queue_wait: Vec<Mutex<(LatencyHistogram, LatencyHistogram)>>,
    /// Queue-wait p99 (µs, `f64` bits) over the last *completed* metrics
    /// interval — the steady-state readout, free of startup transients.
    pub(crate) queue_wait_last_p99_bits: AtomicU64,
    /// Checkpoint store keyed by `(task, generation)`; `None` when
    /// [`RtConfig::checkpoints`] is off.  Lives here (not in task threads)
    /// so snapshots survive supervisor restarts.
    pub(crate) checkpoints: Option<checkpoint::CheckpointStore>,
    /// Spout tuples skipped (not replayed) by approximate-mode restores —
    /// the reported result-error bound of that recovery guarantee.
    pub(crate) approx_skipped_total: AtomicU64,
    /// Duration of the most recent checkpoint, µs (telemetry gauge).
    pub(crate) checkpoint_last_us: AtomicU64,
    /// Latency of the most recent state restore, µs (telemetry gauge).
    pub(crate) restore_last_us: AtomicU64,
}

impl Shared {
    pub(crate) fn now_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Runtime clock in µs, the span timestamp base.
    pub(crate) fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Records a liveness heartbeat for `task`.
    pub(crate) fn beat(&self, task: usize) {
        self.task_stats[task]
            .heartbeat_ns
            .store(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// True when the thread of `generation` no longer owns the task slot.
    pub(crate) fn superseded(&self, task: usize, generation: u64) -> bool {
        self.task_stats[task].generation.load(Ordering::SeqCst) != generation
    }

    /// Allocates a fresh nonzero edge id without touching any shard lock.
    pub(crate) fn new_edge_id(&self) -> u64 {
        self.ackers.new_edge_id()
    }

    /// Index of the latency slot reserved for the metrics/timeout thread.
    pub(crate) fn metrics_lat_slot(&self) -> usize {
        self.latency.len() - 1
    }

    /// Merges every per-task latency slot into one summary (read path only).
    pub(crate) fn merged_latency(&self) -> (OnlineStats, LatencyHistogram) {
        let mut stats = OnlineStats::new();
        let mut hist = LatencyHistogram::new();
        for slot in &self.latency {
            let lat = slot.lock();
            stats.merge(&lat.0);
            hist.merge(&lat.1);
        }
        (stats, hist)
    }

    /// Current spout rate cap, tuples/s (`INFINITY` = uncapped).
    pub(crate) fn rate_cap(&self) -> f64 {
        f64::from_bits(self.rate_cap_bits.load(Ordering::Relaxed))
    }

    /// Applies a new spout rate cap and journals the change.
    pub(crate) fn set_rate_cap(&self, cap: f64, reason: &str) {
        self.rate_cap_bits.store(cap.to_bits(), Ordering::Relaxed);
        self.journal.append(JournalEvent::ThrottleChanged {
            time_s: self.now_s(),
            rate_cap: cap.is_finite().then_some(cap),
            reason: reason.to_string(),
        });
    }

    /// Records one batch queue-wait sample for `task` (µs).  One uncontended
    /// lock per *batch* — the consumer writes, the metrics thread drains.
    pub(crate) fn record_queue_wait(&self, task: usize, wait_us: u64) {
        let mut slot = self.queue_wait[task].lock();
        slot.0.record(wait_us as f64);
        slot.1.record(wait_us as f64);
    }

    /// Queue-wait p99 over the last completed metrics interval, µs.
    pub(crate) fn queue_wait_last_p99_us(&self) -> f64 {
        f64::from_bits(self.queue_wait_last_p99_bits.load(Ordering::Relaxed))
    }

    /// Merges every task's cumulative queue-wait histogram (read path only).
    pub(crate) fn merged_queue_wait(&self) -> LatencyHistogram {
        let mut hist = LatencyHistogram::new();
        for slot in &self.queue_wait {
            hist.merge(&slot.lock().0);
        }
        hist
    }
}

/// Live backpressure/throttle surface of a [`RunningTopology`] — the
/// actuation handle the controller (or a test) uses to trade throughput
/// against tail latency while the topology runs.
///
/// Cheap to clone; all methods are lock-free reads or a journaled atomic
/// write, safe to call from any thread.
#[derive(Clone)]
pub struct BackpressureHandle {
    shared: Arc<Shared>,
}

impl BackpressureHandle {
    /// Current spout rate cap, tuples/s (`None` = uncapped).
    pub fn rate_cap(&self) -> Option<f64> {
        let cap = self.shared.rate_cap();
        cap.is_finite().then_some(cap)
    }

    /// Sets (or clears, with `None`) the global spout rate cap.  The change
    /// is journaled as a [`JournalEvent::ThrottleChanged`] with the given
    /// reason (`"controller"` for planner actuation, `"manual"` otherwise).
    pub fn set_rate_cap(&self, cap: Option<f64>, reason: &str) {
        self.shared
            .set_rate_cap(cap.unwrap_or(f64::INFINITY), reason);
    }

    /// Flow-control credits currently available across every pool (0 when
    /// credit flow is off).
    pub fn credits_outstanding(&self) -> i64 {
        self.shared
            .credits
            .as_ref()
            .map_or(0, |c| c.totals().outstanding)
    }

    /// Batch queue-wait p99 over the last completed metrics interval, µs.
    pub fn queue_wait_last_p99_us(&self) -> f64 {
        self.shared.queue_wait_last_p99_us()
    }
}

/// A topology running on threads.  Dropping without calling
/// [`shutdown`](Self::shutdown) also stops it.
pub struct RunningTopology {
    shared: Arc<Shared>,
    supervision: Arc<Supervision>,
    supervisor_thread: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<MetricsHistory>>,
    config: EngineConfig,
    registry: Arc<Registry>,
    metrics_server: Option<MetricsServer>,
}

impl RunningTopology {
    /// Seconds since the topology started.
    pub fn uptime_s(&self) -> f64 {
        self.shared.now_s()
    }

    /// Total tuple trees acked so far.
    pub fn acked(&self) -> u64 {
        self.shared.acked_total.load(Ordering::Relaxed)
    }

    /// Total spout tuples emitted so far.
    pub fn spout_emitted(&self) -> u64 {
        self.shared.spout_emitted_total.load(Ordering::Relaxed)
    }

    /// Messages permanently failed so far (replay budget exhausted, or every
    /// failure when replay is off).
    pub fn permanently_failed(&self) -> u64 {
        self.shared.perm_failed_total.load(Ordering::Relaxed)
    }

    /// Runtime-level replays emitted so far.
    pub fn replays(&self) -> u64 {
        self.shared.replayed_total.load(Ordering::Relaxed)
    }

    /// Panics caught in task threads so far.
    pub fn task_panics(&self) -> u64 {
        self.shared
            .task_stats
            .iter()
            .map(|s| s.panics.load(Ordering::SeqCst))
            .sum()
    }

    /// Supervisor restarts of task threads so far.
    pub fn task_restarts(&self) -> u64 {
        self.shared
            .task_stats
            .iter()
            .map(|s| s.restarts.load(Ordering::SeqCst))
            .sum()
    }

    /// The run's control-plane event journal.  The runtime appends restart,
    /// replay and fault-injection events; attach this to a controller to
    /// journal its routing decisions too.
    pub fn journal(&self) -> Arc<Journal> {
        Arc::clone(&self.shared.journal)
    }

    /// The run's live metrics registry (rendered by the Prometheus
    /// endpoint, refreshed every metrics interval).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Address the Prometheus endpoint is actually serving on, when
    /// [`RtConfig::metrics_addr`] was set (resolves port 0).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_server.as_ref().map(|s| s.local_addr())
    }

    /// Snapshot of the sampled trace so far: merged spans plus the count
    /// rejected on ring-buffer overflow.
    pub fn trace_snapshot(&self) -> (Vec<Span>, u64) {
        self.shared.tracer.snapshot()
    }

    /// The run's backpressure/throttle actuation handle (rate caps, credit
    /// balances, steady-state queue wait).
    pub fn backpressure(&self) -> BackpressureHandle {
        BackpressureHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Signals stop, joins every thread, and collects any panics that
    /// escaped the per-thread guard.
    fn join_all(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(server) = self.metrics_server.take() {
            server.shutdown();
        }
        if let Some(t) = self.supervisor_thread.take() {
            let _ = t.join();
        }
        let mut slots = self.supervision.slots.lock();
        for slot in slots.iter_mut() {
            if let Some(h) = slot.handle.take() {
                if let Err(payload) = h.join() {
                    // A panic escaped the catch_unwind guard (e.g. in the
                    // guard itself).  Record it rather than swallowing it.
                    let s = &self.shared.task_stats[slot.spec.tid];
                    s.panics.fetch_add(1, Ordering::SeqCst);
                    *s.last_panic.lock() = Some(supervisor::panic_message(payload.as_ref()));
                }
            }
            // Superseded (hung) threads exit on `stop` when they can;
            // dropping the handles detaches any that are truly wedged so
            // shutdown cannot block forever.
            slot.abandoned.clear();
        }
        // Reconcile ack feedback still queued at stop into the replay
        // buffers, so the final in-flight count does not keep trees that
        // completed after their spout stopped reading feedback.
        if self.shared.replay_on {
            for slot in slots.iter() {
                let Some(rx) = slot.spec.ack_input.as_ref() else {
                    continue;
                };
                let tid = slot.spec.tid;
                while let Ok(batch) = rx.try_recv() {
                    for msg in batch {
                        if let AckMsg::Ack(id) = msg {
                            self.shared.replay[tid].lock().on_ack(id);
                        }
                    }
                }
            }
        }
    }

    fn report(&self) -> ThreadedReport {
        let (stats, hist) = self.shared.merged_latency();
        let (avg_ms, p99_ms) = (
            stats.mean() / 1000.0,
            hist.quantile(0.99).unwrap_or(0.0) / 1000.0,
        );
        let in_flight = if self.shared.replay_on {
            self.shared
                .replay
                .iter()
                .map(|b| b.lock().len() as u64)
                .sum()
        } else {
            self.shared.ackers.pending_count() as u64
        };
        let panic_messages = self
            .shared
            .task_stats
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.last_panic
                    .lock()
                    .clone()
                    .map(|m| format!("task {i}: {m}"))
            })
            .collect();
        let (spans, spans_dropped) = self.shared.tracer.snapshot();
        let credit_totals =
            self.shared
                .credits
                .as_ref()
                .map(|c| c.totals())
                .unwrap_or(CreditTotals {
                    granted: 0,
                    consumed: 0,
                    revoked: 0,
                    outstanding: 0,
                });
        let queue_wait_hist = self.shared.merged_queue_wait();
        let final_cap = self.shared.rate_cap();
        ThreadedReport {
            uptime_s: self.shared.now_s(),
            spout_emitted: self.shared.spout_emitted_total.load(Ordering::Relaxed),
            acked: self.shared.acked_total.load(Ordering::Relaxed),
            failed: self.shared.failed_total.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out_total.load(Ordering::Relaxed),
            avg_complete_latency_ms: avg_ms,
            p99_complete_latency_ms: p99_ms,
            task_panics: self.task_panics(),
            task_restarts: self.task_restarts(),
            panic_messages,
            tracked: self.shared.tracked_total.load(Ordering::Relaxed),
            permanently_failed: self.shared.perm_failed_total.load(Ordering::Relaxed),
            replays: self.shared.replayed_total.load(Ordering::Relaxed),
            dropped: self.shared.dropped_total.load(Ordering::Relaxed),
            in_flight,
            journal: self.shared.journal.events(),
            spans,
            spans_dropped,
            credits: credit_totals,
            shed_batches: self.shared.shed_batches_total.load(Ordering::Relaxed),
            shed_tuples: self.shared.shed_tuples_total.load(Ordering::Relaxed),
            queue_wait_p50_us: queue_wait_hist.quantile(0.50).unwrap_or(0.0),
            queue_wait_p99_us: queue_wait_hist.quantile(0.99).unwrap_or(0.0),
            queue_wait_last_p99_us: self.shared.queue_wait_last_p99_us(),
            rate_cap: final_cap.is_finite().then_some(final_cap),
            checkpoints_taken: self
                .shared
                .task_stats
                .iter()
                .map(|s| s.checkpoints_taken.load(Ordering::Relaxed))
                .sum(),
            restores: self
                .shared
                .task_stats
                .iter()
                .map(|s| s.restores.load(Ordering::Relaxed))
                .sum(),
            snapshot_bytes: self
                .shared
                .task_stats
                .iter()
                .map(|s| s.snapshot_bytes.load(Ordering::Relaxed))
                .sum(),
            approx_skipped: self.shared.approx_skipped_total.load(Ordering::Relaxed),
        }
    }

    /// Stops all threads and returns the collected metrics history plus a
    /// final summary.
    pub fn shutdown(mut self) -> (MetricsHistory, ThreadedReport) {
        self.join_all();
        let history = self
            .metrics_thread
            .take()
            .map(|t| t.join().unwrap_or_default())
            .unwrap_or_default();
        let report = self.report();
        (history, report)
    }

    /// Convenience: run for `duration` then shut down.
    pub fn run_for(self, duration: Duration) -> (MetricsHistory, ThreadedReport) {
        std::thread::sleep(duration);
        self.shutdown()
    }
}

impl Drop for RunningTopology {
    fn drop(&mut self) {
        self.join_all();
        if let Some(t) = self.metrics_thread.take() {
            let _ = t.join();
        }
        let _ = &self.config;
    }
}

/// Final summary of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Wall-clock runtime in seconds.
    pub uptime_s: f64,
    /// Spout tuples emitted.
    pub spout_emitted: u64,
    /// Tuple trees acked.
    pub acked: u64,
    /// Tuple trees failed (includes trees later recovered by replay).
    pub failed: u64,
    /// Tuple trees timed out (includes trees later recovered by replay).
    pub timed_out: u64,
    /// Mean complete latency, ms.
    pub avg_complete_latency_ms: f64,
    /// p99 complete latency, ms.
    pub p99_complete_latency_ms: f64,
    /// Panics caught in task threads (user code or injected faults).
    pub task_panics: u64,
    /// Supervisor restarts of dead or hung tasks.
    pub task_restarts: u64,
    /// Last panic message per affected task, as `"task N: message"`.
    pub panic_messages: Vec<String>,
    /// Distinct message ids tracked by the acker.
    pub tracked: u64,
    /// Messages permanently failed: replay budget exhausted, or — with
    /// replay off — every failed/timed-out tree.
    pub permanently_failed: u64,
    /// Runtime-level replays emitted by spouts.
    pub replays: u64,
    /// Tuples discarded by injected drop faults.
    pub dropped: u64,
    /// Messages still unresolved at shutdown (in flight or awaiting a
    /// replay).
    pub in_flight: u64,
    /// Control-plane event journal of the run, in append order.  Restart /
    /// replay / fault events come from the runtime; routing-ratio events
    /// from an attached controller.  Assert on this instead of scraping
    /// stdout.
    pub journal: Vec<JournalEvent>,
    /// Sampled trace of the run ([`RtConfig::trace_sample_rate`]), merged
    /// across all task buffers and ordered by `(trace_id, start_us)`.
    pub spans: Vec<Span>,
    /// Spans rejected because a task's trace buffer overflowed.
    pub spans_dropped: u64,
    /// Aggregate credit-ledger counters ([`RtConfig::credit_flow`]); all
    /// zero when credit flow was off.
    pub credits: CreditTotals,
    /// Batches shed on exhausted credit pools
    /// ([`RtConfig::shed_on_overload`]).
    pub shed_batches: u64,
    /// Tuples inside those shed batches (each failed at the acker, so they
    /// stay inside the tuple-conservation identity).
    pub shed_tuples: u64,
    /// Batch queue-wait median over the whole run, µs.  The overload bench
    /// gate compares a throttled run's tail against an unthrottled run's
    /// median, so both quantiles are part of the report.
    pub queue_wait_p50_us: f64,
    /// Batch queue-wait p99 over the whole run, µs (includes any
    /// before-the-throttle-reacted transient).
    pub queue_wait_p99_us: f64,
    /// Batch queue-wait p99 over the last completed metrics interval, µs —
    /// the steady-state figure to compare throttled vs unthrottled runs on.
    pub queue_wait_last_p99_us: f64,
    /// Spout rate cap at shutdown, tuples/s (`None` = uncapped).
    pub rate_cap: Option<f64>,
    /// Checkpoints taken across all stateful tasks
    /// ([`RtConfig::checkpoints`]); 0 when checkpointing was off.
    pub checkpoints_taken: u64,
    /// Snapshot restores performed by restarted stateful tasks.
    pub restores: u64,
    /// Total serialized snapshot bytes deposited in the checkpoint store.
    pub snapshot_bytes: u64,
    /// Spout tuples skipped (not replayed) by approximate-mode restores —
    /// the exact result-error bound that recovery guarantee reports.
    pub approx_skipped: u64,
}

impl ThreadedReport {
    /// The end-to-end conservation invariant: every tracked message is
    /// acked, permanently failed, or still in flight — nothing is silently
    /// lost.  (With a restarted *spout* re-emitting previously used message
    /// ids the accounting becomes per-attempt and this check is only
    /// meaningful per run of a spout instance.)
    pub fn conservation_holds(&self) -> bool {
        self.tracked == self.acked + self.permanently_failed + self.in_flight
    }

    /// The credit-plane conservation invariant, exact at shutdown:
    /// `granted == consumed + revoked + outstanding` (with no window
    /// shrinks this is the plain `granted == consumed + outstanding`).
    /// Vacuously true when credit flow was off.
    pub fn credit_conservation_holds(&self) -> bool {
        self.credits.conservation_holds()
    }

    /// Journal events of the given [`JournalEvent::kind`] tag.
    pub fn journal_of_kind(&self, kind: &str) -> Vec<&JournalEvent> {
        self.journal.iter().filter(|e| e.kind() == kind).collect()
    }

    /// Distinct trace ids present in the sampled span log, sorted.
    pub fn sampled_trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.spans.iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Starts `topology` on OS threads with default (unbatched) runtime tuning.
pub fn submit(topology: Topology, config: EngineConfig) -> Result<RunningTopology> {
    submit_inner(topology, config, RtConfig::default(), None, None)
}

/// [`submit`] with explicit runtime tuning (batch size / linger).
pub fn submit_with(
    topology: Topology,
    config: EngineConfig,
    rt_config: RtConfig,
) -> Result<RunningTopology> {
    submit_inner(topology, config, rt_config, None, None)
}

/// Control hook invoked on every metrics snapshot of the threaded runtime.
pub type MetricsHook = Box<dyn FnMut(&MetricsSnapshot) + Send>;

/// [`submit`] with a control hook invoked on every metrics snapshot.
pub fn submit_with_hook(
    topology: Topology,
    config: EngineConfig,
    hook: Option<MetricsHook>,
) -> Result<RunningTopology> {
    submit_inner(topology, config, RtConfig::default(), None, hook)
}

/// Starts `topology` on OS threads with full control over runtime tuning and
/// the metrics hook.
pub fn submit_full(
    topology: Topology,
    config: EngineConfig,
    rt_config: RtConfig,
    hook: Option<MetricsHook>,
) -> Result<RunningTopology> {
    submit_inner(topology, config, rt_config, None, hook)
}

/// [`submit_full`] with a scheduled fault plan injected into the run.
pub fn submit_faulty(
    topology: Topology,
    config: EngineConfig,
    rt_config: RtConfig,
    plan: RtFaultPlan,
    hook: Option<MetricsHook>,
) -> Result<RunningTopology> {
    submit_inner(topology, config, rt_config, Some(plan), hook)
}

/// Bridges the runtime's internal atomics into the live metrics
/// [`Registry`].  Every handle is registered once at submit; the metrics
/// thread pushes fresh values each interval, so a Prometheus scrape reads
/// registry cells only and never touches the data plane.
struct RegistryMirror {
    spout_emitted: Counter,
    acked: Counter,
    failed: Counter,
    timed_out: Counter,
    replayed: Counter,
    dropped: Counter,
    tracked: Counter,
    perm_failed: Counter,
    task_panics: Counter,
    task_restarts: Counter,
    in_flight: Gauge,
    uptime: Gauge,
    throughput: Gauge,
    credits_outstanding: Gauge,
    throttle_rate_cap: Gauge,
    shed_batches: Counter,
    queue_wait_p99: Gauge,
    checkpoints_taken: Counter,
    restores: Counter,
    snapshot_bytes: Counter,
    checkpoint_last_us: Gauge,
    restore_last_us: Gauge,
    complete_latency: Summary,
    task_executed: Vec<Counter>,
    task_queue_len: Vec<Gauge>,
    task_capacity: Vec<Gauge>,
    worker_cpu: Vec<Gauge>,
    worker_lat: Vec<Gauge>,
}

impl RegistryMirror {
    fn new(registry: &Registry, task_names: &[(String, WorkerId)], num_workers: usize) -> Self {
        let per_task = |family: &str| -> Vec<Counter> {
            task_names
                .iter()
                .enumerate()
                .map(|(i, (name, _))| {
                    registry.counter(family, &[("task", &i.to_string()), ("component", name)])
                })
                .collect()
        };
        let per_task_gauge = |family: &str| -> Vec<Gauge> {
            task_names
                .iter()
                .enumerate()
                .map(|(i, (name, _))| {
                    registry.gauge(family, &[("task", &i.to_string()), ("component", name)])
                })
                .collect()
        };
        let per_worker_gauge = |family: &str| -> Vec<Gauge> {
            (0..num_workers)
                .map(|w| registry.gauge(family, &[("worker", &w.to_string())]))
                .collect()
        };
        RegistryMirror {
            spout_emitted: registry.counter("dsdps_spout_emitted_total", &[]),
            acked: registry.counter("dsdps_acked_total", &[]),
            failed: registry.counter("dsdps_failed_total", &[]),
            timed_out: registry.counter("dsdps_timed_out_total", &[]),
            replayed: registry.counter("dsdps_replayed_total", &[]),
            dropped: registry.counter("dsdps_dropped_total", &[]),
            tracked: registry.counter("dsdps_tracked_total", &[]),
            perm_failed: registry.counter("dsdps_perm_failed_total", &[]),
            task_panics: registry.counter("dsdps_task_panics_total", &[]),
            task_restarts: registry.counter("dsdps_task_restarts_total", &[]),
            in_flight: registry.gauge("dsdps_in_flight", &[]),
            uptime: registry.gauge("dsdps_uptime_seconds", &[]),
            throughput: registry.gauge("dsdps_throughput_tuples_per_s", &[]),
            credits_outstanding: registry.gauge("dsdps_credits_outstanding", &[]),
            // 0 = uncapped (Prometheus text can't carry +Inf cleanly).
            throttle_rate_cap: registry.gauge("dsdps_throttle_rate_cap_tuples_per_s", &[]),
            shed_batches: registry.counter("dsdps_shed_batches_total", &[]),
            queue_wait_p99: registry.gauge("dsdps_queue_wait_p99_us", &[]),
            checkpoints_taken: registry.counter("dsdps_checkpoints_total", &[]),
            restores: registry.counter("dsdps_restores_total", &[]),
            snapshot_bytes: registry.counter("dsdps_snapshot_bytes_total", &[]),
            checkpoint_last_us: registry.gauge("dsdps_checkpoint_last_duration_us", &[]),
            restore_last_us: registry.gauge("dsdps_restore_last_latency_us", &[]),
            complete_latency: registry.summary("dsdps_complete_latency_us", &[]),
            task_executed: per_task("dsdps_task_executed_total"),
            task_queue_len: per_task_gauge("dsdps_task_queue_len"),
            task_capacity: per_task_gauge("dsdps_task_capacity"),
            worker_cpu: per_worker_gauge("dsdps_worker_cpu_cores"),
            worker_lat: per_worker_gauge("dsdps_worker_avg_latency_us"),
        }
    }

    fn update(&self, shared: &Shared, snap: &MetricsSnapshot, hist: &LatencyHistogram) {
        let tracked = shared.tracked_total.load(Ordering::Relaxed);
        let acked = shared.acked_total.load(Ordering::Relaxed);
        let perm = shared.perm_failed_total.load(Ordering::Relaxed);
        self.spout_emitted
            .set(shared.spout_emitted_total.load(Ordering::Relaxed));
        self.acked.set(acked);
        self.failed.set(shared.failed_total.load(Ordering::Relaxed));
        self.timed_out
            .set(shared.timed_out_total.load(Ordering::Relaxed));
        self.replayed
            .set(shared.replayed_total.load(Ordering::Relaxed));
        self.dropped
            .set(shared.dropped_total.load(Ordering::Relaxed));
        self.tracked.set(tracked);
        self.perm_failed.set(perm);
        let (panics, restarts) = shared.task_stats.iter().fold((0u64, 0u64), |(p, r), s| {
            (
                p + s.panics.load(Ordering::SeqCst),
                r + s.restarts.load(Ordering::SeqCst),
            )
        });
        self.task_panics.set(panics);
        self.task_restarts.set(restarts);
        self.in_flight
            .set(tracked.saturating_sub(acked + perm) as f64);
        self.uptime.set(snap.time_s);
        self.throughput.set(snap.topology.throughput);
        self.credits_outstanding.set(
            shared
                .credits
                .as_ref()
                .map_or(0.0, |c| c.totals().outstanding as f64),
        );
        let cap = shared.rate_cap();
        self.throttle_rate_cap
            .set(if cap.is_finite() { cap } else { 0.0 });
        self.shed_batches
            .set(shared.shed_batches_total.load(Ordering::Relaxed));
        self.queue_wait_p99.set(shared.queue_wait_last_p99_us());
        let (ckpts, restores, snap_bytes) =
            shared
                .task_stats
                .iter()
                .fold((0u64, 0u64, 0u64), |(c, r, b), s| {
                    (
                        c + s.checkpoints_taken.load(Ordering::Relaxed),
                        r + s.restores.load(Ordering::Relaxed),
                        b + s.snapshot_bytes.load(Ordering::Relaxed),
                    )
                });
        self.checkpoints_taken.set(ckpts);
        self.restores.set(restores);
        self.snapshot_bytes.set(snap_bytes);
        self.checkpoint_last_us
            .set(shared.checkpoint_last_us.load(Ordering::Relaxed) as f64);
        self.restore_last_us
            .set(shared.restore_last_us.load(Ordering::Relaxed) as f64);
        self.complete_latency.replace(hist.clone());
        for (i, t) in snap.tasks.iter().enumerate() {
            self.task_executed[i].set(shared.task_stats[i].executed.load(Ordering::Relaxed));
            self.task_queue_len[i].set(t.queue_len as f64);
            self.task_capacity[i].set(t.capacity);
        }
        for w in &snap.workers {
            self.worker_cpu[w.worker.0].set(w.cpu_cores_used);
            self.worker_lat[w.worker.0].set(w.avg_execute_latency_us);
        }
    }
}

fn submit_inner(
    topology: Topology,
    config: EngineConfig,
    rt_config: RtConfig,
    plan: Option<RtFaultPlan>,
    mut hook: Option<MetricsHook>,
) -> Result<RunningTopology> {
    config.validate()?;
    rt_config.validate()?;
    checkpoint::set_json_snapshot_fallback(rt_config.json_snapshots);
    let placement: Placement = even_placement(&topology, &config)?;
    let n_tasks = topology.task_count();
    let journal = Arc::new(Journal::new());
    if rt_config.checkpoints {
        journal.append(JournalEvent::RecoveryMode {
            time_s: 0.0,
            mode: rt_config.recovery_mode.as_str().to_string(),
        });
    }
    let injector = match plan {
        Some(plan) if !plan.is_empty() => {
            plan.validate(n_tasks, placement.num_workers(), config.num_machines)?;
            for fault in &plan.faults {
                journal.append(JournalEvent::FaultPlanned {
                    time_s: 0.0,
                    description: format!("{fault:?}"),
                });
            }
            Some(FaultInjector::new(plan, &placement, n_tasks))
        }
        _ => None,
    };
    let topology = Arc::new(topology);

    let task_names: Vec<(String, WorkerId)> = {
        let mut v = Vec::with_capacity(n_tasks);
        for component in topology.components() {
            for task in component.tasks() {
                v.push((component.name.clone(), placement.worker_of(task)));
            }
        }
        v
    };
    let tracer = Tracer::new(
        rt_config.trace_sample_rate,
        n_tasks + 1,
        task_names
            .iter()
            .map(|(name, worker)| (name.clone(), worker.0))
            .collect(),
    );

    let shared = Arc::new(Shared {
        ackers: ShardedAcker::new(rt_config.acker_shards),
        stop: AtomicBool::new(false),
        task_stats: (0..n_tasks).map(|_| TaskAtomics::default()).collect(),
        pending: (0..n_tasks).map(|_| AtomicUsize::new(0)).collect(),
        acked_total: AtomicU64::new(0),
        failed_total: AtomicU64::new(0),
        timed_out_total: AtomicU64::new(0),
        spout_emitted_total: AtomicU64::new(0),
        tracked_total: AtomicU64::new(0),
        perm_failed_total: AtomicU64::new(0),
        replayed_total: AtomicU64::new(0),
        dropped_total: AtomicU64::new(0),
        latency: (0..n_tasks + 1)
            .map(|_| Mutex::new((OnlineStats::new(), LatencyHistogram::new())))
            .collect(),
        start: Instant::now(),
        next_root: AtomicU64::new(0),
        fault: injector,
        replay: (0..n_tasks)
            .map(|_| Mutex::new(ReplayBuffer::default()))
            .collect(),
        replay_on: rt_config.replay_enabled() && config.ack_enabled,
        rt: rt_config.clone(),
        tracer,
        journal: Arc::clone(&journal),
        credits: rt_config.credit_flow.then(|| CreditLedger::new(n_tasks)),
        // The cap starts at the configured ceiling — INFINITY (uncapped) by
        // default, so stock runs never see the token bucket.
        rate_cap_bits: AtomicU64::new(rt_config.throttle_max_rate.to_bits()),
        shed_batches_total: AtomicU64::new(0),
        shed_tuples_total: AtomicU64::new(0),
        queue_wait: (0..n_tasks)
            .map(|_| Mutex::new((LatencyHistogram::new(), LatencyHistogram::new())))
            .collect(),
        queue_wait_last_p99_bits: AtomicU64::new(0f64.to_bits()),
        checkpoints: rt_config.checkpoints.then(|| {
            checkpoint::CheckpointStore::new(
                n_tasks,
                rt_config.checkpoint_spill_threshold,
                rt_config.checkpoint_spill_dir.clone(),
            )
        }),
        approx_skipped_total: AtomicU64::new(0),
        checkpoint_last_us: AtomicU64::new(0),
        restore_last_us: AtomicU64::new(0),
    });

    // Initial credit windows: every bolt task grants its producers a window
    // of batch credits, clamped to the channel capacity so a credited send
    // never blocks on the channel itself.  Window-level grants are control
    // plane and journaled; per-batch re-grants are not.
    if let Some(credits) = shared.credits.as_ref() {
        let window = rt_config.credit_window.min(config.queue_capacity).max(1) as u64;
        for component in topology.components() {
            if component.is_spout() {
                continue;
            }
            for task in component.tasks() {
                credits.set_window(task.0, window);
                journal.append(JournalEvent::CreditGranted {
                    time_s: 0.0,
                    task: task.0,
                    amount: window,
                });
            }
        }
    }

    // Channels: batched tuple input per task, batched ack feedback per spout
    // task.  Bounded capacity counts batches.  The receivers stay clonable
    // so the supervisor can re-wire a restarted task to its existing queue.
    let mut senders = Vec::with_capacity(n_tasks);
    let mut receivers: Vec<Receiver<Batch>> = Vec::with_capacity(n_tasks);
    for _ in 0..n_tasks {
        let (tx, rx) = bounded::<Batch>(config.queue_capacity);
        senders.push(tx);
        receivers.push(rx);
    }
    let mut ack_senders: Vec<Option<Sender<Vec<AckMsg>>>> = vec![None; n_tasks];
    let mut ack_receivers: Vec<Option<Receiver<Vec<AckMsg>>>> =
        (0..n_tasks).map(|_| None).collect();
    for component in topology.components() {
        if component.is_spout() {
            for task in component.tasks() {
                let (tx, rx) = unbounded();
                ack_senders[task.0] = Some(tx);
                ack_receivers[task.0] = Some(rx);
            }
        }
    }
    let ack_senders = Arc::new(ack_senders);

    // Live metrics registry + optional Prometheus endpoint.  Bound before
    // any task thread spawns so a bind failure aborts the submit cleanly.
    let registry = Arc::new(Registry::new());
    let mirror = RegistryMirror::new(&registry, &task_names, placement.num_workers());
    let metrics_server = match rt_config.metrics_addr {
        Some(addr) => Some(
            MetricsServer::bind(addr, Arc::clone(&registry))
                .map_err(|e| Error::Config(format!("metrics_addr {addr} bind failed: {e}")))?,
        ),
        None => None,
    };

    // One supervised slot per task; the spec re-spawns the task on restart.
    let supervision = Arc::new(Supervision::default());
    {
        let mut slots = supervision.slots.lock();
        for component in topology.components() {
            for (task_index, task) in component.tasks().enumerate() {
                let tid = task.0;
                let spec = TaskSpec {
                    topology: topology.clone(),
                    component_id: component.id,
                    task_index,
                    tid,
                    input: if component.is_spout() {
                        None
                    } else {
                        Some(receivers[tid].clone())
                    },
                    ack_input: ack_receivers[tid].clone(),
                    senders: senders.clone(),
                    ack_senders: ack_senders.clone(),
                    cfg: config.clone(),
                    rt_cfg: rt_config.clone(),
                };
                shared.task_stats[tid].alive.store(true, Ordering::SeqCst);
                shared.beat(tid);
                let handle = spec.spawn(&shared, 0);
                slots.push(Slot {
                    spec,
                    handle: Some(handle),
                    generation: 0,
                    abandoned: Vec::new(),
                });
            }
        }
    }

    let supervisor_thread = if rt_config.supervise {
        let shared = shared.clone();
        let sup = supervision.clone();
        let rc = rt_config.clone();
        Some(std::thread::spawn(move || {
            supervisor::run_supervisor(shared, sup, rc)
        }))
    } else {
        None
    };

    // Metrics/timeout thread.
    #[derive(Default, Clone, Copy)]
    struct Prev {
        executed: u64,
        emitted: u64,
        failed: u64,
        busy: u64,
        batches: u64,
        lingers: u64,
        received: u64,
    }
    let metrics_thread = {
        let shared = shared.clone();
        let cfg = config.clone();
        let ack_senders = ack_senders.clone();
        let placement = placement.clone();
        Some(std::thread::spawn(move || {
            let mut history = MetricsHistory::new(cfg.metrics_history_cap);
            let mut history_truncated = false;
            let mut prev: Vec<Prev> = vec![Prev::default(); shared.task_stats.len()];
            let mut prev_totals = (0u64, 0u64, 0u64, 0u64);
            let mut interval: u64 = 0;
            let tick = Duration::from_secs_f64(cfg.metrics_interval_s);
            while !shared.stop.load(Ordering::Relaxed) {
                std::thread::sleep(tick.min(Duration::from_millis(50)));
                if shared.now_s() < (interval + 1) as f64 * cfg.metrics_interval_s {
                    continue;
                }
                // Message timeouts.  Expiry walks every shard; the blocking
                // drain also scavenges completions from shards whose last
                // op-applier has already exited.
                if cfg.ack_enabled {
                    shared.ackers.expire(shared.now_s(), cfg.message_timeout_s);
                    let outcomes = shared.ackers.drain_outcomes_blocking();
                    deliver_outcomes(&shared, &ack_senders, outcomes, shared.metrics_lat_slot());
                }

                let interval_s = cfg.metrics_interval_s;
                let mut recv_delta = vec![0u64; shared.task_stats.len()];
                let tasks: Vec<TaskStats> = shared
                    .task_stats
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let cur = Prev {
                            executed: s.executed.load(Ordering::Relaxed),
                            emitted: s.emitted.load(Ordering::Relaxed),
                            failed: s.failed.load(Ordering::Relaxed),
                            busy: s.busy_nanos.load(Ordering::Relaxed),
                            batches: s.batches_flushed.load(Ordering::Relaxed),
                            lingers: s.linger_flushes.load(Ordering::Relaxed),
                            received: s.received.load(Ordering::Relaxed),
                        };
                        let p = prev[i];
                        prev[i] = cur;
                        recv_delta[i] = cur.received - p.received;
                        let d_exec = cur.executed - p.executed;
                        let d_busy = cur.busy - p.busy;
                        TaskStats {
                            task: TaskId(i),
                            component: task_names[i].0.clone(),
                            worker: task_names[i].1,
                            executed: d_exec,
                            emitted: cur.emitted - p.emitted,
                            acked: d_exec - (cur.failed - p.failed),
                            failed: cur.failed - p.failed,
                            avg_execute_latency_us: if d_exec > 0 {
                                d_busy as f64 / 1000.0 / d_exec as f64
                            } else {
                                0.0
                            },
                            queue_len: s.queue_len.load(Ordering::Relaxed),
                            capacity: d_busy as f64 / 1e9 / interval_s,
                            batches_flushed: cur.batches - p.batches,
                            linger_flushes: cur.lingers - p.lingers,
                            panics: s.panics.load(Ordering::SeqCst),
                            restarts: s.restarts.load(Ordering::SeqCst),
                            last_panic: s.last_panic.lock().clone(),
                            checkpoints_taken: s.checkpoints_taken.load(Ordering::Relaxed),
                            restores: s.restores.load(Ordering::Relaxed),
                            snapshot_bytes: s.snapshot_bytes.load(Ordering::Relaxed),
                        }
                    })
                    .collect();

                let workers: Vec<WorkerStats> = (0..placement.num_workers())
                    .map(|w| {
                        let wid = WorkerId(w);
                        let mine: Vec<(usize, &TaskStats)> = tasks
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| t.worker == wid)
                            .collect();
                        let executed: u64 = mine.iter().map(|(_, t)| t.executed).sum();
                        let lat = if executed > 0 {
                            mine.iter()
                                .map(|(_, t)| t.avg_execute_latency_us * t.executed as f64)
                                .sum::<f64>()
                                / executed as f64
                        } else {
                            0.0
                        };
                        WorkerStats {
                            worker: wid,
                            machine: placement.machine_of(wid),
                            cpu_cores_used: mine.iter().map(|(_, t)| t.capacity).sum(),
                            memory_mb: 100.0
                                + mine
                                    .iter()
                                    .map(|(_, t)| t.queue_len as f64 * 0.004)
                                    .sum::<f64>(),
                            executed,
                            tuples_in: mine.iter().map(|(i, _)| recv_delta[*i]).sum(),
                            tuples_out: mine.iter().map(|(_, t)| t.emitted).sum(),
                            avg_execute_latency_us: lat,
                            num_tasks: mine.len(),
                        }
                    })
                    .collect();

                let now_s = shared.now_s();
                let ext_injector = shared.fault.as_ref().filter(|inj| inj.has_external_load());
                let machines: Vec<MachineStats> = (0..cfg.num_machines)
                    .map(|m| {
                        let mid = MachineId(m);
                        let used: f64 = workers
                            .iter()
                            .filter(|w| w.machine == mid)
                            .map(|w| w.cpu_cores_used)
                            .sum();
                        MachineStats {
                            machine: mid,
                            cpu_cores_used: used,
                            external_load_cores: ext_injector
                                .map(|inj| inj.external_load(m, now_s))
                                .unwrap_or(0.0),
                            cores: cfg.machine_cores,
                            num_workers: placement.workers_of_machine(mid).len(),
                        }
                    })
                    .collect();

                let acked = shared.acked_total.load(Ordering::Relaxed);
                let failed = shared.failed_total.load(Ordering::Relaxed);
                let timed_out = shared.timed_out_total.load(Ordering::Relaxed);
                let emitted = shared.spout_emitted_total.load(Ordering::Relaxed);
                let (pa, pf2, pt, pe2) = prev_totals;
                prev_totals = (acked, failed, timed_out, emitted);
                let (lat_stats, lat_hist) = shared.merged_latency();
                let topo_stats = TopologyStats {
                    spout_emitted: emitted - pe2,
                    acked: acked - pa,
                    failed: failed - pf2,
                    timed_out: timed_out - pt,
                    avg_complete_latency_ms: lat_stats.mean() / 1000.0,
                    p99_complete_latency_ms: lat_hist.quantile(0.99).unwrap_or(0.0) / 1000.0,
                    throughput: (acked - pa) as f64 / interval_s,
                };

                // Steady-state queue wait: swap out every task's interval
                // histogram and fold them into this tick's distribution.
                let mut qw_interval = LatencyHistogram::new();
                for slot in &shared.queue_wait {
                    let taken = std::mem::take(&mut slot.lock().1);
                    qw_interval.merge(&taken);
                }
                let qw_p99_us = qw_interval.quantile(0.99).unwrap_or(0.0);
                shared
                    .queue_wait_last_p99_bits
                    .store(qw_p99_us.to_bits(), Ordering::Relaxed);

                // AIMD throttle: multiplicative decrease when the interval's
                // queue-wait p99 overshoots the target, additive increase
                // when it sits comfortably below half of it.
                if shared.rt.adaptive_throttle {
                    let target_us = shared.rt.throttle_target_queue_wait.as_secs_f64() * 1e6;
                    let cap = shared.rate_cap();
                    if qw_p99_us > target_us {
                        // First decrease from uncapped starts at the spout
                        // rate actually observed this interval (INFINITY has
                        // no meaningful multiple).
                        let base = if cap.is_finite() {
                            cap
                        } else {
                            (topo_stats.spout_emitted as f64 / interval_s)
                                .max(shared.rt.throttle_min_rate)
                        };
                        let new_cap = (base * shared.rt.throttle_decrease_factor)
                            .clamp(shared.rt.throttle_min_rate, shared.rt.throttle_max_rate);
                        if new_cap != cap {
                            shared.set_rate_cap(new_cap, "aimd");
                        }
                    } else if cap.is_finite() && qw_p99_us < target_us / 2.0 {
                        let new_cap = (cap + shared.rt.throttle_additive_increase)
                            .min(shared.rt.throttle_max_rate);
                        if new_cap != cap {
                            shared.set_rate_cap(new_cap, "aimd");
                        }
                    }
                }

                let snapshot = MetricsSnapshot {
                    interval,
                    time_s: shared.now_s(),
                    interval_s,
                    tasks,
                    workers,
                    machines,
                    topology: topo_stats,
                };
                mirror.update(&shared, &snapshot, &lat_hist);
                if let Some(hook) = hook.as_mut() {
                    hook(&snapshot);
                }
                let cap = cfg.metrics_history_cap;
                if cap > 0 && history.len() >= cap && !history_truncated {
                    history_truncated = true;
                    shared.journal.append(JournalEvent::HistoryTruncated {
                        time_s: shared.now_s(),
                        retained: cap,
                    });
                }
                history.push(snapshot);
                interval += 1;
            }
            history
        }))
    };

    Ok(RunningTopology {
        shared,
        supervision,
        supervisor_thread,
        metrics_thread,
        config,
        registry,
        metrics_server,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Bolt, BoltOutput, Spout, SpoutOutput, TopologyContext};
    use crate::stream::StreamId;
    use crate::topology::TopologyBuilder;
    use crate::tuple::{Tuple, Value};
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    struct FiniteSpout {
        left: u64,
        next_id: u64,
    }

    impl Spout for FiniteSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            if self.left == 0 {
                return false;
            }
            self.left -= 1;
            self.next_id += 1;
            out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
            true
        }
    }

    struct Accumulator {
        sum: Arc<StdAtomicU64>,
    }

    impl Bolt for Accumulator {
        fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
            let v = t.get(0).unwrap().as_i64().unwrap() as u64;
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    fn accumulator_run(n: u64, rt_cfg: RtConfig) -> (Arc<StdAtomicU64>, ThreadedReport) {
        let sum = Arc::new(StdAtomicU64::new(0));
        let s2 = sum.clone();
        let mut b = TopologyBuilder::new("threaded");
        b.set_spout("s", 1, move || FiniteSpout {
            left: n,
            next_id: 0,
        })
        .unwrap();
        b.set_bolt("acc", 4, move || Accumulator { sum: s2.clone() })
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        let topo = b.build().unwrap();
        let mut cfg = EngineConfig::default().with_cluster(2, 2, 4);
        cfg.metrics_interval_s = 0.2;
        let running = submit_with(topo, cfg, rt_cfg).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        while running.acked() < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let (_, report) = running.shutdown();
        (sum, report)
    }

    #[test]
    fn threaded_runtime_processes_all_tuples() {
        let sum = Arc::new(StdAtomicU64::new(0));
        let s2 = sum.clone();
        let n: u64 = 2000;
        let mut b = TopologyBuilder::new("threaded");
        b.set_spout("s", 1, move || FiniteSpout {
            left: n,
            next_id: 0,
        })
        .unwrap();
        b.set_bolt("acc", 4, move || Accumulator { sum: s2.clone() })
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        let topo = b.build().unwrap();
        let mut cfg = EngineConfig::default().with_cluster(2, 2, 4);
        cfg.metrics_interval_s = 0.2;
        let running = submit(topo, cfg).unwrap();
        // Wait for completion.
        let deadline = Instant::now() + Duration::from_secs(20);
        while running.acked() < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        // Let at least one metrics interval elapse before shutting down.
        std::thread::sleep(Duration::from_millis(300));
        let (history, report) = running.shutdown();
        assert_eq!(report.acked, n, "all tuple trees acked");
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        assert_eq!(report.failed, 0);
        assert_eq!(report.task_panics, 0);
        assert_eq!(report.task_restarts, 0);
        assert_eq!(report.tracked, n);
        assert!(report.conservation_holds(), "healthy run conserves tuples");
        assert!(report.avg_complete_latency_ms >= 0.0);
        assert!(!history.is_empty(), "metrics snapshots collected");
        // Satellite check: worker tuple counters are wired, not hardcoded.
        let total_in: u64 = history
            .iter()
            .flat_map(|s| s.workers.iter())
            .map(|w| w.tuples_in)
            .sum();
        assert!(total_in > 0, "worker tuples_in must be reported");
    }

    #[test]
    fn batched_runtime_processes_all_tuples() {
        let n: u64 = 2000;
        for batch_size in [8usize, 64] {
            let rt_cfg = RtConfig::default()
                .with_batch_size(batch_size)
                .with_linger(Duration::from_millis(2));
            let (sum, report) = accumulator_run(n, rt_cfg);
            assert_eq!(report.acked, n, "batch_size {batch_size}: all trees acked");
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
            assert_eq!(report.failed, 0);
            assert_eq!(report.timed_out, 0, "batching must not orphan trees");
        }
    }

    #[test]
    fn batch_size_one_matches_unbatched_results() {
        let n: u64 = 1000;
        let (sum, report) = accumulator_run(n, RtConfig::default());
        assert_eq!(report.acked, n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        assert_eq!(report.failed, 0);
        assert_eq!(report.timed_out, 0);
    }

    #[test]
    fn linger_flushes_partial_batches() {
        // Batch size far above the tuple count: only the linger deadline can
        // push tuples out.
        let n: u64 = 50;
        let rt_cfg = RtConfig::default()
            .with_batch_size(4096)
            .with_linger(Duration::from_millis(1));
        let (sum, report) = accumulator_run(n, rt_cfg);
        assert_eq!(report.acked, n, "linger must flush partial batches");
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        assert_eq!(report.timed_out, 0);
    }

    #[test]
    fn threaded_dynamic_reroute() {
        // Each task learns its index in `prepare` and counts its tuples.
        struct PerTask2 {
            hits: Arc<Vec<StdAtomicU64>>,
            my_index: usize,
        }
        impl Bolt for PerTask2 {
            fn prepare(&mut self, ctx: &TopologyContext) {
                self.my_index = ctx.task_index;
            }
            fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
                self.hits[self.my_index].fetch_add(1, Ordering::Relaxed);
            }
        }

        let hits: Arc<Vec<StdAtomicU64>> = Arc::new((0..3).map(|_| StdAtomicU64::new(0)).collect());
        let h2 = hits.clone();
        let mut b = TopologyBuilder::new("dyn-threaded");
        b.set_spout("s", 1, || FiniteSpout {
            left: 6000,
            next_id: 0,
        })
        .unwrap();
        b.set_bolt("sink", 3, move || PerTask2 {
            hits: h2.clone(),
            my_index: 0,
        })
        .unwrap()
        .dynamic_grouping("s")
        .unwrap();
        let topo = b.build().unwrap();
        let handle = topo
            .dynamic_handle("s", &StreamId::default(), "sink")
            .unwrap();
        // Immediately bypass task 1 before starting.
        handle
            .set_ratio(crate::grouping::dynamic::SplitRatio::new(vec![1.0, 0.0, 1.0]).unwrap())
            .unwrap();
        let running = submit(topo, EngineConfig::default().with_cluster(1, 2, 4)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        while running.acked() < 6000 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let (_, report) = running.shutdown();
        assert_eq!(report.acked, 6000);
        assert_eq!(
            hits[1].load(Ordering::Relaxed),
            0,
            "bypassed task got tuples"
        );
        assert_eq!(
            hits[0].load(Ordering::Relaxed) + hits[2].load(Ordering::Relaxed),
            6000
        );
    }
}

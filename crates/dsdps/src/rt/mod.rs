//! Threaded runtime: executes a topology on real OS threads.
//!
//! Every task runs on its own thread; tuples move through bounded crossbeam
//! channels (bounded capacity = natural backpressure).  The runtime exposes
//! the same observation surface as the simulator — periodic multilevel
//! [`MetricsSnapshot`]s — and the same actuation surface (the topology's
//! dynamic-grouping handles keep working because routers share the same
//! [`DynamicGroupingHandle`](crate::grouping::dynamic::DynamicGroupingHandle)s).
//!
//! The simulator is the substrate for the paper's experiments (deterministic
//! virtual time); this runtime exists so the same application code can run
//! for real, and is exercised by the examples and integration tests.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::acker::{Acker, Completion, RootId};
use crate::component::{BoltOutput, Emission, MessageId, SpoutOutput, TopologyContext};
use crate::config::EngineConfig;
use crate::error::Result;
use crate::grouping::{make_grouping, Grouping, GroupingSpec};
use crate::metrics::{
    LatencyHistogram, MachineStats, MetricsHistory, MetricsSnapshot, OnlineStats, TaskStats,
    TopologyStats, WorkerStats,
};
use crate::scheduler::{even_placement, MachineId, Placement, WorkerId};
use crate::stream::StreamId;
use crate::topology::{ComponentKind, TaskId, Topology};
use crate::tuple::{Fields, Tuple};

/// A tuple instance delivered to a task, with its acker anchor.
struct Delivered {
    tuple: Tuple,
    anchor: Option<(RootId, u64)>,
}

/// Message to a spout thread about one of its tuple trees.
enum AckMsg {
    Ack(MessageId),
    Fail(MessageId),
}

/// Cumulative per-task counters (written by the task thread, read by the
/// metrics thread).
#[derive(Default)]
struct TaskAtomics {
    executed: AtomicU64,
    emitted: AtomicU64,
    failed: AtomicU64,
    busy_nanos: AtomicU64,
    queue_len: AtomicUsize,
}

/// Shared state between task threads and the metrics thread.
struct Shared {
    acker: Mutex<Acker>,
    stop: AtomicBool,
    task_stats: Vec<TaskAtomics>,
    /// In-flight tracked trees per spout task (indexed by global task id).
    pending: Vec<AtomicUsize>,
    acked_total: AtomicU64,
    failed_total: AtomicU64,
    timed_out_total: AtomicU64,
    spout_emitted_total: AtomicU64,
    complete_us: Mutex<(OnlineStats, LatencyHistogram)>,
    start: Instant,
    next_root: AtomicU64,
}

impl Shared {
    fn now_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// One outbound route owned by a task thread.
struct OutRoute {
    stream: StreamId,
    fields: Fields,
    subscriber_base: usize,
    grouping: Box<dyn Grouping>,
    is_direct: bool,
}

/// Routes emissions from one task to downstream task channels.
struct Router {
    routes: Vec<OutRoute>,
    senders: Vec<Sender<Delivered>>,
    shared: Arc<Shared>,
    select_buf: Vec<usize>,
    task: usize,
}

impl Router {
    /// Routes one emission; returns delivered-instance count.
    fn route(&mut self, emission: &Emission, root: Option<RootId>) -> usize {
        let mut delivered = 0;
        for r in 0..self.routes.len() {
            {
                let route = &self.routes[r];
                if route.stream != emission.stream {
                    continue;
                }
                match (emission.direct_task, route.is_direct) {
                    (Some(_), false) | (None, true) => continue,
                    _ => {}
                }
            }
            self.select_buf.clear();
            match emission.direct_task {
                Some(idx) => self.select_buf.push(idx),
                None => {
                    let mut buf = std::mem::take(&mut self.select_buf);
                    self.routes[r].grouping.select(&emission.tuple, &mut buf);
                    self.select_buf = buf;
                }
            }
            for i in 0..self.select_buf.len() {
                let local = self.select_buf[i];
                let route = &self.routes[r];
                let dest = route.subscriber_base + local;
                let tuple = emission.tuple.rekeyed(route.fields.clone());
                let anchor = root.map(|root| {
                    let mut acker = self.shared.acker.lock();
                    let edge = acker.new_edge_id();
                    acker.on_emit(root, edge);
                    (root, edge)
                });
                // Blocking send = backpressure.  Bail out on shutdown.
                let mut msg = Delivered { tuple, anchor };
                loop {
                    match self.senders[dest].send_timeout(msg, Duration::from_millis(50)) {
                        Ok(()) => {
                            delivered += 1;
                            break;
                        }
                        Err(crossbeam::channel::SendTimeoutError::Timeout(back)) => {
                            if self.shared.stop.load(Ordering::Relaxed) {
                                break;
                            }
                            msg = back;
                        }
                        Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => break,
                    }
                }
            }
        }
        if delivered > 0 {
            self.shared.task_stats[self.task]
                .emitted
                .fetch_add(delivered as u64, Ordering::Relaxed);
        }
        delivered
    }
}

/// Drains completed trees (timeouts are handled by the metrics thread).
fn drain_acker_outcomes(shared: &Shared, ack_senders: &[Option<Sender<AckMsg>>]) {
    let outcomes = shared.acker.lock().drain_outcomes();
    deliver_outcomes(shared, ack_senders, outcomes);
}

fn deliver_outcomes(
    shared: &Shared,
    ack_senders: &[Option<Sender<AckMsg>>],
    outcomes: Vec<crate::acker::TreeOutcome>,
) {
    for o in outcomes {
        let spout = o.spout_task.0;
        shared.pending[spout].fetch_sub(1, Ordering::Relaxed);
        let latency_us = o.complete_latency() * 1e6;
        match o.completion {
            Completion::Acked => {
                shared.acked_total.fetch_add(1, Ordering::Relaxed);
                let mut lat = shared.complete_us.lock();
                lat.0.update(latency_us);
                lat.1.record(latency_us);
                if let Some(tx) = &ack_senders[spout] {
                    let _ = tx.send(AckMsg::Ack(o.message_id));
                }
            }
            Completion::Failed => {
                shared.failed_total.fetch_add(1, Ordering::Relaxed);
                if let Some(tx) = &ack_senders[spout] {
                    let _ = tx.send(AckMsg::Fail(o.message_id));
                }
            }
            Completion::TimedOut => {
                shared.timed_out_total.fetch_add(1, Ordering::Relaxed);
                if let Some(tx) = &ack_senders[spout] {
                    let _ = tx.send(AckMsg::Fail(o.message_id));
                }
            }
        }
    }
}

/// A topology running on threads.  Dropping without calling
/// [`shutdown`](Self::shutdown) also stops it.
pub struct RunningTopology {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<MetricsHistory>>,
    config: EngineConfig,
}

impl RunningTopology {
    /// Seconds since the topology started.
    pub fn uptime_s(&self) -> f64 {
        self.shared.now_s()
    }

    /// Total tuple trees acked so far.
    pub fn acked(&self) -> u64 {
        self.shared.acked_total.load(Ordering::Relaxed)
    }

    /// Total spout tuples emitted so far.
    pub fn spout_emitted(&self) -> u64 {
        self.shared.spout_emitted_total.load(Ordering::Relaxed)
    }

    /// Stops all threads and returns the collected metrics history plus a
    /// final summary.
    pub fn shutdown(mut self) -> (MetricsHistory, ThreadedReport) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let history = self
            .metrics_thread
            .take()
            .map(|t| t.join().unwrap_or_default())
            .unwrap_or_default();
        let lat = self.shared.complete_us.lock();
        let report = ThreadedReport {
            uptime_s: self.shared.now_s(),
            spout_emitted: self.shared.spout_emitted_total.load(Ordering::Relaxed),
            acked: self.shared.acked_total.load(Ordering::Relaxed),
            failed: self.shared.failed_total.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out_total.load(Ordering::Relaxed),
            avg_complete_latency_ms: lat.0.mean() / 1000.0,
            p99_complete_latency_ms: lat.1.quantile(0.99).unwrap_or(0.0) / 1000.0,
        };
        drop(lat);
        (history, report)
    }

    /// Convenience: run for `duration` then shut down.
    pub fn run_for(self, duration: Duration) -> (MetricsHistory, ThreadedReport) {
        std::thread::sleep(duration);
        self.shutdown()
    }
}

impl Drop for RunningTopology {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.metrics_thread.take() {
            let _ = t.join();
        }
        let _ = &self.config;
    }
}

/// Final summary of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Wall-clock runtime in seconds.
    pub uptime_s: f64,
    /// Spout tuples emitted.
    pub spout_emitted: u64,
    /// Tuple trees acked.
    pub acked: u64,
    /// Tuple trees failed.
    pub failed: u64,
    /// Tuple trees timed out.
    pub timed_out: u64,
    /// Mean complete latency, ms.
    pub avg_complete_latency_ms: f64,
    /// p99 complete latency, ms.
    pub p99_complete_latency_ms: f64,
}

/// Starts `topology` on OS threads.  Returns a handle to observe and stop it.
pub fn submit(topology: Topology, config: EngineConfig) -> Result<RunningTopology> {
    submit_with_hook(topology, config, None)
}

/// [`submit`] with a control hook invoked on every metrics snapshot.
pub fn submit_with_hook(
    topology: Topology,
    config: EngineConfig,
    mut hook: Option<Box<dyn FnMut(&MetricsSnapshot) + Send>>,
) -> Result<RunningTopology> {
    config.validate()?;
    let placement: Placement = even_placement(&topology, &config)?;
    let n_tasks = topology.task_count();

    let shared = Arc::new(Shared {
        acker: Mutex::new(Acker::new()),
        stop: AtomicBool::new(false),
        task_stats: (0..n_tasks).map(|_| TaskAtomics::default()).collect(),
        pending: (0..n_tasks).map(|_| AtomicUsize::new(0)).collect(),
        acked_total: AtomicU64::new(0),
        failed_total: AtomicU64::new(0),
        timed_out_total: AtomicU64::new(0),
        spout_emitted_total: AtomicU64::new(0),
        complete_us: Mutex::new((OnlineStats::new(), LatencyHistogram::new())),
        start: Instant::now(),
        next_root: AtomicU64::new(0),
    });

    // Channels: tuple input per task, ack feedback per spout task.
    let mut senders = Vec::with_capacity(n_tasks);
    let mut receivers = Vec::with_capacity(n_tasks);
    for _ in 0..n_tasks {
        let (tx, rx) = bounded::<Delivered>(config.queue_capacity);
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let mut ack_senders: Vec<Option<Sender<AckMsg>>> = vec![None; n_tasks];
    let mut ack_receivers: Vec<Option<Receiver<AckMsg>>> = (0..n_tasks).map(|_| None).collect();
    for component in topology.components() {
        if component.is_spout() {
            for task in component.tasks() {
                let (tx, rx) = unbounded();
                ack_senders[task.0] = Some(tx);
                ack_receivers[task.0] = Some(rx);
            }
        }
    }
    let ack_senders = Arc::new(ack_senders);

    let mut threads = Vec::new();
    let task_names: Vec<(String, WorkerId)> = {
        let mut v = Vec::with_capacity(n_tasks);
        for component in topology.components() {
            for task in component.tasks() {
                v.push((component.name.clone(), placement.worker_of(task)));
            }
        }
        v
    };

    for component in topology.components() {
        for (task_index, task) in component.tasks().enumerate() {
            let tid = task.0;
            let ctx = TopologyContext {
                component: component.name.clone(),
                task_index,
                parallelism: component.parallelism,
            };
            // Per-task router.
            let mut routes = Vec::new();
            for decl in &component.outputs {
                for (sub, spec) in topology.subscribers_of(component.id, &decl.id) {
                    let handle = match spec {
                        GroupingSpec::Dynamic(_) => {
                            topology.dynamic_handle(&component.name, &decl.id, &sub.name)
                        }
                        _ => None,
                    };
                    routes.push(OutRoute {
                        stream: decl.id.clone(),
                        fields: decl.fields.clone(),
                        subscriber_base: sub.base_task.0,
                        grouping: make_grouping(spec, sub.parallelism, &decl.fields, task_index, handle),
                        is_direct: matches!(spec, GroupingSpec::Direct),
                    });
                }
            }
            let mut router = Router {
                routes,
                senders: senders.clone(),
                shared: shared.clone(),
                select_buf: Vec::new(),
                task: tid,
            };
            let shared = shared.clone();
            let ack_senders = ack_senders.clone();
            let cfg = config.clone();

            match &component.kind {
                ComponentKind::Spout(factory) => {
                    let mut spout = factory();
                    let ack_rx = ack_receivers[tid].take().expect("spout ack channel");
                    threads.push(std::thread::spawn(move || {
                        spout.open(&ctx);
                        let mut out = SpoutOutput::new();
                        while !shared.stop.load(Ordering::Relaxed) {
                            // Deliver ack/fail feedback first.
                            while let Ok(msg) = ack_rx.try_recv() {
                                match msg {
                                    AckMsg::Ack(id) => spout.ack(id),
                                    AckMsg::Fail(id) => spout.fail(id),
                                }
                            }
                            if cfg.ack_enabled
                                && shared.pending[tid].load(Ordering::Relaxed)
                                    >= cfg.max_spout_pending
                            {
                                std::thread::sleep(Duration::from_micros(200));
                                continue;
                            }
                            out.set_now(shared.now_s());
                            let t0 = Instant::now();
                            let keep = spout.next_tuple(&mut out);
                            let emissions = out.drain();
                            if emissions.is_empty() {
                                if !keep {
                                    break;
                                }
                                std::thread::sleep(Duration::from_micros(500));
                                continue;
                            }
                            let n = emissions.len() as u64;
                            for emission in emissions {
                                let root = match emission.message_id {
                                    Some(message_id) if cfg.ack_enabled => {
                                        let root =
                                            shared.next_root.fetch_add(1, Ordering::Relaxed) + 1;
                                        shared.acker.lock().track(
                                            root,
                                            0,
                                            TaskId(tid),
                                            message_id,
                                            shared.now_s(),
                                        );
                                        shared.pending[tid].fetch_add(1, Ordering::Relaxed);
                                        Some(root)
                                    }
                                    _ => None,
                                };
                                let delivered = router.route(&emission, root);
                                if delivered == 0 {
                                    if let Some(root) = root {
                                        shared.acker.lock().on_ack(root, 0, shared.now_s());
                                    }
                                }
                            }
                            shared.spout_emitted_total.fetch_add(n, Ordering::Relaxed);
                            let s = &shared.task_stats[tid];
                            s.executed.fetch_add(n, Ordering::Relaxed);
                            s.busy_nanos
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            drain_acker_outcomes(&shared, &ack_senders);
                            if !keep {
                                break;
                            }
                        }
                        spout.close();
                    }));
                }
                ComponentKind::Bolt(factory) => {
                    let mut bolt = factory();
                    let rx = receivers[tid].take().expect("bolt input channel");
                    let tick = if cfg.tick_interval_s > 0.0 {
                        Duration::from_secs_f64(cfg.tick_interval_s)
                    } else {
                        Duration::from_millis(100)
                    };
                    let ticks_enabled = cfg.tick_interval_s > 0.0;
                    threads.push(std::thread::spawn(move || {
                        bolt.prepare(&ctx);
                        let mut out = BoltOutput::new();
                        let mut last_tick = Instant::now();
                        loop {
                            match rx.recv_timeout(Duration::from_millis(20)) {
                                Ok(delivered) => {
                                    shared.task_stats[tid]
                                        .queue_len
                                        .store(rx.len(), Ordering::Relaxed);
                                    out.set_now(shared.now_s());
                                    let t0 = Instant::now();
                                    bolt.execute(&delivered.tuple, &mut out);
                                    let busy = t0.elapsed().as_nanos() as u64;
                                    let (emissions, failed) = out.drain();
                                    let root = delivered.anchor.map(|(r, _)| r);
                                    for emission in &emissions {
                                        let anchor = if emission.anchored { root } else { None };
                                        router.route(emission, anchor);
                                    }
                                    if let Some((root, edge)) = delivered.anchor {
                                        let mut acker = shared.acker.lock();
                                        if failed {
                                            acker.on_fail(root, shared.now_s());
                                        } else {
                                            acker.on_ack(root, edge, shared.now_s());
                                        }
                                        let outcomes = acker.drain_outcomes();
                                        drop(acker);
                                        deliver_outcomes(&shared, &ack_senders, outcomes);
                                    }
                                    let s = &shared.task_stats[tid];
                                    s.executed.fetch_add(1, Ordering::Relaxed);
                                    s.busy_nanos.fetch_add(busy, Ordering::Relaxed);
                                    if failed {
                                        s.failed.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(RecvTimeoutError::Timeout) => {
                                    if shared.stop.load(Ordering::Relaxed) {
                                        break;
                                    }
                                }
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                            if ticks_enabled && last_tick.elapsed() >= tick {
                                last_tick = Instant::now();
                                out.set_now(shared.now_s());
                                bolt.tick(&mut out);
                                let (emissions, _) = out.drain();
                                for emission in &emissions {
                                    router.route(emission, None);
                                }
                            }
                        }
                        bolt.cleanup();
                    }));
                }
            }
        }
    }
    drop(senders);

    // Metrics/timeout thread.
    let metrics_thread = {
        let shared = shared.clone();
        let cfg = config.clone();
        let ack_senders = ack_senders.clone();
        let placement = placement.clone();
        Some(std::thread::spawn(move || {
            let mut history = MetricsHistory::new(0);
            let mut prev: Vec<(u64, u64, u64, u64)> =
                vec![(0, 0, 0, 0); shared.task_stats.len()];
            let mut prev_totals = (0u64, 0u64, 0u64, 0u64);
            let mut interval: u64 = 0;
            let tick = Duration::from_secs_f64(cfg.metrics_interval_s);
            while !shared.stop.load(Ordering::Relaxed) {
                std::thread::sleep(tick.min(Duration::from_millis(50)));
                if shared.now_s() < (interval + 1) as f64 * cfg.metrics_interval_s {
                    continue;
                }
                // Message timeouts.
                if cfg.ack_enabled {
                    let outcomes = {
                        let mut acker = shared.acker.lock();
                        acker.expire(shared.now_s(), cfg.message_timeout_s);
                        acker.drain_outcomes()
                    };
                    deliver_outcomes(&shared, &ack_senders, outcomes);
                }

                let interval_s = cfg.metrics_interval_s;
                let tasks: Vec<TaskStats> = shared
                    .task_stats
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let executed = s.executed.load(Ordering::Relaxed);
                        let emitted = s.emitted.load(Ordering::Relaxed);
                        let failed = s.failed.load(Ordering::Relaxed);
                        let busy = s.busy_nanos.load(Ordering::Relaxed);
                        let (pe, pm, pf, pb) = prev[i];
                        prev[i] = (executed, emitted, failed, busy);
                        let d_exec = executed - pe;
                        let d_busy = busy - pb;
                        TaskStats {
                            task: TaskId(i),
                            component: task_names[i].0.clone(),
                            worker: task_names[i].1,
                            executed: d_exec,
                            emitted: emitted - pm,
                            acked: d_exec - (failed - pf),
                            failed: failed - pf,
                            avg_execute_latency_us: if d_exec > 0 {
                                d_busy as f64 / 1000.0 / d_exec as f64
                            } else {
                                0.0
                            },
                            queue_len: s.queue_len.load(Ordering::Relaxed),
                            capacity: d_busy as f64 / 1e9 / interval_s,
                        }
                    })
                    .collect();

                let workers: Vec<WorkerStats> = (0..placement.num_workers())
                    .map(|w| {
                        let wid = WorkerId(w);
                        let mine: Vec<&TaskStats> =
                            tasks.iter().filter(|t| t.worker == wid).collect();
                        let executed: u64 = mine.iter().map(|t| t.executed).sum();
                        let lat = if executed > 0 {
                            mine.iter()
                                .map(|t| t.avg_execute_latency_us * t.executed as f64)
                                .sum::<f64>()
                                / executed as f64
                        } else {
                            0.0
                        };
                        WorkerStats {
                            worker: wid,
                            machine: placement.machine_of(wid),
                            cpu_cores_used: mine.iter().map(|t| t.capacity).sum(),
                            memory_mb: 100.0
                                + mine.iter().map(|t| t.queue_len as f64 * 0.004).sum::<f64>(),
                            executed,
                            tuples_in: 0,
                            tuples_out: 0,
                            avg_execute_latency_us: lat,
                            num_tasks: mine.len(),
                        }
                    })
                    .collect();

                let machines: Vec<MachineStats> = (0..cfg.num_machines)
                    .map(|m| {
                        let mid = MachineId(m);
                        let used: f64 = workers
                            .iter()
                            .filter(|w| w.machine == mid)
                            .map(|w| w.cpu_cores_used)
                            .sum();
                        MachineStats {
                            machine: mid,
                            cpu_cores_used: used,
                            external_load_cores: 0.0,
                            cores: cfg.machine_cores,
                            num_workers: placement.workers_of_machine(mid).len(),
                        }
                    })
                    .collect();

                let acked = shared.acked_total.load(Ordering::Relaxed);
                let failed = shared.failed_total.load(Ordering::Relaxed);
                let timed_out = shared.timed_out_total.load(Ordering::Relaxed);
                let emitted = shared.spout_emitted_total.load(Ordering::Relaxed);
                let (pa, pf2, pt, pe2) = prev_totals;
                prev_totals = (acked, failed, timed_out, emitted);
                let lat = shared.complete_us.lock();
                let topo_stats = TopologyStats {
                    spout_emitted: emitted - pe2,
                    acked: acked - pa,
                    failed: failed - pf2,
                    timed_out: timed_out - pt,
                    avg_complete_latency_ms: lat.0.mean() / 1000.0,
                    p99_complete_latency_ms: lat.1.quantile(0.99).unwrap_or(0.0) / 1000.0,
                    throughput: (acked - pa) as f64 / interval_s,
                };
                drop(lat);

                let snapshot = MetricsSnapshot {
                    interval,
                    time_s: shared.now_s(),
                    interval_s,
                    tasks,
                    workers,
                    machines,
                    topology: topo_stats,
                };
                if let Some(hook) = hook.as_mut() {
                    hook(&snapshot);
                }
                history.push(snapshot);
                interval += 1;
            }
            history
        }))
    };

    Ok(RunningTopology {
        shared,
        threads,
        metrics_thread,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Bolt, Spout};
    use crate::topology::TopologyBuilder;
    use crate::tuple::Value;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    struct FiniteSpout {
        left: u64,
        next_id: u64,
    }

    impl Spout for FiniteSpout {
        fn next_tuple(&mut self, out: &mut SpoutOutput) -> bool {
            if self.left == 0 {
                return false;
            }
            self.left -= 1;
            self.next_id += 1;
            out.emit_with_id(Tuple::of([Value::from(self.next_id as i64)]), self.next_id);
            true
        }
    }

    struct Accumulator {
        sum: Arc<StdAtomicU64>,
    }

    impl Bolt for Accumulator {
        fn execute(&mut self, t: &Tuple, _o: &mut BoltOutput) {
            let v = t.get(0).unwrap().as_i64().unwrap() as u64;
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    #[test]
    fn threaded_runtime_processes_all_tuples() {
        let sum = Arc::new(StdAtomicU64::new(0));
        let s2 = sum.clone();
        let n: u64 = 2000;
        let mut b = TopologyBuilder::new("threaded");
        b.set_spout("s", 1, move || FiniteSpout { left: n, next_id: 0 })
            .unwrap();
        b.set_bolt("acc", 4, move || Accumulator { sum: s2.clone() })
            .unwrap()
            .shuffle_grouping("s")
            .unwrap();
        let topo = b.build().unwrap();
        let mut cfg = EngineConfig::default().with_cluster(2, 2, 4);
        cfg.metrics_interval_s = 0.2;
        let running = submit(topo, cfg).unwrap();
        // Wait for completion.
        let deadline = Instant::now() + Duration::from_secs(20);
        while running.acked() < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        // Let at least one metrics interval elapse before shutting down.
        std::thread::sleep(Duration::from_millis(300));
        let (history, report) = running.shutdown();
        assert_eq!(report.acked, n, "all tuple trees acked");
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        assert_eq!(report.failed, 0);
        assert!(report.avg_complete_latency_ms >= 0.0);
        assert!(!history.is_empty(), "metrics snapshots collected");
    }

    #[test]
    fn threaded_dynamic_reroute() {
        // Each task learns its index in `prepare` and counts its tuples.
        struct PerTask2 {
            hits: Arc<Vec<StdAtomicU64>>,
            my_index: usize,
        }
        impl Bolt for PerTask2 {
            fn prepare(&mut self, ctx: &TopologyContext) {
                self.my_index = ctx.task_index;
            }
            fn execute(&mut self, _t: &Tuple, _o: &mut BoltOutput) {
                self.hits[self.my_index].fetch_add(1, Ordering::Relaxed);
            }
        }

        let hits: Arc<Vec<StdAtomicU64>> =
            Arc::new((0..3).map(|_| StdAtomicU64::new(0)).collect());
        let h2 = hits.clone();
        let mut b = TopologyBuilder::new("dyn-threaded");
        b.set_spout("s", 1, || FiniteSpout {
            left: 6000,
            next_id: 0,
        })
        .unwrap();
        b.set_bolt("sink", 3, move || PerTask2 {
            hits: h2.clone(),
            my_index: 0,
        })
        .unwrap()
        .dynamic_grouping("s")
        .unwrap();
        let topo = b.build().unwrap();
        let handle = topo
            .dynamic_handle("s", &StreamId::default(), "sink")
            .unwrap();
        // Immediately bypass task 1 before starting.
        handle
            .set_ratio(crate::grouping::dynamic::SplitRatio::new(vec![1.0, 0.0, 1.0]).unwrap())
            .unwrap();
        let running = submit(topo, EngineConfig::default().with_cluster(1, 2, 4)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        while running.acked() < 6000 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let (_, report) = running.shutdown();
        assert_eq!(report.acked, 6000);
        assert_eq!(hits[1].load(Ordering::Relaxed), 0, "bypassed task got tuples");
        assert_eq!(
            hits[0].load(Ordering::Relaxed) + hits[2].load(Ordering::Relaxed),
            6000
        );
    }
}

//! Bounded-retry replay of failed tuple trees at the spout.
//!
//! With acking enabled the spout already learns about every failed or
//! timed-out tree; without replay it can only forward the bad news to user
//! code.  A [`ReplayBuffer`] caches the original emission of each tracked
//! message id so the runtime itself can re-emit a lost tree — up to
//! [`RtConfig::max_replays`](super::RtConfig::max_replays) times, with
//! exponential backoff (`replay_backoff × 2^attempt`) between attempts.
//!
//! The buffer lives in [`Shared`](super::Shared) (one per spout task), not
//! in the spout thread, so a supervisor-restarted spout keeps replaying
//! trees its predecessor emitted.  Every tracked message id stays in the
//! buffer until it is acked or its retries are exhausted, which is what the
//! shutdown conservation check counts as *in flight*:
//!
//! ```text
//! tracked == acked + permanently_failed + in_flight
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::component::{Emission, MessageId};
use crate::hash::FxHashMap;

/// What to do with a message whose tree just failed or timed out.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum FailDecision {
    /// A replay is scheduled; do not surface the failure to user code yet.
    Scheduled {
        /// Attempt number this schedule will become (1 = first replay).
        attempt: u32,
        /// Backoff delay before the re-emission fires.
        delay: Duration,
    },
    /// Retries exhausted: the message is permanently failed.
    Exhausted {
        /// Replay attempts consumed before giving up.
        attempts: u32,
    },
    /// The message was never tracked here (e.g. replay enabled mid-stream);
    /// surface the failure as-is.
    Untracked,
    /// The message was doomed by an approximate-mode restore
    /// ([`ReplayBuffer::doom_tracked_before`]): drop it without replaying
    /// and count it as permanently failed, but do not surface the failure
    /// to user code — the skip is the reported approximation error.
    Doomed,
}

struct Entry {
    /// The cached emission, shared with the spout loop (never deep-cloned:
    /// caching and replaying both bump the refcount).
    emission: Arc<Emission>,
    /// Replays already attempted (0 = original emission only).
    attempts: u32,
    /// When the next replay may fire; `None` while a tree is in flight.
    retry_at: Option<Instant>,
    /// Runtime clock when the message was (re-)tracked; the approximate
    /// recovery mode dooms entries tracked before its snapshot cutoff.
    tracked_at_s: f64,
    /// Marked by [`ReplayBuffer::doom_tracked_before`]: the next failure of
    /// this in-flight tree is skipped instead of replayed.
    doomed: bool,
}

/// Replay state of one spout task.
#[derive(Default)]
pub(crate) struct ReplayBuffer {
    entries: FxHashMap<MessageId, Entry>,
}

impl ReplayBuffer {
    /// Records a freshly tracked emission.  Returns `true` when the message
    /// id is new (first attempt), `false` when an existing entry was
    /// refreshed (a restarted spout re-emitting the same id).
    pub(crate) fn on_track(&mut self, id: MessageId, emission: Arc<Emission>, now_s: f64) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.emission = emission;
                e.retry_at = None;
                e.tracked_at_s = now_s;
                e.doomed = false;
                false
            }
            None => {
                self.entries.insert(
                    id,
                    Entry {
                        emission,
                        attempts: 0,
                        retry_at: None,
                        tracked_at_s: now_s,
                        doomed: false,
                    },
                );
                true
            }
        }
    }

    /// The message's tree completed: forget it.  Returns `true` when it was
    /// tracked.
    pub(crate) fn on_ack(&mut self, id: MessageId) -> bool {
        self.entries.remove(&id).is_some()
    }

    /// The message's tree failed or timed out: schedule a replay or give up.
    pub(crate) fn on_fail(
        &mut self,
        id: MessageId,
        max_replays: u32,
        backoff: Duration,
        now: Instant,
    ) -> FailDecision {
        match self.entries.get_mut(&id) {
            None => FailDecision::Untracked,
            Some(e) if e.doomed => {
                self.entries.remove(&id);
                FailDecision::Doomed
            }
            Some(e) if e.attempts >= max_replays => {
                let attempts = e.attempts;
                self.entries.remove(&id);
                FailDecision::Exhausted { attempts }
            }
            Some(e) => {
                let delay = backoff * 2u32.saturating_pow(e.attempts).min(1 << 16);
                e.attempts += 1;
                e.retry_at = Some(now + delay);
                FailDecision::Scheduled {
                    attempt: e.attempts,
                    delay,
                }
            }
        }
    }

    /// Takes every message whose backoff has elapsed (with its attempt
    /// number); the entries stay tracked (marked in flight) until acked or
    /// failed again.
    pub(crate) fn take_due(&mut self, now: Instant) -> Vec<(MessageId, Arc<Emission>, u32)> {
        let mut due = Vec::new();
        for (id, e) in self.entries.iter_mut() {
            if matches!(e.retry_at, Some(at) if at <= now) {
                e.retry_at = None;
                due.push((*id, Arc::clone(&e.emission), e.attempts));
            }
        }
        due
    }

    /// Earliest scheduled replay, if any (lets an idle spout sleep exactly
    /// long enough).
    pub(crate) fn next_due(&self) -> Option<Instant> {
        self.entries.values().filter_map(|e| e.retry_at).min()
    }

    /// Dooms every message tracked before `cutoff_s` (an approximate-mode
    /// restore skipping pre-snapshot replays).  Entries already awaiting a
    /// scheduled replay are dropped immediately and counted in the returned
    /// total; in-flight entries are marked so their eventual failure or
    /// timeout yields [`FailDecision::Doomed`] instead of a replay.  Acks of
    /// doomed in-flight trees still complete normally.
    pub(crate) fn doom_tracked_before(&mut self, cutoff_s: f64) -> usize {
        let mut dropped = 0;
        self.entries.retain(|_, e| {
            if e.tracked_at_s >= cutoff_s {
                return true;
            }
            if e.retry_at.is_some() {
                dropped += 1;
                false
            } else {
                e.doomed = true;
                true
            }
        });
        dropped
    }

    /// Messages still tracked: in flight or awaiting a replay.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamId;
    use crate::tuple::{Tuple, Value};

    fn emission(id: MessageId) -> Arc<Emission> {
        Arc::new(Emission {
            stream: StreamId::default(),
            tuple: Tuple::of([Value::from(id as i64)]),
            message_id: Some(id),
            direct_task: None,
            anchored: true,
        })
    }

    #[test]
    fn ack_forgets_and_fail_schedules() {
        let mut b = ReplayBuffer::default();
        let t0 = Instant::now();
        assert!(b.on_track(1, emission(1), 0.0));
        assert!(b.on_track(2, emission(2), 0.0));
        assert!(b.on_ack(1));
        assert!(!b.on_ack(1), "double ack is a no-op");
        assert_eq!(b.len(), 1);

        let d = b.on_fail(2, 3, Duration::from_millis(10), t0);
        assert_eq!(
            d,
            FailDecision::Scheduled {
                attempt: 1,
                delay: Duration::from_millis(10)
            }
        );
        assert!(b.take_due(t0).is_empty(), "backoff not elapsed");
        let due = b.take_due(t0 + Duration::from_millis(11));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 2);
        assert!(
            b.take_due(t0 + Duration::from_secs(10)).is_empty(),
            "taken entries are in flight, not due"
        );
        assert_eq!(b.len(), 1, "still tracked until acked");
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let mut b = ReplayBuffer::default();
        let t0 = Instant::now();
        let base = Duration::from_millis(10);
        b.on_track(7, emission(7), 0.0);
        b.on_fail(7, 10, base, t0);
        assert_eq!(b.next_due(), Some(t0 + base));
        b.take_due(t0 + base);
        b.on_fail(7, 10, base, t0);
        assert_eq!(b.next_due(), Some(t0 + base * 2), "second attempt waits 2x");
        b.take_due(t0 + base * 2);
        b.on_fail(7, 10, base, t0);
        assert_eq!(b.next_due(), Some(t0 + base * 4));
    }

    #[test]
    fn retries_exhaust() {
        let mut b = ReplayBuffer::default();
        let t0 = Instant::now();
        b.on_track(9, emission(9), 0.0);
        assert_eq!(
            b.on_fail(9, 2, Duration::ZERO, t0),
            FailDecision::Scheduled {
                attempt: 1,
                delay: Duration::ZERO
            },
            "replay 1"
        );
        let due = b.take_due(t0);
        assert_eq!(due[0].2, 1, "take_due reports the attempt number");
        assert_eq!(
            b.on_fail(9, 2, Duration::ZERO, t0),
            FailDecision::Scheduled {
                attempt: 2,
                delay: Duration::ZERO
            },
            "replay 2"
        );
        b.take_due(t0);
        assert_eq!(
            b.on_fail(9, 2, Duration::ZERO, t0),
            FailDecision::Exhausted { attempts: 2 }
        );
        assert!(b.is_empty(), "exhausted entries are dropped");
        assert_eq!(
            b.on_fail(9, 2, Duration::ZERO, t0),
            FailDecision::Untracked,
            "unknown ids are the caller's problem"
        );
    }

    #[test]
    fn doom_drops_scheduled_and_marks_in_flight() {
        let mut b = ReplayBuffer::default();
        let t0 = Instant::now();
        b.on_track(1, emission(1), 0.5); // in flight, pre-cutoff
        b.on_track(2, emission(2), 0.6); // will be awaiting a replay
        b.on_track(3, emission(3), 2.0); // post-cutoff, untouched
        b.on_fail(2, 5, Duration::from_millis(1), t0);

        assert_eq!(b.doom_tracked_before(1.0), 1, "scheduled replay dropped");
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.on_fail(1, 5, Duration::ZERO, t0),
            FailDecision::Doomed,
            "in-flight pre-cutoff failure is skipped"
        );
        assert!(matches!(
            b.on_fail(3, 5, Duration::ZERO, t0),
            FailDecision::Scheduled { .. }
        ));
        assert!(
            b.take_due(t0 + Duration::from_secs(1))
                .iter()
                .all(|d| d.0 == 3),
            "only the post-cutoff entry replays"
        );

        // Acks of doomed in-flight trees still complete normally.
        let mut b2 = ReplayBuffer::default();
        b2.on_track(9, emission(9), 0.0);
        b2.doom_tracked_before(1.0);
        assert!(b2.on_ack(9));
        assert!(b2.is_empty());
    }

    #[test]
    fn retrack_refreshes_entry() {
        let mut b = ReplayBuffer::default();
        let t0 = Instant::now();
        b.on_track(3, emission(3), 0.0);
        b.on_fail(3, 5, Duration::from_millis(1), t0);
        assert!(!b.on_track(3, emission(3), 1.0), "same id is not new");
        assert!(
            b.take_due(t0 + Duration::from_secs(1)).is_empty(),
            "retrack clears the pending replay"
        );
    }
}

//! Credit-based per-edge flow control.
//!
//! Every bolt task owns a **credit pool**.  At submit time the runtime
//! grants each pool an initial window of batch credits (one credit = the
//! right to put one batch on that task's input queue).  A producer must
//! acquire a credit *before* it sends a batch downstream; the consumer
//! grants one credit back after it has processed a batch.  The number of
//! batches queued or in flight toward a task is therefore bounded by the
//! window — independent of the channel capacity — and a sender that finds
//! the pool empty either **blocks** (polling with heartbeats, the default)
//! or **sheds** the batch (failing its anchored trees so the acker and
//! replay machinery account for every tuple).
//!
//! The ledger lives in [`Shared`](super::Shared), not in any task thread,
//! so credit state survives supervisor restarts exactly like the replay
//! buffers.  Four monotone counters per pool make the accounting auditable:
//!
//! ```text
//! granted == consumed + revoked + outstanding
//! ```
//!
//! where `outstanding` is the pool's currently `available` balance.  Grants
//! add to `granted` and `available`; a successful acquire moves one credit
//! from `available` to `consumed`; a revoke (window shrink) moves credits
//! from `available` to `revoked`.  `available` never goes negative: an
//! acquire only succeeds while the balance is positive, and a revoke only
//! takes what is actually available.  At shutdown, with every thread
//! joined, the identity is exact ([`CreditLedger::conservation_holds`]) —
//! the credit-plane mirror of the tuple-conservation invariant
//! `tracked == acked + permanently_failed + in_flight`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Aggregate snapshot of a [`CreditLedger`] (sums over every pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditTotals {
    /// Credits ever granted (initial windows, per-batch re-grants, window
    /// grows).
    pub granted: u64,
    /// Credits consumed by successful batch sends.
    pub consumed: u64,
    /// Credits taken back by window shrinks.
    pub revoked: u64,
    /// Credits currently available to senders.
    pub outstanding: i64,
}

impl CreditTotals {
    /// The conservation identity `granted == consumed + revoked +
    /// outstanding`.  Exact when no thread is mutating the ledger (e.g.
    /// after shutdown); transiently off by in-progress updates otherwise.
    pub fn conservation_holds(&self) -> bool {
        self.granted as i64 == self.consumed as i64 + self.revoked as i64 + self.outstanding
    }
}

/// One task's credit pool.
#[derive(Debug, Default)]
struct CreditPool {
    /// Credits available to senders right now.  Never negative.
    available: AtomicI64,
    /// Monotone: total credits ever granted.
    granted: AtomicU64,
    /// Monotone: total credits consumed by sends.
    consumed: AtomicU64,
    /// Monotone: total credits revoked by window shrinks.
    revoked: AtomicU64,
    /// Current target window (what `set_window` last established).
    window: AtomicU64,
}

/// Per-task credit accounting for one running topology.
///
/// All operations are lock-free atomics; producers and the one consumer of
/// a pool may call concurrently.  See the module docs for the protocol and
/// the conservation identity.
#[derive(Debug)]
pub struct CreditLedger {
    pools: Vec<CreditPool>,
}

impl CreditLedger {
    /// A ledger with one (empty) pool per task.  Pools start with zero
    /// credits; the runtime grants each consumer task its initial window.
    pub fn new(n_tasks: usize) -> Self {
        CreditLedger {
            pools: (0..n_tasks).map(|_| CreditPool::default()).collect(),
        }
    }

    /// Number of pools (tasks).
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// True when the ledger has no pools.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Grants `n` credits to `task`'s pool (initial window, per-batch
    /// re-grant, or window grow).
    pub fn grant(&self, task: usize, n: u64) {
        if n == 0 {
            return;
        }
        let pool = &self.pools[task];
        pool.granted.fetch_add(n, Ordering::Relaxed);
        pool.available.fetch_add(n as i64, Ordering::Release);
    }

    /// Tries to consume one credit from `task`'s pool.  Returns `false`
    /// when the pool is empty (the caller blocks or sheds).
    pub fn try_acquire(&self, task: usize) -> bool {
        let pool = &self.pools[task];
        let mut avail = pool.available.load(Ordering::Acquire);
        loop {
            if avail <= 0 {
                return false;
            }
            match pool.available.compare_exchange_weak(
                avail,
                avail - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    pool.consumed.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(cur) => avail = cur,
            }
        }
    }

    /// Atomically consumes `n` credits from `task`'s pool — all or
    /// nothing.  `try_acquire_n(task, 1)` is [`try_acquire`](Self::try_acquire);
    /// batched senders (the distributed transport reserving a whole frame
    /// of tuples at once) use larger `n` so a frame is never half-credited.
    /// `n == 0` trivially succeeds.
    pub fn try_acquire_n(&self, task: usize, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let n = n as i64;
        let pool = &self.pools[task];
        let mut avail = pool.available.load(Ordering::Acquire);
        loop {
            if avail < n {
                return false;
            }
            match pool.available.compare_exchange_weak(
                avail,
                avail - n,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    pool.consumed.fetch_add(n as u64, Ordering::Relaxed);
                    return true;
                }
                Err(cur) => avail = cur,
            }
        }
    }

    /// Takes up to `n` *available* credits out of `task`'s pool (window
    /// shrink).  Returns how many were actually revoked — never more than
    /// the current balance, so `available` stays non-negative.
    pub fn revoke(&self, task: usize, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let pool = &self.pools[task];
        let mut avail = pool.available.load(Ordering::Acquire);
        loop {
            let take = avail.min(n as i64);
            if take <= 0 {
                return 0;
            }
            match pool.available.compare_exchange_weak(
                avail,
                avail - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    pool.revoked.fetch_add(take as u64, Ordering::Relaxed);
                    return take as u64;
                }
                Err(cur) => avail = cur,
            }
        }
    }

    /// Establishes `task`'s window, granting or revoking the difference
    /// from the previous target.  Returns `(granted, revoked)` deltas.  A
    /// shrink revokes at most the currently available balance: credits out
    /// with in-flight batches are returned by the consumer's re-grants and
    /// simply re-fill a smaller pool.
    pub fn set_window(&self, task: usize, window: u64) -> (u64, u64) {
        let pool = &self.pools[task];
        let old = pool.window.swap(window, Ordering::Relaxed);
        if window > old {
            let delta = window - old;
            self.grant(task, delta);
            (delta, 0)
        } else {
            (0, self.revoke(task, old - window))
        }
    }

    /// `task`'s current target window.
    pub fn window(&self, task: usize) -> u64 {
        self.pools[task].window.load(Ordering::Relaxed)
    }

    /// Credits currently available to senders of `task`.
    pub fn outstanding(&self, task: usize) -> i64 {
        self.pools[task].available.load(Ordering::Acquire)
    }

    /// Aggregate counters over every pool.
    pub fn totals(&self) -> CreditTotals {
        let mut t = CreditTotals {
            granted: 0,
            consumed: 0,
            revoked: 0,
            outstanding: 0,
        };
        for pool in &self.pools {
            t.granted += pool.granted.load(Ordering::Relaxed);
            t.consumed += pool.consumed.load(Ordering::Relaxed);
            t.revoked += pool.revoked.load(Ordering::Relaxed);
            t.outstanding += pool.available.load(Ordering::Acquire);
        }
        t
    }

    /// The conservation identity over the whole ledger; see
    /// [`CreditTotals::conservation_holds`].
    pub fn conservation_holds(&self) -> bool {
        self.totals().conservation_holds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_acquire_regrant_cycle() {
        let ledger = CreditLedger::new(2);
        ledger.grant(1, 4);
        assert_eq!(ledger.outstanding(1), 4);
        assert!(ledger.try_acquire(1));
        assert!(ledger.try_acquire(1));
        assert_eq!(ledger.outstanding(1), 2);
        // Consumer re-grants one per processed batch.
        ledger.grant(1, 1);
        assert_eq!(ledger.outstanding(1), 3);
        let t = ledger.totals();
        assert_eq!(t.granted, 5);
        assert_eq!(t.consumed, 2);
        assert!(t.conservation_holds());
    }

    #[test]
    fn acquire_n_is_all_or_nothing() {
        let ledger = CreditLedger::new(1);
        ledger.grant(0, 10);
        assert!(ledger.try_acquire_n(0, 0), "zero is free");
        assert!(ledger.try_acquire_n(0, 7));
        assert_eq!(ledger.outstanding(0), 3);
        assert!(!ledger.try_acquire_n(0, 4), "4 > 3 refuses whole batch");
        assert_eq!(ledger.outstanding(0), 3, "failed acquire takes nothing");
        assert!(ledger.try_acquire_n(0, 3));
        assert_eq!(ledger.outstanding(0), 0);
        let t = ledger.totals();
        assert_eq!(t.consumed, 10);
        assert!(t.conservation_holds());
    }

    #[test]
    fn acquire_fails_on_empty_pool_and_never_goes_negative() {
        let ledger = CreditLedger::new(1);
        assert!(!ledger.try_acquire(0), "empty pool must refuse");
        ledger.grant(0, 1);
        assert!(ledger.try_acquire(0));
        assert!(!ledger.try_acquire(0));
        assert_eq!(ledger.outstanding(0), 0);
        assert!(ledger.conservation_holds());
    }

    #[test]
    fn revoke_takes_at_most_available() {
        let ledger = CreditLedger::new(1);
        ledger.grant(0, 3);
        assert!(ledger.try_acquire(0));
        // 2 available; asking for 5 revokes only 2.
        assert_eq!(ledger.revoke(0, 5), 2);
        assert_eq!(ledger.outstanding(0), 0);
        let t = ledger.totals();
        assert_eq!((t.granted, t.consumed, t.revoked), (3, 1, 2));
        assert!(t.conservation_holds());
    }

    #[test]
    fn set_window_grants_and_revokes_deltas() {
        let ledger = CreditLedger::new(1);
        assert_eq!(ledger.set_window(0, 8), (8, 0));
        assert_eq!(ledger.window(0), 8);
        assert_eq!(ledger.set_window(0, 12), (4, 0));
        assert_eq!(ledger.set_window(0, 5), (0, 7));
        assert_eq!(ledger.outstanding(0), 5);
        assert!(ledger.conservation_holds());
    }

    #[test]
    fn concurrent_producers_conserve() {
        use std::sync::Arc;
        let ledger = Arc::new(CreditLedger::new(1));
        ledger.grant(0, 64);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = ledger.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for _ in 0..10_000 {
                    if l.try_acquire(0) {
                        got += 1;
                        // Pretend to be the consumer too: re-grant.
                        l.grant(0, 1);
                    }
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        let t = ledger.totals();
        assert_eq!(t.consumed, total);
        assert!(t.conservation_holds());
        assert!(t.outstanding >= 0);
    }
}

//! Checkpointed operator state with pluggable recovery guarantees.
//!
//! A supervisor restart used to rebuild a task from its component factory,
//! so windowed counts and any other accumulated bolt state silently died
//! and recomputed from nothing — replay only covers in-flight tuples.
//! This module closes that gap:
//!
//! * [`StatefulComponent`] is the snapshot surface a bolt exposes through
//!   [`Bolt::stateful`](crate::component::Bolt::stateful): encode the
//!   current state into a [`StateSnapshot`] (periodic **full** snapshots
//!   plus optional incremental **deltas**) and rebuild it from one.
//! * [`CheckpointStore`] keeps the latest checkpoint per task — base
//!   snapshot, ordered deltas, the exactly-once input log and replay-dedup
//!   ids — in memory, spilling large snapshot payloads to disk above a
//!   configurable threshold.  Entries are guarded by the depositing task's
//!   supervisor generation so a superseded-but-still-running thread can
//!   never clobber its replacement's checkpoints.
//! * [`RecoveryMode`] selects what a restart *means*: exactly-once effect
//!   (aligned snapshots + input-log re-execution + replay dedup),
//!   at-least-once (restore the latest snapshot, accept duplicates), or
//!   approximate (skip replay of pre-snapshot tuples and report the skip
//!   count as the error bound).
//!
//! The task loops drive the store cooperatively: a checkpoint is taken on
//! the task's own thread right after a batch's acks are applied, so the
//! snapshot is always aligned with the acked frontier of the sharded
//! acker.  See `DESIGN.md` §13 for the full architecture.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::component::MessageId;
use crate::dist::codec;
use crate::tuple::Tuple;

/// Whether a [`StateSnapshot`] captures the whole state or a delta since
/// the previous snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A complete, self-contained image of the component's state.
    Full,
    /// An incremental delta; applying the base full snapshot and every
    /// delta in deposit order reproduces the full state.
    Delta,
}

/// When set, [`StateSnapshot::encode`] writes JSON text instead of the
/// compact binary encoding.  See [`set_json_snapshot_fallback`].
static JSON_SNAPSHOT_FALLBACK: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Switches snapshot encoding between the compact binary value encoding
/// of [`crate::dist::codec`] (the default) and the legacy JSON text
/// encoding.  Decoding auto-detects either format by its first byte, so
/// the flag only affects newly taken snapshots — flipping it mid-run is
/// safe and previously spilled payloads stay readable.
///
/// The runtimes call this from [`RtConfig::json_snapshots`](super::RtConfig)
/// at submit; it is exposed directly for tools that encode snapshots
/// outside a running topology.
pub fn set_json_snapshot_fallback(enabled: bool) {
    JSON_SNAPSHOT_FALLBACK.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// An encoded image of one component's state.
///
/// The payload is an opaque byte string; [`StateSnapshot::encode`] and
/// [`StateSnapshot::decode`] wrap the workspace serde conventions so
/// components only deal in plain serializable values.  By default the
/// payload uses the wire codec's compact binary value encoding, marked by
/// a leading [`SNAPSHOT_MAGIC`](crate::dist::codec::SNAPSHOT_MAGIC) byte
/// (`0xC5`, a UTF-8 continuation byte no JSON text can start with);
/// [`set_json_snapshot_fallback`] reverts to JSON text.  `decode`
/// auto-detects the format, so stores can hold a mix of both.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSnapshot {
    /// Full image or incremental delta.
    pub kind: SnapshotKind,
    /// Encoded state payload.
    pub bytes: Vec<u8>,
}

impl StateSnapshot {
    /// Encodes a serializable value as a snapshot of the given kind.
    pub fn encode<T: Serialize>(kind: SnapshotKind, state: &T) -> StateSnapshot {
        if JSON_SNAPSHOT_FALLBACK.load(std::sync::atomic::Ordering::Relaxed) {
            let text = serde_json::to_string(state).expect("state encoding cannot fail");
            return StateSnapshot {
                kind,
                bytes: text.into_bytes(),
            };
        }
        let mut bytes = vec![codec::SNAPSHOT_MAGIC];
        codec::write_json_value(&mut bytes, &state.serialize_value());
        StateSnapshot { kind, bytes }
    }

    /// Decodes the snapshot payload back into a value, auto-detecting the
    /// binary or JSON text encoding.
    pub fn decode<T: Deserialize>(&self) -> Result<T, String> {
        if self.bytes.first() == Some(&codec::SNAPSHOT_MAGIC) {
            let mut d = codec::Dec::new(&self.bytes[1..]);
            let value = codec::read_json_value(&mut d)
                .map_err(|e| format!("snapshot decode failed: {e}"))?;
            if !d.is_done() {
                return Err("snapshot decode failed: trailing bytes".into());
            }
            return T::deserialize_value(&value)
                .map_err(|e| format!("snapshot decode failed: {e}"));
        }
        let text = std::str::from_utf8(&self.bytes)
            .map_err(|e| format!("snapshot payload is not UTF-8: {e}"))?;
        serde_json::from_str(text).map_err(|e| format!("snapshot decode failed: {e}"))
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// The snapshot/restore surface of a checkpointable component.
///
/// Implementors encode their state with [`StateSnapshot::encode`]; the
/// checkpoint coordinator decides *when* to snapshot and what guarantee a
/// restore provides (see [`RecoveryMode`]).
pub trait StatefulComponent {
    /// Captures a full snapshot of the current state.
    ///
    /// Takes `&mut self` so implementations maintaining incremental
    /// dirty-tracking can reset it when a full image is cut.
    fn snapshot(&mut self) -> StateSnapshot;

    /// Captures an incremental delta since the last `snapshot`/`delta`
    /// call, or `None` when the component only supports full snapshots
    /// (the coordinator then always takes full images).
    fn delta(&mut self) -> Option<StateSnapshot> {
        None
    }

    /// Rebuilds the state from a base full snapshot plus the deltas taken
    /// after it, in order.
    fn restore(&mut self, base: &StateSnapshot, deltas: &[StateSnapshot]) -> Result<(), String>;
}

/// The recovery guarantee a supervisor restart of a stateful task
/// provides, selected via
/// [`RtConfig::with_recovery_mode`](super::RtConfig::with_recovery_mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Snapshots aligned with the acked frontier, plus an input log of
    /// tuples applied since the last checkpoint and a replay-dedup set:
    /// the restarted task re-executes the log against the restored
    /// snapshot and filters duplicate replays, so its observable effects
    /// match a fault-free run (exact for a single stateful stage; see
    /// `DESIGN.md` §13 for the multi-stage caveat).
    ExactlyOnceEffect,
    /// Restore the latest snapshot and let the normal timeout/replay path
    /// re-send in-flight tuples.  Tuples acked at the last checkpoint
    /// boundary but re-sent by a rare ack/snapshot race may be applied
    /// twice.
    #[default]
    AtLeastOnce,
    /// Restore the latest snapshot but *skip* replaying tuples tracked
    /// before it was taken, trading result accuracy for recovery speed.
    /// Every skip is counted, so `approx_skipped` bounds the number of
    /// tuples missing from aggregation results.
    Approximate,
}

impl RecoveryMode {
    /// Stable lower-snake name used in the journal and bench output.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryMode::ExactlyOnceEffect => "exactly_once_effect",
            RecoveryMode::AtLeastOnce => "at_least_once",
            RecoveryMode::Approximate => "approximate",
        }
    }
}

/// One input tuple recorded in the exactly-once log: everything needed to
/// re-execute it against the restored snapshot.
#[derive(Debug, Clone)]
pub(crate) struct LoggedInput {
    /// The tuple as delivered to the bolt.
    pub tuple: Tuple,
    /// Runtime clock (seconds since submit) when it was applied.
    pub now_s: f64,
    /// Spout message id when the tuple is dedupable (tracked emissions).
    pub dedup: Option<MessageId>,
}

/// Where a stored snapshot payload lives.
#[derive(Debug)]
enum StoredPayload {
    /// Payload held in memory.
    Mem(Vec<u8>),
    /// Payload spilled to a file (large snapshots).
    File { path: PathBuf },
}

impl StoredPayload {
    fn read(&self) -> Option<Vec<u8>> {
        match self {
            StoredPayload::Mem(b) => Some(b.clone()),
            StoredPayload::File { path } => std::fs::read(path).ok(),
        }
    }
}

impl Drop for StoredPayload {
    fn drop(&mut self) {
        if let StoredPayload::File { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[derive(Debug)]
struct StoredSnapshot {
    kind: SnapshotKind,
    payload: StoredPayload,
}

impl StoredSnapshot {
    fn to_snapshot(&self) -> Option<StateSnapshot> {
        Some(StateSnapshot {
            kind: self.kind,
            bytes: self.payload.read()?,
        })
    }
}

/// The per-task checkpoint record inside the store.
struct TaskEntry {
    /// Supervisor generation of the last writer; deposits from older
    /// generations are rejected.
    generation: u64,
    /// Runtime clock when the newest snapshot (base or delta) was taken.
    taken_at_s: Option<f64>,
    base: Option<StoredSnapshot>,
    deltas: Vec<StoredSnapshot>,
    /// Exactly-once input log since the last snapshot (or since task
    /// start when no snapshot exists yet).
    input_log: Vec<LoggedInput>,
    /// Replay-dedup ids captured with the last snapshot.
    dedup: Vec<MessageId>,
}

impl TaskEntry {
    fn fresh(generation: u64) -> Self {
        TaskEntry {
            generation,
            taken_at_s: None,
            base: None,
            deltas: Vec::new(),
            input_log: Vec::new(),
            dedup: Vec::new(),
        }
    }
}

/// Everything [`CheckpointStore::load`] hands a restarting task.
pub(crate) struct Restored {
    /// Base full snapshot, when one was taken.
    pub base: Option<StateSnapshot>,
    /// Deltas deposited after the base, in order.
    pub deltas: Vec<StateSnapshot>,
    /// Exactly-once input log to re-execute after restoring the snapshot.
    pub input_log: Vec<LoggedInput>,
    /// Replay-dedup ids captured with the snapshot.
    pub dedup: Vec<MessageId>,
    /// Runtime clock when the newest snapshot was taken.
    pub taken_at_s: Option<f64>,
}

/// In-memory, spillable store of the latest checkpoint per task.
///
/// One entry per global task id; every access locks only that task's
/// entry, so checkpointing tasks never contend with each other.
pub(crate) struct CheckpointStore {
    entries: Vec<Mutex<Option<TaskEntry>>>,
    spill_dir: Option<PathBuf>,
    spill_threshold: usize,
    seq: AtomicU64,
}

impl CheckpointStore {
    /// A store for `n_tasks` tasks.  Snapshot payloads larger than
    /// `spill_threshold` bytes are written to `spill_dir` when it is set.
    pub(crate) fn new(n_tasks: usize, spill_threshold: usize, spill_dir: Option<PathBuf>) -> Self {
        CheckpointStore {
            entries: (0..n_tasks).map(|_| Mutex::new(None)).collect(),
            spill_dir,
            spill_threshold,
            seq: AtomicU64::new(0),
        }
    }

    fn stored(&self, task: usize, generation: u64, snap: StateSnapshot) -> StoredSnapshot {
        let kind = snap.kind;
        if snap.bytes.len() > self.spill_threshold {
            if let Some(dir) = &self.spill_dir {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                let path = dir.join(format!(
                    "ckpt_p{}_t{task}_g{generation}_{seq}.snap",
                    std::process::id()
                ));
                if std::fs::write(&path, &snap.bytes).is_ok() {
                    return StoredSnapshot {
                        kind,
                        payload: StoredPayload::File { path },
                    };
                }
            }
        }
        StoredSnapshot {
            kind,
            payload: StoredPayload::Mem(snap.bytes),
        }
    }

    /// Deposits a full snapshot, replacing the task's base, clearing its
    /// deltas, truncating the input log and installing the new dedup set.
    /// Returns the bytes written, or `None` when the deposit is stale
    /// (from a superseded generation).
    pub(crate) fn deposit_full(
        &self,
        task: usize,
        generation: u64,
        taken_at_s: f64,
        snap: StateSnapshot,
        dedup: Vec<MessageId>,
    ) -> Option<u64> {
        let mut slot = self.entries[task].lock().unwrap();
        let entry = slot.get_or_insert_with(|| TaskEntry::fresh(generation));
        if generation < entry.generation {
            return None;
        }
        entry.generation = generation;
        let bytes = snap.bytes.len() as u64;
        entry.base = Some(self.stored(task, generation, snap));
        entry.deltas.clear();
        entry.input_log.clear();
        entry.dedup = dedup;
        entry.taken_at_s = Some(taken_at_s);
        Some(bytes)
    }

    /// Deposits an incremental delta on top of the task's existing base,
    /// truncating the input log and installing the new dedup set.
    /// Returns the bytes written, or `None` when the deposit is stale,
    /// there is no base yet, or the base belongs to another generation
    /// (the caller must take a full snapshot instead).
    pub(crate) fn deposit_delta(
        &self,
        task: usize,
        generation: u64,
        taken_at_s: f64,
        snap: StateSnapshot,
        dedup: Vec<MessageId>,
    ) -> Option<u64> {
        let mut slot = self.entries[task].lock().unwrap();
        let entry = slot.as_mut()?;
        if generation != entry.generation || entry.base.is_none() {
            return None;
        }
        let bytes = snap.bytes.len() as u64;
        entry.deltas.push(self.stored(task, generation, snap));
        entry.input_log.clear();
        entry.dedup = dedup;
        entry.taken_at_s = Some(taken_at_s);
        Some(bytes)
    }

    /// Appends one applied input to the task's exactly-once log.  Returns
    /// the log length, or `None` when the append is stale.
    pub(crate) fn append_input(
        &self,
        task: usize,
        generation: u64,
        input: LoggedInput,
    ) -> Option<usize> {
        let mut slot = self.entries[task].lock().unwrap();
        let entry = slot.get_or_insert_with(|| TaskEntry::fresh(generation));
        if generation < entry.generation {
            return None;
        }
        entry.generation = generation;
        entry.input_log.push(input);
        Some(entry.input_log.len())
    }

    /// Loads the task's latest checkpoint for a restarting incarnation,
    /// claiming the entry for `claim_generation` so deposits from the
    /// superseded generation are rejected from now on.  Returns `None`
    /// when the task never checkpointed *and* never logged an input.
    pub(crate) fn load(&self, task: usize, claim_generation: u64) -> Option<Restored> {
        let mut slot = self.entries[task].lock().unwrap();
        let entry = slot.as_mut()?;
        entry.generation = entry.generation.max(claim_generation);
        if entry.base.is_none() && entry.input_log.is_empty() {
            return None;
        }
        let base = match &entry.base {
            Some(s) => Some(s.to_snapshot()?),
            None => None,
        };
        let deltas: Option<Vec<StateSnapshot>> =
            entry.deltas.iter().map(|d| d.to_snapshot()).collect();
        Some(Restored {
            base,
            deltas: deltas?,
            input_log: entry.input_log.clone(),
            dedup: entry.dedup.clone(),
            taken_at_s: entry.taken_at_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Tuple, Value};

    fn snap_of(kind: SnapshotKind, v: &Vec<(i64, i64)>) -> StateSnapshot {
        StateSnapshot::encode(kind, v)
    }

    #[test]
    fn encode_decode_round_trips() {
        let state = (Some(7u64), vec![("a".to_string(), 3u64)], 11u64);
        let snap = StateSnapshot::encode(SnapshotKind::Full, &state);
        assert_eq!(snap.kind, SnapshotKind::Full);
        assert!(!snap.is_empty());
        let back: (Option<u64>, Vec<(String, u64)>, u64) = snap.decode().unwrap();
        assert_eq!(back, state);
    }

    /// The default encoding is the compact binary one (magic byte), the
    /// fallback is JSON text, decode auto-detects both, and the binary
    /// payload of a realistic counter-map state is smaller.
    #[test]
    fn binary_and_json_snapshots_interoperate() {
        type State = Vec<(String, u64)>;
        let state: State = (0..64).map(|i| (format!("key-{i}"), i * 37)).collect();

        let binary = StateSnapshot::encode(SnapshotKind::Full, &state);
        assert_eq!(binary.bytes[0], codec::SNAPSHOT_MAGIC);
        assert_eq!(binary.decode::<State>().unwrap(), state);

        set_json_snapshot_fallback(true);
        let json = StateSnapshot::encode(SnapshotKind::Full, &state);
        set_json_snapshot_fallback(false);
        assert_ne!(json.bytes[0], codec::SNAPSHOT_MAGIC, "JSON text payload");
        assert!(std::str::from_utf8(&json.bytes).is_ok());
        assert_eq!(json.decode::<State>().unwrap(), state, "auto-detected");

        assert!(
            binary.len() < json.len(),
            "binary ({}) smaller than JSON ({})",
            binary.len(),
            json.len()
        );

        let mut corrupt = binary.clone();
        corrupt.bytes.truncate(corrupt.bytes.len() / 2);
        assert!(corrupt.decode::<State>().is_err(), "truncation is an error");
    }

    #[test]
    fn deposit_load_full_plus_deltas() {
        let store = CheckpointStore::new(2, usize::MAX, None);
        let base = vec![(1i64, 10i64)];
        let delta = vec![(2i64, 20i64)];
        assert!(store
            .deposit_full(0, 0, 1.0, snap_of(SnapshotKind::Full, &base), vec![7])
            .is_some());
        assert!(store
            .deposit_delta(0, 0, 1.5, snap_of(SnapshotKind::Delta, &delta), vec![7, 8])
            .is_some());
        let r = store.load(0, 1).expect("checkpoint present");
        assert_eq!(r.taken_at_s, Some(1.5));
        assert_eq!(r.dedup, vec![7, 8]);
        assert_eq!(r.base.unwrap().decode::<Vec<(i64, i64)>>().unwrap(), base);
        assert_eq!(r.deltas.len(), 1);
        assert_eq!(r.deltas[0].decode::<Vec<(i64, i64)>>().unwrap(), delta);
        assert!(store.load(1, 1).is_none(), "other task untouched");
    }

    #[test]
    fn stale_generation_deposits_rejected() {
        let store = CheckpointStore::new(1, usize::MAX, None);
        let v = vec![(1i64, 1i64)];
        assert!(store
            .deposit_full(0, 0, 1.0, snap_of(SnapshotKind::Full, &v), vec![])
            .is_some());
        // The replacement claims the entry at generation 1 …
        assert!(store.load(0, 1).is_some());
        // … so the superseded generation-0 thread can no longer write.
        assert!(store
            .deposit_full(0, 0, 2.0, snap_of(SnapshotKind::Full, &v), vec![])
            .is_none());
        assert!(store
            .deposit_delta(0, 0, 2.0, snap_of(SnapshotKind::Delta, &v), vec![])
            .is_none());
        assert!(store
            .append_input(
                0,
                0,
                LoggedInput {
                    tuple: Tuple::of([Value::from(1i64)]),
                    now_s: 2.0,
                    dedup: None,
                },
            )
            .is_none());
        // Generation 1 itself writes fine.
        assert!(store
            .deposit_full(0, 1, 3.0, snap_of(SnapshotKind::Full, &v), vec![])
            .is_some());
    }

    #[test]
    fn delta_without_base_rejected() {
        let store = CheckpointStore::new(1, usize::MAX, None);
        let v = vec![(1i64, 1i64)];
        assert!(store
            .deposit_delta(0, 0, 1.0, snap_of(SnapshotKind::Delta, &v), vec![])
            .is_none());
    }

    #[test]
    fn input_log_truncated_by_checkpoint_and_survives_load() {
        let store = CheckpointStore::new(1, usize::MAX, None);
        let input = |i: i64| LoggedInput {
            tuple: Tuple::of([Value::from(i)]),
            now_s: i as f64,
            dedup: Some(i as u64),
        };
        // Logged inputs are restorable even before any snapshot exists.
        assert_eq!(store.append_input(0, 0, input(1)), Some(1));
        assert_eq!(store.append_input(0, 0, input(2)), Some(2));
        let r = store.load(0, 1).expect("log alone is restorable");
        assert!(r.base.is_none());
        assert_eq!(r.input_log.len(), 2);
        assert_eq!(r.input_log[1].dedup, Some(2));
        // A full deposit truncates the log (its effects are in the image);
        // the load above claimed generation 1, so deposit as generation 1.
        let v = vec![(1i64, 1i64)];
        assert!(store
            .deposit_full(0, 1, 3.0, snap_of(SnapshotKind::Full, &v), vec![1, 2])
            .is_some());
        let r = store.load(0, 2).unwrap();
        assert!(r.input_log.is_empty());
        assert_eq!(r.dedup, vec![1, 2]);
    }

    #[test]
    fn large_snapshots_spill_to_disk_and_load_back() {
        let dir = std::env::temp_dir().join(format!("dsdps_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(1, 64, Some(dir.clone()));
        let big: Vec<(i64, i64)> = (0..256).map(|i| (i, i * 2)).collect();
        assert!(store
            .deposit_full(0, 0, 1.0, snap_of(SnapshotKind::Full, &big), vec![])
            .is_some());
        let spilled = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(spilled, 1, "payload above threshold must spill");
        let r = store.load(0, 1).unwrap();
        assert_eq!(r.base.unwrap().decode::<Vec<(i64, i64)>>().unwrap(), big);
        // Overwriting the base removes the spilled file.
        let small = vec![(1i64, 1i64)];
        assert!(store
            .deposit_full(0, 1, 2.0, snap_of(SnapshotKind::Full, &small), vec![])
            .is_some());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_mode_names_are_stable() {
        assert_eq!(
            RecoveryMode::ExactlyOnceEffect.as_str(),
            "exactly_once_effect"
        );
        assert_eq!(RecoveryMode::AtLeastOnce.as_str(), "at_least_once");
        assert_eq!(RecoveryMode::Approximate.as_str(), "approximate");
        assert_eq!(RecoveryMode::default(), RecoveryMode::AtLeastOnce);
    }
}

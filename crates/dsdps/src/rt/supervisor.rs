//! Panic isolation and supervision of task threads.
//!
//! Every task thread runs inside [`catch_unwind`]: a panic (from user code
//! or an injected fault) is recorded in the task's counters instead of
//! silently killing the thread.  When [`RtConfig::supervise`] is on, a
//! supervisor thread polls each task slot and restarts tasks that
//!
//! * **died** — the thread exited without marking itself finished (i.e. it
//!   panicked), or
//! * **hung** — the thread is nominally alive but its heartbeat is older
//!   than [`RtConfig::hang_timeout`].
//!
//! A restart builds a *fresh* component instance from the topology's
//! factory and re-wires it to the task's existing channel receiver (the
//! crossbeam receivers are clonable), so tuples queued while the task was
//! down are processed by the replacement.  Hung threads cannot be killed;
//! they are *superseded* — the slot's generation is bumped, and the old
//! thread retires itself at its next generation check.  Trees lost in the
//! crash time out at the acker and come back through the spout replay
//! buffer, which is owned by [`Shared`], not the thread.
//!
//! [`catch_unwind`]: std::panic::catch_unwind
//! [`RtConfig::supervise`]: super::RtConfig::supervise
//! [`RtConfig::hang_timeout`]: super::RtConfig::hang_timeout
//! [`Shared`]: super::Shared

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::component::TopologyContext;
use crate::config::EngineConfig;
use crate::telemetry::JournalEvent;
use crate::topology::{ComponentId, ComponentKind, Topology};

use super::batch::{AckMsg, Batch};
use super::config::RtConfig;
use super::router::Router;
use super::task;
use super::Shared;

/// Everything needed to (re)spawn one task on a fresh thread.
pub(super) struct TaskSpec {
    pub(super) topology: Arc<Topology>,
    pub(super) component_id: ComponentId,
    pub(super) task_index: usize,
    pub(super) tid: usize,
    /// Input receiver (bolts).  Cloned per spawn; clones share the queue.
    pub(super) input: Option<Receiver<Batch>>,
    /// Ack-feedback receiver (spouts).
    pub(super) ack_input: Option<Receiver<Vec<AckMsg>>>,
    pub(super) senders: Vec<Sender<Batch>>,
    pub(super) ack_senders: Arc<Vec<Option<Sender<Vec<AckMsg>>>>>,
    pub(super) cfg: EngineConfig,
    pub(super) rt_cfg: RtConfig,
}

impl TaskSpec {
    /// Spawns the task thread for `generation`, wrapped in panic isolation.
    /// The caller must have already published `generation` and `alive` in
    /// the task's atomics.
    pub(super) fn spawn(&self, shared: &Arc<Shared>, generation: u64) -> JoinHandle<()> {
        let component = self
            .topology
            .components()
            .find(|c| c.id == self.component_id)
            .expect("task spec component")
            .clone();
        let ctx = TopologyContext {
            component: component.name.clone(),
            task_index: self.task_index,
            parallelism: component.parallelism,
        };
        let router = Router::new(
            &self.topology,
            &component,
            self.task_index,
            self.tid,
            self.senders.clone(),
            shared.clone(),
            &self.rt_cfg,
        );
        let shared = shared.clone();
        let ack_senders = self.ack_senders.clone();
        let cfg = self.cfg.clone();
        let tid = self.tid;
        match &component.kind {
            ComponentKind::Spout(factory) => {
                let spout = factory();
                let ack_rx = self.ack_input.clone().expect("spout ack receiver");
                std::thread::spawn(move || {
                    guard(&shared, tid, generation, move |shared| {
                        task::run_spout(
                            spout,
                            ctx,
                            tid,
                            generation,
                            router,
                            shared,
                            ack_senders,
                            ack_rx,
                            cfg,
                        )
                    });
                })
            }
            ComponentKind::Bolt(factory) => {
                let bolt = factory();
                let rx = self.input.clone().expect("bolt input receiver");
                std::thread::spawn(move || {
                    guard(&shared, tid, generation, move |shared| {
                        task::run_bolt(
                            bolt,
                            ctx,
                            tid,
                            generation,
                            router,
                            shared,
                            ack_senders,
                            rx,
                            cfg,
                        )
                    });
                })
            }
        }
    }
}

/// Runs a task body under `catch_unwind`, recording panics and maintaining
/// the slot's liveness flags — but only while this thread still owns the
/// slot (a superseded thread must not clobber its replacement's state).
fn guard(shared: &Arc<Shared>, tid: usize, generation: u64, body: impl FnOnce(Arc<Shared>)) {
    let result = catch_unwind(AssertUnwindSafe(|| body(shared.clone())));
    let s = &shared.task_stats[tid];
    match result {
        Ok(()) => {
            if s.generation.load(Ordering::SeqCst) == generation {
                s.finished.store(true, Ordering::SeqCst);
            }
        }
        Err(payload) => {
            s.panics.fetch_add(1, Ordering::SeqCst);
            *s.last_panic.lock() = Some(panic_message(payload.as_ref()));
        }
    }
    if s.generation.load(Ordering::SeqCst) == generation {
        s.alive.store(false, Ordering::SeqCst);
    }
}

/// Best-effort text of a panic payload.
pub(super) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".into()
    }
}

/// One supervised task slot.
pub(super) struct Slot {
    pub(super) spec: TaskSpec,
    /// Handle of the current-generation thread.
    pub(super) handle: Option<JoinHandle<()>>,
    pub(super) generation: u64,
    /// Superseded (hung) threads.  They retire on their own once they notice
    /// the generation bump or shutdown; their handles are dropped unjoined
    /// at shutdown so a truly wedged thread cannot block it.
    pub(super) abandoned: Vec<JoinHandle<()>>,
}

/// Shared task-slot table: the submit path fills it, the supervisor thread
/// restarts through it, shutdown joins through it.
#[derive(Default)]
pub(crate) struct Supervision {
    pub(super) slots: Mutex<Vec<Slot>>,
}

/// Supervisor loop: polls task liveness and restarts dead/hung tasks until
/// shutdown.
pub(super) fn run_supervisor(shared: Arc<Shared>, sup: Arc<Supervision>, rt_cfg: RtConfig) {
    let poll = Duration::from_millis(10).min(rt_cfg.hang_timeout / 2);
    let hang_ns = rt_cfg.hang_timeout.as_nanos() as u64;
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        let mut slots = sup.slots.lock();
        let now_ns = shared.start.elapsed().as_nanos() as u64;
        for slot in slots.iter_mut() {
            if shared.stop.load(Ordering::Relaxed) {
                break;
            }
            let tid = slot.spec.tid;
            let s = &shared.task_stats[tid];
            if s.finished.load(Ordering::SeqCst) {
                continue;
            }
            let alive = s.alive.load(Ordering::SeqCst);
            let dead = !alive;
            let hung =
                alive && now_ns.saturating_sub(s.heartbeat_ns.load(Ordering::Relaxed)) > hang_ns;
            if !(dead || hung) {
                continue;
            }
            if s.restarts.load(Ordering::SeqCst) >= rt_cfg.max_restarts as u64 {
                continue;
            }
            // Supersede the old thread and restart from the factory.
            slot.generation += 1;
            shared.journal.append(JournalEvent::TaskRestart {
                time_s: shared.now_s(),
                task: tid,
                generation: slot.generation,
                reason: if dead { "dead" } else { "hung" }.to_string(),
            });
            s.generation.store(slot.generation, Ordering::SeqCst);
            s.restarts.fetch_add(1, Ordering::SeqCst);
            s.alive.store(true, Ordering::SeqCst);
            s.heartbeat_ns.store(now_ns, Ordering::Relaxed);
            match slot.handle.take() {
                Some(h) if dead => {
                    // Thread already exited; reap it (its panic is recorded).
                    let _ = h.join();
                }
                Some(h) => slot.abandoned.push(h),
                None => {}
            }
            slot.handle = Some(slot.spec.spawn(&shared, slot.generation));
        }
    }
}

//! Knobs specific to the threaded runtime.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use super::checkpoint::RecoveryMode;
use crate::error::{Error, Result};

/// Tuning parameters for the threaded runtime: tuple batching, task
/// supervision, and end-to-end replay.
///
/// **Batching.** Tuples routed to the same downstream task accumulate in a
/// per-destination output buffer and travel the channel as one `Vec` batch.
/// A buffer is flushed when it reaches [`batch_size`](Self::batch_size)
/// entries or when its oldest entry has waited [`linger`](Self::linger) —
/// whichever comes first — so batching trades at most `linger` of latency
/// for amortized channel and acker traffic.  The default `batch_size` of 1
/// flushes every tuple inline and reproduces the unbatched runtime behavior
/// exactly.
///
/// **Supervision.** With [`supervise`](Self::supervise) enabled (the
/// default) a supervisor thread watches every task's heartbeat: a task whose
/// thread died (panic) or stopped beating for
/// [`hang_timeout`](Self::hang_timeout) is superseded and restarted from its
/// component factory — a fresh component instance wired to the *same* input
/// channel, so queued tuples survive the crash.  Each task is restarted at
/// most [`max_restarts`](Self::max_restarts) times.
///
/// **Replay.** With [`max_replays`](Self::max_replays) > 0 and acking
/// enabled, the spout loop caches each tracked emission and re-emits trees
/// that fail or time out, waiting `replay_backoff × 2^attempt` between
/// attempts before declaring a message permanently failed.  The default of 0
/// preserves the classic fire-and-forget semantics where user code sees
/// every failure.
///
/// **Backpressure.** With [`credit_flow`](Self::credit_flow) enabled, every
/// bolt task grants a window of [`credit_window`](Self::credit_window) batch
/// credits; a producer acquires one credit per batch before sending and the
/// consumer re-grants after processing, so queued-plus-in-flight batches per
/// task are bounded by the window.  An exhausted pool makes the sender block
/// (default) or, with [`shed_on_overload`](Self::shed_on_overload), shed the
/// batch — failing its anchored trees so replay/conservation accounting
/// still sees every tuple.  Independently,
/// [`adaptive_throttle`](Self::adaptive_throttle) runs an AIMD controller
/// over the per-interval queue-wait p99 observed by the telemetry registry:
/// above [`throttle_target_queue_wait`](Self::throttle_target_queue_wait)
/// the global spout rate cap is multiplied by
/// [`throttle_decrease_factor`](Self::throttle_decrease_factor); well below
/// it, the cap grows by
/// [`throttle_additive_increase`](Self::throttle_additive_increase) per
/// interval.  Both features default **off**: the stock behavior is the
/// bounded-channel blocking send plus the `EngineConfig::max_spout_pending`
/// in-flight gate, unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct RtConfig {
    /// Maximum tuples per output batch (per destination task).  Must be at
    /// least 1; `1` disables batching.
    pub batch_size: usize,
    /// Longest a buffered tuple may wait before its batch is flushed even if
    /// not full.  Irrelevant when `batch_size == 1`.
    pub linger: Duration,
    /// Run the supervisor thread that restarts dead or hung tasks.
    pub supervise: bool,
    /// A task whose heartbeat is older than this is considered hung and
    /// superseded (when supervision is on).  Must exceed zero; keep it well
    /// above the longest legitimate single `execute` call.
    pub hang_timeout: Duration,
    /// Upper bound on supervisor restarts per task (guards against a
    /// component that panics immediately on every start).
    pub max_restarts: u32,
    /// Maximum runtime-level replays per message id (0 disables replay).
    pub max_replays: u32,
    /// Base delay before the first replay of a message; doubles per attempt.
    pub replay_backoff: Duration,
    /// Number of lock stripes in the acker (`root % acker_shards` picks the
    /// stripe).  Acks of different tuple trees only contend when their roots
    /// share a stripe, so this should be at least the number of concurrently
    /// acking tasks; `1` reproduces the single-global-acker behavior.
    pub acker_shards: usize,
    /// Fraction of tuple trees to trace end-to-end, in `[0, 1]`.  Sampling
    /// is a deterministic hash test on the tree's root id, so every thread
    /// agrees on the decision with no shared state.  `0` (the default)
    /// disables tracing at the cost of one branch per batch on the data
    /// plane; sampled trees record one [`crate::telemetry::Span`] per hop
    /// plus the terminal ack/fail/timeout event.
    pub trace_sample_rate: f64,
    /// When set, serve the live metrics registry as Prometheus text
    /// exposition over HTTP on this address (`None`, the default, binds
    /// nothing).  Port 0 picks a free port; the bound address is available
    /// from `RunningTopology::metrics_addr()`.
    pub metrics_addr: Option<SocketAddr>,
    /// Enable credit-based per-edge flow control (see the struct docs).
    /// Off by default — channel capacity alone provides backpressure.
    pub credit_flow: bool,
    /// Initial credit window per consumer task, in batches.  Clamped at
    /// submit to `EngineConfig::queue_capacity` so a credited send can
    /// never block on the channel itself.
    pub credit_window: usize,
    /// With credit flow on, shed batches (failing their anchored tuple
    /// trees) instead of blocking when a pool is exhausted.
    pub shed_on_overload: bool,
    /// Enable the adaptive AIMD spout throttle driven by observed
    /// queue-wait (see the struct docs).  Off by default — the spout is
    /// only gated by `EngineConfig::max_spout_pending`.
    pub adaptive_throttle: bool,
    /// AIMD setpoint: a per-interval queue-wait p99 above this triggers a
    /// multiplicative decrease of the spout rate cap.
    pub throttle_target_queue_wait: Duration,
    /// Floor of the adaptive rate cap, tuples/s.
    pub throttle_min_rate: f64,
    /// Ceiling of the adaptive rate cap, tuples/s (`INFINITY` = none; the
    /// cap starts here, i.e. uncapped by default).
    pub throttle_max_rate: f64,
    /// Additive increase of the cap per interval when queue wait is
    /// comfortably under target, tuples/s.
    pub throttle_additive_increase: f64,
    /// Multiplicative decrease factor applied when queue wait exceeds the
    /// target; must be in `(0, 1)`.
    pub throttle_decrease_factor: f64,
    /// Enable periodic checkpoints of stateful tasks (bolts whose
    /// [`Bolt::stateful`](crate::component::Bolt::stateful) returns a
    /// [`StatefulComponent`](super::checkpoint::StatefulComponent)).  Off
    /// by default — a supervisor restart then rebuilds components from
    /// their factories, losing accumulated state.
    pub checkpoints: bool,
    /// Interval between checkpoints of one task.  Checkpoints are taken
    /// cooperatively on the task's own thread at batch boundaries, right
    /// after the batch's acks are applied, so the snapshot is aligned with
    /// the acked frontier.
    pub checkpoint_interval: Duration,
    /// Take a full snapshot every Nth checkpoint; the intervening ones are
    /// incremental deltas when the component supports them.  `1` makes
    /// every checkpoint full.  The first checkpoint of every task
    /// incarnation is always full.
    pub checkpoint_full_every: u32,
    /// Snapshot payloads larger than this many bytes spill to
    /// [`checkpoint_spill_dir`](Self::checkpoint_spill_dir) instead of
    /// staying in memory (no effect when the dir is unset).
    pub checkpoint_spill_threshold: usize,
    /// Directory for spilled snapshot payloads (`None`, the default,
    /// keeps everything in memory).
    pub checkpoint_spill_dir: Option<PathBuf>,
    /// Under [`RecoveryMode::ExactlyOnceEffect`], a checkpoint is forced
    /// early once this many inputs accumulate in the task's input log,
    /// bounding replay-log memory between interval ticks.
    pub checkpoint_log_high_water: usize,
    /// What a restart of a stateful task guarantees; see [`RecoveryMode`].
    /// Only meaningful with [`checkpoints`](Self::checkpoints) on.
    pub recovery_mode: RecoveryMode,
    /// Encode snapshots as legacy JSON text instead of the compact binary
    /// value encoding (see
    /// [`set_json_snapshot_fallback`](super::checkpoint::set_json_snapshot_fallback)).
    /// Decoding auto-detects both formats either way.
    pub json_snapshots: bool,
}

impl Default for RtConfig {
    fn default() -> Self {
        Self {
            batch_size: 1,
            linger: Duration::from_millis(1),
            supervise: true,
            hang_timeout: Duration::from_secs(3),
            max_restarts: 8,
            max_replays: 0,
            replay_backoff: Duration::from_millis(100),
            acker_shards: 8,
            trace_sample_rate: 0.0,
            metrics_addr: None,
            credit_flow: false,
            credit_window: 128,
            shed_on_overload: false,
            adaptive_throttle: false,
            throttle_target_queue_wait: Duration::from_millis(5),
            throttle_min_rate: 100.0,
            throttle_max_rate: f64::INFINITY,
            throttle_additive_increase: 500.0,
            throttle_decrease_factor: 0.5,
            checkpoints: false,
            checkpoint_interval: Duration::from_millis(500),
            checkpoint_full_every: 4,
            checkpoint_spill_threshold: 1 << 20,
            checkpoint_spill_dir: None,
            checkpoint_log_high_water: 8192,
            recovery_mode: RecoveryMode::AtLeastOnce,
            json_snapshots: false,
        }
    }
}

impl RtConfig {
    /// Returns the config with the given batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns the config with the given linger deadline.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Returns the config with supervision enabled or disabled.
    pub fn with_supervision(mut self, supervise: bool) -> Self {
        self.supervise = supervise;
        self
    }

    /// Returns the config with the given hang-detection timeout.
    pub fn with_hang_timeout(mut self, hang_timeout: Duration) -> Self {
        self.hang_timeout = hang_timeout;
        self
    }

    /// Returns the config with the given per-task restart budget.
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Returns the config with the given per-message replay budget.
    pub fn with_max_replays(mut self, max_replays: u32) -> Self {
        self.max_replays = max_replays;
        self
    }

    /// Returns the config with the given base replay backoff.
    pub fn with_replay_backoff(mut self, replay_backoff: Duration) -> Self {
        self.replay_backoff = replay_backoff;
        self
    }

    /// Returns the config with the given number of acker lock stripes.
    pub fn with_acker_shards(mut self, acker_shards: usize) -> Self {
        self.acker_shards = acker_shards;
        self
    }

    /// Returns the config with the given tuple-tree trace sampling rate.
    pub fn with_trace_sample_rate(mut self, trace_sample_rate: f64) -> Self {
        self.trace_sample_rate = trace_sample_rate;
        self
    }

    /// Returns the config serving Prometheus metrics on `metrics_addr`.
    pub fn with_metrics_addr(mut self, metrics_addr: SocketAddr) -> Self {
        self.metrics_addr = Some(metrics_addr);
        self
    }

    /// Returns the config with credit-based flow control on and the given
    /// per-task window (in batches).
    pub fn with_credit_flow(mut self, credit_window: usize) -> Self {
        self.credit_flow = true;
        self.credit_window = credit_window;
        self
    }

    /// Returns the config shedding (instead of blocking) on an exhausted
    /// credit pool.
    pub fn with_shed_on_overload(mut self, shed: bool) -> Self {
        self.shed_on_overload = shed;
        self
    }

    /// Returns the config with the adaptive spout throttle on and the
    /// given queue-wait setpoint.
    pub fn with_adaptive_throttle(mut self, target_queue_wait: Duration) -> Self {
        self.adaptive_throttle = true;
        self.throttle_target_queue_wait = target_queue_wait;
        self
    }

    /// Returns the config with the given adaptive rate-cap floor and
    /// ceiling (tuples/s; `f64::INFINITY` for no ceiling).
    pub fn with_throttle_bounds(mut self, min_rate: f64, max_rate: f64) -> Self {
        self.throttle_min_rate = min_rate;
        self.throttle_max_rate = max_rate;
        self
    }

    /// Returns the config with the given AIMD parameters: additive
    /// increase (tuples/s per interval) and multiplicative decrease factor.
    pub fn with_throttle_aimd(mut self, additive_increase: f64, decrease_factor: f64) -> Self {
        self.throttle_additive_increase = additive_increase;
        self.throttle_decrease_factor = decrease_factor;
        self
    }

    /// Returns the config with periodic checkpoints on at the given
    /// interval.
    pub fn with_checkpoints(mut self, interval: Duration) -> Self {
        self.checkpoints = true;
        self.checkpoint_interval = interval;
        self
    }

    /// Returns the config taking a full snapshot every `n`th checkpoint
    /// (deltas in between, for components that support them).
    pub fn with_checkpoint_full_every(mut self, n: u32) -> Self {
        self.checkpoint_full_every = n;
        self
    }

    /// Returns the config spilling snapshot payloads larger than
    /// `threshold` bytes to `dir`.
    pub fn with_checkpoint_spill(mut self, dir: PathBuf, threshold: usize) -> Self {
        self.checkpoint_spill_dir = Some(dir);
        self.checkpoint_spill_threshold = threshold;
        self
    }

    /// Returns the config with the given recovery guarantee for stateful
    /// task restarts.
    pub fn with_recovery_mode(mut self, mode: RecoveryMode) -> Self {
        self.recovery_mode = mode;
        self
    }

    /// Returns the config using the legacy JSON text snapshot encoding
    /// instead of the compact binary one (decoding auto-detects both).
    pub fn with_json_snapshots(mut self, json: bool) -> Self {
        self.json_snapshots = json;
        self
    }

    /// The effective per-task input-queue bound, in **tuples**, once this
    /// config composes with an [`EngineConfig`](crate::config::EngineConfig).
    ///
    /// Two independent knobs bound a task's queue in *batches*:
    /// `EngineConfig::queue_capacity` (the channel's depth) and — when
    /// [`credit_flow`](Self::credit_flow) is on —
    /// [`credit_window`](Self::credit_window), clamped at submit to the
    /// channel capacity (and to at least 1) so a credited send never blocks
    /// on the channel itself.  The tighter of the two times
    /// [`batch_size`](Self::batch_size) is the worst-case tuple backlog a
    /// task can hold.  Note this composes with, and is independent of,
    /// `EngineConfig::max_spout_pending`, which caps in-flight tuple
    /// *trees* per spout across the whole topology.
    pub fn effective_queue_bound(&self, engine: &crate::config::EngineConfig) -> usize {
        let window_batches = if self.credit_flow {
            self.credit_window.min(engine.queue_capacity).max(1)
        } else {
            engine.queue_capacity
        };
        window_batches * self.batch_size
    }

    /// True when the spout loops should run the replay protocol.
    pub(crate) fn replay_enabled(&self) -> bool {
        self.max_replays > 0
    }

    /// Validates the config.
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(Error::Config("rt batch_size must be at least 1".into()));
        }
        if self.supervise && self.hang_timeout.is_zero() {
            return Err(Error::Config(
                "rt hang_timeout must be positive when supervision is on".into(),
            ));
        }
        if self.acker_shards == 0 {
            return Err(Error::Config("rt acker_shards must be at least 1".into()));
        }
        if !self.trace_sample_rate.is_finite() || !(0.0..=1.0).contains(&self.trace_sample_rate) {
            return Err(Error::Config(
                "rt trace_sample_rate must be within [0, 1]".into(),
            ));
        }
        if self.credit_flow && self.credit_window == 0 {
            return Err(Error::Config(
                "rt credit_window must be at least 1 when credit_flow is on".into(),
            ));
        }
        if self.adaptive_throttle && self.throttle_target_queue_wait.is_zero() {
            return Err(Error::Config(
                "rt throttle_target_queue_wait must be positive when adaptive_throttle is on"
                    .into(),
            ));
        }
        if !(self.throttle_min_rate.is_finite() && self.throttle_min_rate > 0.0) {
            return Err(Error::Config(
                "rt throttle_min_rate must be positive and finite".into(),
            ));
        }
        if self.throttle_max_rate < self.throttle_min_rate {
            return Err(Error::Config(
                "rt throttle_max_rate must be at least throttle_min_rate".into(),
            ));
        }
        if !(self.throttle_additive_increase.is_finite() && self.throttle_additive_increase > 0.0) {
            return Err(Error::Config(
                "rt throttle_additive_increase must be positive and finite".into(),
            ));
        }
        if !(self.throttle_decrease_factor > 0.0 && self.throttle_decrease_factor < 1.0) {
            return Err(Error::Config(
                "rt throttle_decrease_factor must be in (0, 1)".into(),
            ));
        }
        if self.checkpoints {
            if self.checkpoint_interval.is_zero() {
                return Err(Error::Config(
                    "rt checkpoint_interval must be positive when checkpoints are on".into(),
                ));
            }
            if self.checkpoint_full_every == 0 {
                return Err(Error::Config(
                    "rt checkpoint_full_every must be at least 1".into(),
                ));
            }
            if self.checkpoint_log_high_water == 0 {
                return Err(Error::Config(
                    "rt checkpoint_log_high_water must be at least 1".into(),
                ));
            }
        } else if self.recovery_mode != RecoveryMode::AtLeastOnce {
            return Err(Error::Config(format!(
                "rt recovery_mode {} requires checkpoints to be enabled",
                self.recovery_mode.as_str()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbatched() {
        let cfg = RtConfig::default();
        assert_eq!(cfg.batch_size, 1);
        assert!(cfg.supervise, "supervision is on by default");
        assert_eq!(cfg.max_replays, 0, "replay is opt-in");
        assert!(!cfg.replay_enabled());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_batch_size_rejected() {
        assert!(RtConfig::default().with_batch_size(0).validate().is_err());
        assert!(RtConfig::default().with_batch_size(64).validate().is_ok());
    }

    #[test]
    fn zero_hang_timeout_rejected_only_when_supervised() {
        let cfg = RtConfig::default().with_hang_timeout(Duration::ZERO);
        assert!(cfg.clone().validate().is_err());
        assert!(cfg.with_supervision(false).validate().is_ok());
    }

    #[test]
    fn telemetry_knobs() {
        let cfg = RtConfig::default();
        assert_eq!(cfg.trace_sample_rate, 0.0, "tracing is opt-in");
        assert!(cfg.metrics_addr.is_none(), "no scrape endpoint by default");
        assert!(RtConfig::default()
            .with_trace_sample_rate(0.25)
            .validate()
            .is_ok());
        assert!(RtConfig::default()
            .with_trace_sample_rate(1.5)
            .validate()
            .is_err());
        assert!(RtConfig::default()
            .with_trace_sample_rate(-0.1)
            .validate()
            .is_err());
        assert!(RtConfig::default()
            .with_trace_sample_rate(f64::NAN)
            .validate()
            .is_err());
        let addr: std::net::SocketAddr = "127.0.0.1:0".parse().unwrap();
        assert_eq!(
            RtConfig::default().with_metrics_addr(addr).metrics_addr,
            Some(addr)
        );
    }

    /// Pins how `max_spout_pending`, `queue_capacity`, `credit_window` and
    /// `batch_size` compose into the per-task queue bound (satellite of the
    /// backpressure work: the two config layers were previously easy to
    /// conflate — one counts trees, the other batches).
    #[test]
    fn effective_queue_bound_composes_engine_and_rt_knobs() {
        let engine = crate::config::EngineConfig::default();
        assert_eq!(engine.queue_capacity, 2048, "default channel depth");
        assert_eq!(engine.max_spout_pending, 512, "default in-flight gate");

        // No credit flow: the channel alone bounds the queue.
        assert_eq!(RtConfig::default().effective_queue_bound(&engine), 2048);

        // Credit flow with a window under the channel depth: the window wins.
        assert_eq!(
            RtConfig::default()
                .with_credit_flow(128)
                .effective_queue_bound(&engine),
            128
        );

        // A window larger than the channel is clamped to it.
        assert_eq!(
            RtConfig::default()
                .with_credit_flow(5000)
                .effective_queue_bound(&engine),
            2048
        );

        // A zero-ish window is floored at one batch (validate() rejects 0,
        // but the clamp is defensive either way).
        assert_eq!(
            RtConfig::default()
                .with_credit_flow(1)
                .effective_queue_bound(&engine),
            1
        );

        // Batching multiplies the bound: both knobs count batches, the
        // bound is in tuples.
        assert_eq!(
            RtConfig::default()
                .with_batch_size(8)
                .with_credit_flow(128)
                .effective_queue_bound(&engine),
            1024
        );

        // The spout-pending gate is independent: a small queue bound does
        // not move it, and vice versa.
        let mut tight = engine.clone();
        tight.queue_capacity = 64;
        assert_eq!(
            RtConfig::default()
                .with_credit_flow(128)
                .effective_queue_bound(&tight),
            64
        );
        assert_eq!(tight.max_spout_pending, 512);
    }

    #[test]
    fn checkpoint_knobs() {
        let cfg = RtConfig::default();
        assert!(!cfg.checkpoints, "checkpoints are opt-in");
        assert_eq!(cfg.recovery_mode, RecoveryMode::AtLeastOnce);
        assert!(cfg.validate().is_ok());

        let on = RtConfig::default()
            .with_checkpoints(Duration::from_millis(100))
            .with_checkpoint_full_every(3)
            .with_recovery_mode(RecoveryMode::ExactlyOnceEffect);
        assert!(on.checkpoints);
        assert_eq!(on.checkpoint_full_every, 3);
        assert!(on.validate().is_ok());

        // Stronger guarantees without checkpoints make no sense.
        assert!(RtConfig::default()
            .with_recovery_mode(RecoveryMode::ExactlyOnceEffect)
            .validate()
            .is_err());
        assert!(RtConfig::default()
            .with_recovery_mode(RecoveryMode::Approximate)
            .validate()
            .is_err());

        // Degenerate knobs are rejected when checkpoints are on.
        assert!(RtConfig::default()
            .with_checkpoints(Duration::ZERO)
            .validate()
            .is_err());
        let mut zero_full = RtConfig::default().with_checkpoints(Duration::from_millis(100));
        zero_full.checkpoint_full_every = 0;
        assert!(zero_full.validate().is_err());
        let mut zero_hw = RtConfig::default().with_checkpoints(Duration::from_millis(100));
        zero_hw.checkpoint_log_high_water = 0;
        assert!(zero_hw.validate().is_err());
    }

    #[test]
    fn replay_knobs() {
        let cfg = RtConfig::default()
            .with_max_replays(3)
            .with_replay_backoff(Duration::from_millis(20));
        assert!(cfg.replay_enabled());
        assert_eq!(cfg.max_replays, 3);
        assert!(cfg.validate().is_ok());
    }
}

//! Knobs specific to the threaded runtime.

use std::net::SocketAddr;
use std::time::Duration;

use crate::error::{Error, Result};

/// Tuning parameters for the threaded runtime: tuple batching, task
/// supervision, and end-to-end replay.
///
/// **Batching.** Tuples routed to the same downstream task accumulate in a
/// per-destination output buffer and travel the channel as one `Vec` batch.
/// A buffer is flushed when it reaches [`batch_size`](Self::batch_size)
/// entries or when its oldest entry has waited [`linger`](Self::linger) —
/// whichever comes first — so batching trades at most `linger` of latency
/// for amortized channel and acker traffic.  The default `batch_size` of 1
/// flushes every tuple inline and reproduces the unbatched runtime behavior
/// exactly.
///
/// **Supervision.** With [`supervise`](Self::supervise) enabled (the
/// default) a supervisor thread watches every task's heartbeat: a task whose
/// thread died (panic) or stopped beating for
/// [`hang_timeout`](Self::hang_timeout) is superseded and restarted from its
/// component factory — a fresh component instance wired to the *same* input
/// channel, so queued tuples survive the crash.  Each task is restarted at
/// most [`max_restarts`](Self::max_restarts) times.
///
/// **Replay.** With [`max_replays`](Self::max_replays) > 0 and acking
/// enabled, the spout loop caches each tracked emission and re-emits trees
/// that fail or time out, waiting `replay_backoff × 2^attempt` between
/// attempts before declaring a message permanently failed.  The default of 0
/// preserves the classic fire-and-forget semantics where user code sees
/// every failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RtConfig {
    /// Maximum tuples per output batch (per destination task).  Must be at
    /// least 1; `1` disables batching.
    pub batch_size: usize,
    /// Longest a buffered tuple may wait before its batch is flushed even if
    /// not full.  Irrelevant when `batch_size == 1`.
    pub linger: Duration,
    /// Run the supervisor thread that restarts dead or hung tasks.
    pub supervise: bool,
    /// A task whose heartbeat is older than this is considered hung and
    /// superseded (when supervision is on).  Must exceed zero; keep it well
    /// above the longest legitimate single `execute` call.
    pub hang_timeout: Duration,
    /// Upper bound on supervisor restarts per task (guards against a
    /// component that panics immediately on every start).
    pub max_restarts: u32,
    /// Maximum runtime-level replays per message id (0 disables replay).
    pub max_replays: u32,
    /// Base delay before the first replay of a message; doubles per attempt.
    pub replay_backoff: Duration,
    /// Number of lock stripes in the acker (`root % acker_shards` picks the
    /// stripe).  Acks of different tuple trees only contend when their roots
    /// share a stripe, so this should be at least the number of concurrently
    /// acking tasks; `1` reproduces the single-global-acker behavior.
    pub acker_shards: usize,
    /// Fraction of tuple trees to trace end-to-end, in `[0, 1]`.  Sampling
    /// is a deterministic hash test on the tree's root id, so every thread
    /// agrees on the decision with no shared state.  `0` (the default)
    /// disables tracing at the cost of one branch per batch on the data
    /// plane; sampled trees record one [`crate::telemetry::Span`] per hop
    /// plus the terminal ack/fail/timeout event.
    pub trace_sample_rate: f64,
    /// When set, serve the live metrics registry as Prometheus text
    /// exposition over HTTP on this address (`None`, the default, binds
    /// nothing).  Port 0 picks a free port; the bound address is available
    /// from `RunningTopology::metrics_addr()`.
    pub metrics_addr: Option<SocketAddr>,
}

impl Default for RtConfig {
    fn default() -> Self {
        Self {
            batch_size: 1,
            linger: Duration::from_millis(1),
            supervise: true,
            hang_timeout: Duration::from_secs(3),
            max_restarts: 8,
            max_replays: 0,
            replay_backoff: Duration::from_millis(100),
            acker_shards: 8,
            trace_sample_rate: 0.0,
            metrics_addr: None,
        }
    }
}

impl RtConfig {
    /// Returns the config with the given batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns the config with the given linger deadline.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Returns the config with supervision enabled or disabled.
    pub fn with_supervision(mut self, supervise: bool) -> Self {
        self.supervise = supervise;
        self
    }

    /// Returns the config with the given hang-detection timeout.
    pub fn with_hang_timeout(mut self, hang_timeout: Duration) -> Self {
        self.hang_timeout = hang_timeout;
        self
    }

    /// Returns the config with the given per-task restart budget.
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Returns the config with the given per-message replay budget.
    pub fn with_max_replays(mut self, max_replays: u32) -> Self {
        self.max_replays = max_replays;
        self
    }

    /// Returns the config with the given base replay backoff.
    pub fn with_replay_backoff(mut self, replay_backoff: Duration) -> Self {
        self.replay_backoff = replay_backoff;
        self
    }

    /// Returns the config with the given number of acker lock stripes.
    pub fn with_acker_shards(mut self, acker_shards: usize) -> Self {
        self.acker_shards = acker_shards;
        self
    }

    /// Returns the config with the given tuple-tree trace sampling rate.
    pub fn with_trace_sample_rate(mut self, trace_sample_rate: f64) -> Self {
        self.trace_sample_rate = trace_sample_rate;
        self
    }

    /// Returns the config serving Prometheus metrics on `metrics_addr`.
    pub fn with_metrics_addr(mut self, metrics_addr: SocketAddr) -> Self {
        self.metrics_addr = Some(metrics_addr);
        self
    }

    /// True when the spout loops should run the replay protocol.
    pub(crate) fn replay_enabled(&self) -> bool {
        self.max_replays > 0
    }

    /// Validates the config.
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(Error::Config("rt batch_size must be at least 1".into()));
        }
        if self.supervise && self.hang_timeout.is_zero() {
            return Err(Error::Config(
                "rt hang_timeout must be positive when supervision is on".into(),
            ));
        }
        if self.acker_shards == 0 {
            return Err(Error::Config("rt acker_shards must be at least 1".into()));
        }
        if !self.trace_sample_rate.is_finite() || !(0.0..=1.0).contains(&self.trace_sample_rate) {
            return Err(Error::Config(
                "rt trace_sample_rate must be within [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbatched() {
        let cfg = RtConfig::default();
        assert_eq!(cfg.batch_size, 1);
        assert!(cfg.supervise, "supervision is on by default");
        assert_eq!(cfg.max_replays, 0, "replay is opt-in");
        assert!(!cfg.replay_enabled());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_batch_size_rejected() {
        assert!(RtConfig::default().with_batch_size(0).validate().is_err());
        assert!(RtConfig::default().with_batch_size(64).validate().is_ok());
    }

    #[test]
    fn zero_hang_timeout_rejected_only_when_supervised() {
        let cfg = RtConfig::default().with_hang_timeout(Duration::ZERO);
        assert!(cfg.clone().validate().is_err());
        assert!(cfg.with_supervision(false).validate().is_ok());
    }

    #[test]
    fn telemetry_knobs() {
        let cfg = RtConfig::default();
        assert_eq!(cfg.trace_sample_rate, 0.0, "tracing is opt-in");
        assert!(cfg.metrics_addr.is_none(), "no scrape endpoint by default");
        assert!(RtConfig::default()
            .with_trace_sample_rate(0.25)
            .validate()
            .is_ok());
        assert!(RtConfig::default()
            .with_trace_sample_rate(1.5)
            .validate()
            .is_err());
        assert!(RtConfig::default()
            .with_trace_sample_rate(-0.1)
            .validate()
            .is_err());
        assert!(RtConfig::default()
            .with_trace_sample_rate(f64::NAN)
            .validate()
            .is_err());
        let addr: std::net::SocketAddr = "127.0.0.1:0".parse().unwrap();
        assert_eq!(
            RtConfig::default().with_metrics_addr(addr).metrics_addr,
            Some(addr)
        );
    }

    #[test]
    fn replay_knobs() {
        let cfg = RtConfig::default()
            .with_max_replays(3)
            .with_replay_backoff(Duration::from_millis(20));
        assert!(cfg.replay_enabled());
        assert_eq!(cfg.max_replays, 3);
        assert!(cfg.validate().is_ok());
    }
}

//! Knobs specific to the threaded runtime.

use std::time::Duration;

use crate::error::{Error, Result};

/// Tuning parameters for the threaded runtime's tuple batching.
///
/// Tuples routed to the same downstream task accumulate in a per-destination
/// output buffer and travel the channel as one `Vec` batch.  A buffer is
/// flushed when it reaches [`batch_size`](Self::batch_size) entries or when
/// its oldest entry has waited [`linger`](Self::linger) — whichever comes
/// first — so batching trades at most `linger` of latency for amortized
/// channel and acker traffic.
///
/// The default `batch_size` of 1 flushes every tuple inline and reproduces
/// the unbatched runtime behavior exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RtConfig {
    /// Maximum tuples per output batch (per destination task).  Must be at
    /// least 1; `1` disables batching.
    pub batch_size: usize,
    /// Longest a buffered tuple may wait before its batch is flushed even if
    /// not full.  Irrelevant when `batch_size == 1`.
    pub linger: Duration,
}

impl Default for RtConfig {
    fn default() -> Self {
        Self {
            batch_size: 1,
            linger: Duration::from_millis(1),
        }
    }
}

impl RtConfig {
    /// Returns the config with the given batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns the config with the given linger deadline.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Validates the config.
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(Error::Config("rt batch_size must be at least 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbatched() {
        let cfg = RtConfig::default();
        assert_eq!(cfg.batch_size, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_batch_size_rejected() {
        assert!(RtConfig::default().with_batch_size(0).validate().is_err());
        assert!(RtConfig::default().with_batch_size(64).validate().is_ok());
    }
}

//! Wall-clock fault injection for the threaded runtime.
//!
//! The simulator injects [`sim::Fault`](crate::sim::Fault)s on virtual time;
//! this module gives the threaded runtime the same vocabulary on wall-clock
//! time, plus task-level faults only a real runtime can exhibit: panicking a
//! task, hanging it, or dropping its tuples on delivery.  An
//! [`RtFaultPlan`] is validated against the topology at submit and consulted
//! by every task loop through a lock-free [`FaultInjector`].
//!
//! Semantics:
//!
//! * [`RtFault::WorkerSlowdown`] multiplies the observed service time of
//!   every task on the worker by `factor` while active — implemented as an
//!   extra busy-spin of `(factor - 1) × max(execute_time, 20 µs)` per tuple,
//!   so the slowdown burns real CPU and shows up in
//!   `avg_execute_latency_us` exactly like a degraded worker would.
//! * [`RtFault::ExternalLoad`] is reported through
//!   [`MachineStats::external_load_cores`](crate::metrics::MachineStats) so
//!   feature extraction sees the same machine-level signal as in the
//!   simulator.
//! * [`RtFault::TaskPanic`] fires **once** at `at_s`: the task thread panics
//!   and, when supervision is enabled, is restarted from its component
//!   factory.
//! * [`RtFault::TaskHang`] fires once: the task stops heartbeating until
//!   `until_s` (or until the supervisor supersedes it, or shutdown).
//! * [`RtFault::DropTuples`] silently discards tuples delivered to the task
//!   while active — neither acked nor failed, so their trees time out and
//!   exercise the replay path.

use std::sync::atomic::{AtomicBool, Ordering};

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::scheduler::Placement;
use crate::sim::Fault;
use crate::topology::TaskId;

/// One scheduled disturbance of the threaded runtime.  Times are wall-clock
/// seconds since submit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RtFault {
    /// `factor`× service-time slowdown of every task on `worker` during
    /// `[from_s, until_s)`.
    WorkerSlowdown {
        /// Target worker index.
        worker: usize,
        /// Service-time multiplier (> 1 slows the worker down).
        factor: f64,
        /// Start time, seconds since submit.
        from_s: f64,
        /// End time, seconds since submit.
        until_s: f64,
    },
    /// `cores` of external CPU load on `machine` during `[from_s, until_s)`,
    /// reported in the machine-level metrics.
    ExternalLoad {
        /// Target machine index.
        machine: usize,
        /// Cores of load to report.
        cores: f64,
        /// Start time, seconds since submit.
        from_s: f64,
        /// End time, seconds since submit.
        until_s: f64,
    },
    /// Panics the task's thread once, at `at_s`.
    TaskPanic {
        /// Target global task id.
        task: usize,
        /// When to fire, seconds since submit.
        at_s: f64,
    },
    /// Stops the task's loop (no heartbeats, no progress) from `from_s`
    /// until `until_s`, supersession, or shutdown.  Fires once.
    TaskHang {
        /// Target global task id.
        task: usize,
        /// Start time, seconds since submit.
        from_s: f64,
        /// Latest end time, seconds since submit.
        until_s: f64,
    },
    /// Discards every tuple delivered to the task during `[from_s, until_s)`
    /// without acking or failing it.
    DropTuples {
        /// Target global task id.
        task: usize,
        /// Start time, seconds since submit.
        from_s: f64,
        /// End time, seconds since submit.
        until_s: f64,
    },
}

impl RtFault {
    /// Start of the fault's active window, seconds since submit.
    pub fn from_s(&self) -> f64 {
        match self {
            RtFault::WorkerSlowdown { from_s, .. }
            | RtFault::ExternalLoad { from_s, .. }
            | RtFault::TaskHang { from_s, .. }
            | RtFault::DropTuples { from_s, .. } => *from_s,
            RtFault::TaskPanic { at_s, .. } => *at_s,
        }
    }

    /// End of the fault's active window, seconds since submit.
    pub fn until_s(&self) -> f64 {
        match self {
            RtFault::WorkerSlowdown { until_s, .. }
            | RtFault::ExternalLoad { until_s, .. }
            | RtFault::TaskHang { until_s, .. }
            | RtFault::DropTuples { until_s, .. } => *until_s,
            RtFault::TaskPanic { at_s, .. } => *at_s,
        }
    }

    /// True when the schedule and magnitude make sense.
    pub fn is_valid(&self) -> bool {
        let window = self.from_s() >= 0.0 && self.until_s() >= self.from_s();
        let magnitude = match self {
            RtFault::WorkerSlowdown { factor, .. } => *factor >= 1.0,
            RtFault::ExternalLoad { cores, .. } => *cores >= 0.0,
            _ => true,
        };
        window && magnitude
    }
}

impl From<&Fault> for RtFault {
    /// Maps a simulator fault onto the identical wall-clock fault, so one
    /// [`FaultScenario`](crate::sim::Fault) vocabulary drives both runtimes.
    fn from(f: &Fault) -> Self {
        match f {
            Fault::ExternalLoad {
                machine,
                cores,
                from_s,
                until_s,
            } => RtFault::ExternalLoad {
                machine: *machine,
                cores: *cores,
                from_s: *from_s,
                until_s: *until_s,
            },
            Fault::WorkerSlowdown {
                worker,
                factor,
                from_s,
                until_s,
            } => RtFault::WorkerSlowdown {
                worker: *worker,
                factor: *factor,
                from_s: *from_s,
                until_s: *until_s,
            },
        }
    }
}

/// A schedule of [`RtFault`]s to inject into one threaded run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RtFaultPlan {
    /// The faults to inject.
    pub faults: Vec<RtFault>,
}

impl RtFaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style push.
    pub fn with(mut self, fault: RtFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Appends a fault.
    pub fn push(&mut self, fault: RtFault) {
        self.faults.push(fault);
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Converts a simulator fault schedule into the equivalent wall-clock
    /// plan.
    pub fn from_sim(faults: &[Fault]) -> Self {
        RtFaultPlan {
            faults: faults.iter().map(RtFault::from).collect(),
        }
    }

    /// Checks every fault against the cluster shape.
    pub fn validate(&self, n_tasks: usize, n_workers: usize, n_machines: usize) -> Result<()> {
        for f in &self.faults {
            if !f.is_valid() {
                return Err(Error::Config(format!("invalid fault schedule: {f:?}")));
            }
            let in_range = match f {
                RtFault::WorkerSlowdown { worker, .. } => *worker < n_workers,
                RtFault::ExternalLoad { machine, .. } => *machine < n_machines,
                RtFault::TaskPanic { task, .. }
                | RtFault::TaskHang { task, .. }
                | RtFault::DropTuples { task, .. } => *task < n_tasks,
            };
            if !in_range {
                return Err(Error::Config(format!("fault target out of range: {f:?}")));
            }
        }
        Ok(())
    }
}

/// Floor used when scaling a near-zero execute time: a `factor`× slowdown
/// spins at least `(factor - 1) × 20 µs` per tuple so trivial bolts still
/// exhibit a measurable degradation.
pub(super) const SLOWDOWN_FLOOR_NANOS: u64 = 20_000;

/// Runtime-side view of a fault plan: answers per-task/per-machine queries
/// from the task loops and the metrics thread.  One-shot faults (panic,
/// hang) latch an [`AtomicBool`] so they fire exactly once across restarts.
pub(crate) struct FaultInjector {
    faults: Vec<RtFault>,
    /// Latch per fault; only consulted for one-shot faults.
    fired: Vec<AtomicBool>,
    /// Global task id → worker index.
    task_worker: Vec<usize>,
}

impl FaultInjector {
    pub(crate) fn new(plan: RtFaultPlan, placement: &Placement, n_tasks: usize) -> Self {
        let task_worker: Vec<usize> = (0..n_tasks)
            .map(|t| placement.worker_of(TaskId(t)).0)
            .collect();
        let fired = (0..plan.faults.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        Self {
            faults: plan.faults,
            fired,
            task_worker,
        }
    }

    /// Combined service-time multiplier for `task` at `now_s` (product of
    /// active slowdowns on its worker); `1.0` when healthy.
    pub(crate) fn slowdown_factor(&self, task: usize, now_s: f64) -> f64 {
        let worker = self.task_worker[task];
        let mut factor = 1.0;
        for f in &self.faults {
            if let RtFault::WorkerSlowdown {
                worker: w,
                factor: x,
                from_s,
                until_s,
            } = f
            {
                if *w == worker && now_s >= *from_s && now_s < *until_s {
                    factor *= *x;
                }
            }
        }
        factor
    }

    /// True when a drop-tuples window is active for `task`.
    pub(crate) fn should_drop(&self, task: usize, now_s: f64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, RtFault::DropTuples { task: t, from_s, until_s }
                if *t == task && now_s >= *from_s && now_s < *until_s)
        })
    }

    /// Consumes a scheduled panic for `task` if one is due.  Fires once.
    pub(crate) fn take_panic(&self, task: usize, now_s: f64) -> bool {
        for (i, f) in self.faults.iter().enumerate() {
            if let RtFault::TaskPanic { task: t, at_s } = f {
                if *t == task && now_s >= *at_s && !self.fired[i].swap(true, Ordering::SeqCst) {
                    return true;
                }
            }
        }
        false
    }

    /// Consumes a scheduled hang for `task` if one is due; returns the hang's
    /// latest end time.  Fires once, so a supervisor-restarted replacement
    /// thread does not re-enter the same hang.
    pub(crate) fn take_hang(&self, task: usize, now_s: f64) -> Option<f64> {
        for (i, f) in self.faults.iter().enumerate() {
            if let RtFault::TaskHang {
                task: t,
                from_s,
                until_s,
            } = f
            {
                if *t == task
                    && now_s >= *from_s
                    && now_s < *until_s
                    && !self.fired[i].swap(true, Ordering::SeqCst)
                {
                    return Some(*until_s);
                }
            }
        }
        None
    }

    /// External load (cores) injected on `machine` at `now_s`.
    pub(crate) fn external_load(&self, machine: usize, now_s: f64) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                RtFault::ExternalLoad {
                    machine: m,
                    cores,
                    from_s,
                    until_s,
                } if *m == machine && now_s >= *from_s && now_s < *until_s => Some(*cores),
                _ => None,
            })
            .sum()
    }

    /// True when the plan contains any machine-level external load (lets the
    /// metrics thread skip the per-machine scan in the common case).
    pub(crate) fn has_external_load(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, RtFault::ExternalLoad { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{MachineId, WorkerId};

    fn placement_2x2() -> Placement {
        // Tasks 0,1 on worker 0 (machine 0); tasks 2,3 on worker 1 (machine 1).
        Placement::from_assignments(
            vec![WorkerId(0), WorkerId(0), WorkerId(1), WorkerId(1)],
            vec![MachineId(0), MachineId(1)],
        )
        .unwrap()
    }

    #[test]
    fn plan_validation() {
        let ok = RtFaultPlan::new()
            .with(RtFault::WorkerSlowdown {
                worker: 1,
                factor: 10.0,
                from_s: 1.0,
                until_s: 5.0,
            })
            .with(RtFault::TaskPanic { task: 3, at_s: 0.5 });
        assert!(ok.validate(4, 2, 2).is_ok());
        assert!(ok.validate(3, 2, 2).is_err(), "task 3 out of range");
        assert!(ok.validate(4, 1, 2).is_err(), "worker 1 out of range");

        let bad_window = RtFaultPlan::new().with(RtFault::DropTuples {
            task: 0,
            from_s: 5.0,
            until_s: 1.0,
        });
        assert!(bad_window.validate(4, 2, 2).is_err());
        let bad_factor = RtFaultPlan::new().with(RtFault::WorkerSlowdown {
            worker: 0,
            factor: 0.5,
            from_s: 0.0,
            until_s: 1.0,
        });
        assert!(bad_factor.validate(4, 2, 2).is_err());
    }

    #[test]
    fn sim_faults_convert() {
        let sim = vec![
            Fault::WorkerSlowdown {
                worker: 1,
                factor: 4.0,
                from_s: 10.0,
                until_s: 20.0,
            },
            Fault::ExternalLoad {
                machine: 0,
                cores: 2.5,
                from_s: 0.0,
                until_s: 5.0,
            },
        ];
        let plan = RtFaultPlan::from_sim(&sim);
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(
            plan.faults[0],
            RtFault::WorkerSlowdown {
                worker: 1,
                factor: 4.0,
                from_s: 10.0,
                until_s: 20.0,
            }
        );
        assert!(plan.validate(4, 2, 2).is_ok());
    }

    #[test]
    fn slowdown_targets_worker_tasks_in_window() {
        let plan = RtFaultPlan::new().with(RtFault::WorkerSlowdown {
            worker: 1,
            factor: 8.0,
            from_s: 1.0,
            until_s: 2.0,
        });
        let inj = FaultInjector::new(plan, &placement_2x2(), 4);
        assert_eq!(inj.slowdown_factor(2, 1.5), 8.0);
        assert_eq!(inj.slowdown_factor(3, 1.5), 8.0);
        assert_eq!(inj.slowdown_factor(0, 1.5), 1.0, "other worker untouched");
        assert_eq!(inj.slowdown_factor(2, 0.5), 1.0, "before window");
        assert_eq!(inj.slowdown_factor(2, 2.0), 1.0, "window end exclusive");
    }

    #[test]
    fn one_shot_faults_fire_once() {
        let plan = RtFaultPlan::new()
            .with(RtFault::TaskPanic { task: 1, at_s: 0.5 })
            .with(RtFault::TaskHang {
                task: 2,
                from_s: 0.5,
                until_s: 3.0,
            });
        let inj = FaultInjector::new(plan, &placement_2x2(), 4);
        assert!(!inj.take_panic(1, 0.4), "not yet due");
        assert!(inj.take_panic(1, 0.6));
        assert!(!inj.take_panic(1, 0.7), "panic is one-shot");
        assert!(!inj.take_panic(0, 0.7), "wrong task");
        assert_eq!(inj.take_hang(2, 1.0), Some(3.0));
        assert_eq!(inj.take_hang(2, 1.1), None, "hang is one-shot");
    }

    #[test]
    fn external_load_sums_active_windows() {
        let plan = RtFaultPlan::new()
            .with(RtFault::ExternalLoad {
                machine: 0,
                cores: 2.0,
                from_s: 0.0,
                until_s: 10.0,
            })
            .with(RtFault::ExternalLoad {
                machine: 0,
                cores: 1.5,
                from_s: 5.0,
                until_s: 10.0,
            });
        let inj = FaultInjector::new(plan, &placement_2x2(), 4);
        assert!(inj.has_external_load());
        assert_eq!(inj.external_load(0, 1.0), 2.0);
        assert_eq!(inj.external_load(0, 6.0), 3.5);
        assert_eq!(inj.external_load(1, 6.0), 0.0);
    }

    #[test]
    fn drop_window_is_task_scoped() {
        let plan = RtFaultPlan::new().with(RtFault::DropTuples {
            task: 1,
            from_s: 1.0,
            until_s: 2.0,
        });
        let inj = FaultInjector::new(plan, &placement_2x2(), 4);
        assert!(inj.should_drop(1, 1.5));
        assert!(!inj.should_drop(0, 1.5));
        assert!(!inj.should_drop(1, 2.5));
    }
}

//! Tuple batching: per-destination output buffers and amortized acker ops.
//!
//! Two invariants keep batching exactly as reliable as per-tuple delivery:
//!
//! 1. **Apply-before-send.**  Acker bookkeeping ops (`track`/`on_emit`/
//!    `on_ack`/`on_fail`) queue up in an [`AckOps`] list in program order and
//!    are applied under the acker shard locks before any batch leaves the
//!    thread.  A downstream task can therefore never ack an edge the acker
//!    has not yet seen, which would orphan the tree until timeout.
//! 2. **Apply-at-iteration-end.**  Whatever ops remain after routing (acks
//!    for tuples still sitting in buffers, self-acks for unroutable
//!    emissions) are applied once per spout/bolt iteration, so the relative
//!    order of a task's own ops is preserved while each shard lock is taken
//!    O(1) times per batch instead of O(n) times per tuple.
//!
//! With the acker striped over `N` shards ([`ShardedAcker`]), `AckOps`
//! partitions queued ops by `root % N` and applies each partition under its
//! own shard lock.  All ops on one root stay in one partition in queue
//! order, so per-root ordering is preserved; ops on different roots commute
//! (independent XOR accumulators), so interleaving across partitions is
//! harmless.  Completed-tree outcomes are drained *while the shard lock is
//! still held*, which is what lets other threads skip busy shards when they
//! scavenge outcomes: the op-applier takes its own completions home.
//!
//! [`ShardedAcker`]: crate::acker::ShardedAcker

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use crossbeam::channel::{SendTimeoutError, Sender};

use crate::acker::{RootId, TreeOutcome};
use crate::component::MessageId;
use crate::topology::TaskId;
use crate::tuple::Tuple;

use super::Shared;

/// A tuple instance delivered to a task, with its acker anchor.
pub(super) struct Delivered {
    pub(super) tuple: Tuple,
    pub(super) anchor: Option<(RootId, u64)>,
    /// Runtime clock (µs) when the producer routed this instance; `0` unless
    /// the tuple's tree is being traced.  The consumer subtracts this from
    /// its batch-receive time to get the span's queue wait.
    pub(super) sent_at_us: u64,
    /// Spout message id the consumer dedups on.  Only set for
    /// spout-emitted tuples under the exactly-once-effect recovery mode;
    /// `None` everywhere else (including all bolt-to-bolt hops).
    pub(super) dedup: Option<MessageId>,
}

/// What travels on a task's input channel: one flushed batch of tuples plus
/// a send timestamp.  Unlike the per-tuple [`Delivered::sent_at_us`] (traced
/// trees only), the batch stamp is always set — one clock read per flush and
/// one per receive give every batch a queue-wait sample, which is the
/// always-on signal the adaptive spout throttle steers on.
pub(super) struct Batch {
    pub(super) items: Vec<Delivered>,
    /// Runtime clock (µs) when the producer handed this batch to the channel.
    pub(super) sent_at_us: u64,
}

/// Message to a spout thread about one of its tuple trees.  Travels in
/// batches (`Vec<AckMsg>`) so completions amortize like data tuples.
pub(super) enum AckMsg {
    Ack(MessageId),
    Fail(MessageId),
}

/// One deferred acker operation.  Timestamps are captured when the op is
/// queued, so deferring application does not skew latency accounting.
pub(super) enum AckOp {
    Track {
        root: RootId,
        spout_task: TaskId,
        message_id: MessageId,
        now_s: f64,
    },
    Emit {
        root: RootId,
        edge: u64,
    },
    Ack {
        root: RootId,
        edge: u64,
        now_s: f64,
    },
    Fail {
        root: RootId,
        now_s: f64,
    },
}

impl AckOp {
    /// Root of the tree this op belongs to (the shard key).
    #[inline]
    fn root(&self) -> RootId {
        match self {
            AckOp::Track { root, .. }
            | AckOp::Emit { root, .. }
            | AckOp::Ack { root, .. }
            | AckOp::Fail { root, .. } => *root,
        }
    }
}

/// Deferred acker ops owned by one task thread, partitioned by acker shard.
///
/// Ops on the same root land in the same partition in push order, so the
/// emit-before-ack ordering the XOR accounting needs survives partitioning.
pub(super) struct AckOps {
    per_shard: Vec<Vec<AckOp>>,
    len: usize,
    /// Completed-tree outcomes drained while applying (delivered by the
    /// owning task at iteration end).
    outcomes: Vec<TreeOutcome>,
}

impl AckOps {
    /// An op queue partitioned over `num_shards` acker stripes.
    pub(super) fn new(num_shards: usize) -> Self {
        Self {
            per_shard: (0..num_shards.max(1)).map(|_| Vec::new()).collect(),
            len: 0,
            outcomes: Vec::new(),
        }
    }

    pub(super) fn push(&mut self, op: AckOp) {
        let shard = (op.root() % self.per_shard.len() as u64) as usize;
        self.per_shard[shard].push(op);
        self.len += 1;
    }

    pub(super) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Applies all queued ops, taking each dirty shard's lock exactly once
    /// and applying that shard's ops in queue order.  Outcomes completed by
    /// these ops are drained under the same lock acquisition and held in
    /// this queue until [`take_outcomes`](Self::take_outcomes).
    pub(super) fn apply(&mut self, shared: &Shared) {
        if self.len == 0 {
            return;
        }
        for (idx, ops) in self.per_shard.iter_mut().enumerate() {
            if ops.is_empty() {
                continue;
            }
            let mut acker = shared.ackers.shard(idx).lock();
            for op in ops.drain(..) {
                match op {
                    AckOp::Track {
                        root,
                        spout_task,
                        message_id,
                        now_s,
                    } => acker.track(root, 0, spout_task, message_id, now_s),
                    AckOp::Emit { root, edge } => acker.on_emit(root, edge),
                    AckOp::Ack { root, edge, now_s } => acker.on_ack(root, edge, now_s),
                    AckOp::Fail { root, now_s } => acker.on_fail(root, now_s),
                }
            }
            acker.drain_outcomes_into(&mut self.outcomes);
        }
        self.len = 0;
    }

    /// True when applied ops completed trees whose outcomes still await
    /// delivery.
    pub(super) fn has_outcomes(&self) -> bool {
        !self.outcomes.is_empty()
    }

    /// Takes the outcomes drained by [`apply`](Self::apply).
    pub(super) fn take_outcomes(&mut self) -> Vec<TreeOutcome> {
        std::mem::take(&mut self.outcomes)
    }
}

/// What triggered a batch flush (recorded in the task's flush counters).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(super) enum FlushReason {
    /// The buffer reached `batch_size`.
    Full,
    /// The oldest buffered tuple hit the linger deadline.
    Linger,
    /// Task drain: idle spout, shutdown, or end of input.
    Final,
}

struct Buf {
    items: Vec<Delivered>,
    /// When the oldest currently-buffered entry arrived.
    since: Option<Instant>,
}

/// Per-destination output buffers for one task thread.  Owns the channel
/// senders; every send goes through [`flush_dest`](Self::flush_dest) so the
/// apply-before-send invariant holds in one place.
pub(super) struct OutputBuffers {
    batch_size: usize,
    linger: Duration,
    senders: Vec<Sender<Batch>>,
    bufs: Vec<Buf>,
    /// Count of non-empty buffers, for cheap idle checks.
    nonempty: usize,
    /// Global id of the owning task (for flush counters).
    task: usize,
}

impl OutputBuffers {
    pub(super) fn new(
        batch_size: usize,
        linger: Duration,
        senders: Vec<Sender<Batch>>,
        task: usize,
    ) -> Self {
        let n = senders.len();
        Self {
            batch_size: batch_size.max(1),
            linger,
            senders,
            bufs: (0..n)
                .map(|_| Buf {
                    items: Vec::new(),
                    since: None,
                })
                .collect(),
            nonempty: 0,
            task,
        }
    }

    /// Buffers one tuple for `dest`, flushing inline if the buffer fills.
    pub(super) fn push(&mut self, dest: usize, item: Delivered, shared: &Shared, ops: &mut AckOps) {
        let buf = &mut self.bufs[dest];
        if buf.items.is_empty() {
            buf.since = Some(Instant::now());
            self.nonempty += 1;
        }
        buf.items.push(item);
        if buf.items.len() >= self.batch_size {
            self.flush_dest(dest, shared, ops, FlushReason::Full);
        }
    }

    /// Sends `dest`'s buffered batch downstream.  With credit flow on, one
    /// credit must be acquired from `dest`'s pool first — an empty pool
    /// blocks (heartbeating) or sheds the batch, per
    /// [`RtConfig::shed_on_overload`](super::RtConfig::shed_on_overload).
    /// The channel send itself still uses the blocking-with-shutdown-check
    /// loop; bounded channel capacity counts batches.
    pub(super) fn flush_dest(
        &mut self,
        dest: usize,
        shared: &Shared,
        ops: &mut AckOps,
        reason: FlushReason,
    ) {
        let buf = &mut self.bufs[dest];
        if buf.items.is_empty() {
            return;
        }
        // Apply-before-send: the acker must know every edge in this batch
        // (and the tracks/acks queued alongside) before downstream can react.
        ops.apply(shared);
        let batch = std::mem::take(&mut buf.items);
        buf.since = None;
        self.nonempty -= 1;
        let stats = &shared.task_stats[self.task];
        stats.batches_flushed.fetch_add(1, Ordering::Relaxed);
        if reason == FlushReason::Linger {
            stats.linger_flushes.fetch_add(1, Ordering::Relaxed);
        }
        // Credit gate: one credit per batch toward `dest`.  `dest` is the
        // consumer's global task id, which indexes both senders and pools.
        if let Some(credits) = shared.credits.as_ref() {
            if !credits.try_acquire(dest) {
                if shared.rt.shed_on_overload {
                    // Shed: fail every anchored tree in the batch so the
                    // acker (and replay, when on) accounts for each tuple —
                    // shedding loses work, never accounting.
                    shared.shed_batches_total.fetch_add(1, Ordering::Relaxed);
                    shared
                        .shed_tuples_total
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    let now_s = shared.now_s();
                    for item in &batch {
                        if let Some((root, _)) = item.anchor {
                            ops.push(AckOp::Fail { root, now_s });
                        }
                    }
                    ops.apply(shared);
                    return;
                }
                // Block: poll for a credit with heartbeats so the supervisor
                // does not supersede a merely-backpressured task.  On stop
                // the batch is dropped, exactly like the send loop below.
                loop {
                    if shared.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    shared.beat(self.task);
                    std::thread::sleep(Duration::from_micros(200));
                    if credits.try_acquire(dest) {
                        break;
                    }
                }
            }
        }
        let mut msg = Batch {
            items: batch,
            sent_at_us: shared.now_us(),
        };
        loop {
            match self.senders[dest].send_timeout(msg, Duration::from_millis(50)) {
                Ok(()) => break,
                Err(SendTimeoutError::Timeout(back)) => {
                    if shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Blocked on backpressure is not hung: keep heartbeating
                    // so the supervisor does not supersede this task.
                    shared.beat(self.task);
                    msg = back;
                }
                Err(SendTimeoutError::Disconnected(_)) => break,
            }
        }
    }

    /// Flushes every buffer whose oldest entry has lingered past the
    /// deadline.
    pub(super) fn flush_expired(&mut self, now: Instant, shared: &Shared, ops: &mut AckOps) {
        if self.nonempty == 0 {
            return;
        }
        for dest in 0..self.bufs.len() {
            if let Some(since) = self.bufs[dest].since {
                if now.duration_since(since) >= self.linger {
                    self.flush_dest(dest, shared, ops, FlushReason::Linger);
                }
            }
        }
    }

    /// Flushes everything (task drain / shutdown).
    pub(super) fn flush_all(&mut self, shared: &Shared, ops: &mut AckOps) {
        if self.nonempty == 0 {
            return;
        }
        for dest in 0..self.bufs.len() {
            self.flush_dest(dest, shared, ops, FlushReason::Final);
        }
    }

    /// Earliest linger deadline across non-empty buffers, if any.
    pub(super) fn next_deadline(&self) -> Option<Instant> {
        if self.nonempty == 0 {
            return None;
        }
        self.bufs
            .iter()
            .filter_map(|b| b.since)
            .min()
            .map(|since| since + self.linger)
    }

    pub(super) fn has_pending(&self) -> bool {
        self.nonempty > 0
    }
}

//! Routing of emissions to downstream task buffers.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Sender;

use crate::acker::RootId;
use crate::component::{Emission, MessageId};
use crate::grouping::{make_grouping, Grouping, GroupingSpec};
use crate::stream::StreamId;
use crate::topology::{Component, Topology};
use crate::tuple::Fields;

use super::batch::{AckOp, AckOps, Batch, Delivered, OutputBuffers};
use super::config::RtConfig;
use super::Shared;

/// One outbound route owned by a task thread.
struct OutRoute {
    stream: StreamId,
    fields: Fields,
    subscriber_base: usize,
    grouping: Box<dyn Grouping>,
    is_direct: bool,
}

/// Routes emissions from one task into per-destination output buffers.
pub(super) struct Router {
    routes: Vec<OutRoute>,
    out: OutputBuffers,
    shared: Arc<Shared>,
    select_buf: Vec<usize>,
    task: usize,
    /// Cached `shared.tracer.enabled()`: one branch per emission decides
    /// whether to stamp send timestamps for queue-wait measurement.
    trace_on: bool,
    /// Spout message id stamped on the next routed emission's deliveries so
    /// the receiving bolt can deduplicate replays (exactly-once-effect
    /// recovery).  Set by the spout loop before each tracked `route` call;
    /// bolts leave it `None`.
    pub(super) dedup_next: Option<MessageId>,
}

impl Router {
    /// Builds the router for global task `tid` of `component` (whose local
    /// index is `task_index`).
    pub(super) fn new(
        topology: &Topology,
        component: &Component,
        task_index: usize,
        tid: usize,
        senders: Vec<Sender<Batch>>,
        shared: Arc<Shared>,
        rt_cfg: &RtConfig,
    ) -> Self {
        let mut routes = Vec::new();
        for decl in &component.outputs {
            for (sub, spec) in topology.subscribers_of(component.id, &decl.id) {
                let handle = match spec {
                    GroupingSpec::Dynamic(_) => {
                        topology.dynamic_handle(&component.name, &decl.id, &sub.name)
                    }
                    _ => None,
                };
                routes.push(OutRoute {
                    stream: decl.id.clone(),
                    fields: decl.fields.clone(),
                    subscriber_base: sub.base_task.0,
                    grouping: make_grouping(
                        spec,
                        sub.parallelism,
                        &decl.fields,
                        task_index,
                        handle,
                    ),
                    is_direct: matches!(spec, GroupingSpec::Direct),
                });
            }
        }
        let out = OutputBuffers::new(rt_cfg.batch_size, rt_cfg.linger, senders, tid);
        let trace_on = shared.tracer.enabled();
        Self {
            routes,
            out,
            shared,
            select_buf: Vec::new(),
            task: tid,
            trace_on,
            dedup_next: None,
        }
    }

    /// Routes one emission into the output buffers; returns the number of
    /// tuple instances produced.  Buffers that reach `batch_size` flush
    /// inline (with `batch_size == 1` this degenerates to one blocking send
    /// per instance, exactly the unbatched behavior).
    pub(super) fn route(
        &mut self,
        emission: &Emission,
        root: Option<RootId>,
        ops: &mut AckOps,
    ) -> usize {
        let mut delivered = 0;
        // Stamped once per emission, only for traced trees; untraced tuples
        // carry 0 and the consumer skips queue-wait math entirely.
        let sent_at_us = match root {
            Some(root) if self.trace_on && self.shared.tracer.sampled(root) => self.shared.now_us(),
            _ => 0,
        };
        for r in 0..self.routes.len() {
            {
                let route = &self.routes[r];
                if route.stream != emission.stream {
                    continue;
                }
                match (emission.direct_task, route.is_direct) {
                    (Some(_), false) | (None, true) => continue,
                    _ => {}
                }
            }
            self.select_buf.clear();
            match emission.direct_task {
                Some(idx) => self.select_buf.push(idx),
                None => {
                    let mut buf = std::mem::take(&mut self.select_buf);
                    self.routes[r].grouping.select(&emission.tuple, &mut buf);
                    self.select_buf = buf;
                }
            }
            if self.select_buf.is_empty() {
                continue;
            }
            // Rekey once per route, not once per destination: every
            // destination of a route shares the stream's (interned) schema,
            // and when the tuple already carries it — the common case, since
            // schemas come from the same declaration `Arc` — no new tuple is
            // built at all.
            let rekeyed = {
                let route = &self.routes[r];
                if emission.tuple.fields().ptr_eq(&route.fields) {
                    emission.tuple.clone()
                } else {
                    emission.tuple.rekeyed(route.fields.clone())
                }
            };
            for i in 0..self.select_buf.len() {
                let local = self.select_buf[i];
                let dest = self.routes[r].subscriber_base + local;
                let tuple = rekeyed.clone();
                let anchor = root.map(|root| {
                    let edge = self.shared.new_edge_id();
                    ops.push(AckOp::Emit { root, edge });
                    (root, edge)
                });
                self.out.push(
                    dest,
                    Delivered {
                        tuple,
                        anchor,
                        sent_at_us,
                        dedup: self.dedup_next,
                    },
                    &self.shared,
                    ops,
                );
                delivered += 1;
            }
        }
        if delivered > 0 {
            self.shared.task_stats[self.task]
                .emitted
                .fetch_add(delivered as u64, Ordering::Relaxed);
        }
        delivered
    }

    /// Flushes buffers whose linger deadline has passed.
    pub(super) fn flush_expired(&mut self, now: Instant, ops: &mut AckOps) {
        let shared = self.shared.clone();
        self.out.flush_expired(now, &shared, ops);
    }

    /// Flushes every non-empty buffer (drain / shutdown).
    pub(super) fn flush_all(&mut self, ops: &mut AckOps) {
        let shared = self.shared.clone();
        self.out.flush_all(&shared, ops);
    }

    /// Earliest linger deadline across buffered output, if any.
    pub(super) fn next_deadline(&self) -> Option<Instant> {
        self.out.next_deadline()
    }

    pub(super) fn has_pending(&self) -> bool {
        self.out.has_pending()
    }
}

//! Error types for topology construction and runtime operation.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building or running a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A component name was declared twice in the same topology.
    DuplicateComponent(String),
    /// A grouping referenced a component that does not exist.
    UnknownComponent(String),
    /// A grouping referenced a stream the upstream component does not declare.
    UnknownStream {
        /// Upstream component name.
        component: String,
        /// Stream id that was not declared.
        stream: String,
    },
    /// A fields grouping referenced a field absent from the stream schema.
    UnknownField {
        /// Upstream component name.
        component: String,
        /// Stream id.
        stream: String,
        /// Field name that was not found.
        field: String,
    },
    /// Parallelism must be at least 1.
    InvalidParallelism(String),
    /// The topology has no spout, or a bolt has no inbound subscription.
    InvalidTopology(String),
    /// A spout subscribed to a stream (only bolts may subscribe).
    SpoutCannotSubscribe(String),
    /// Split ratio vector was invalid (wrong length, negative entries, all-zero).
    InvalidSplitRatio(String),
    /// Scheduling failed (e.g. more workers requested than slots available).
    Scheduling(String),
    /// Runtime failure (a component panicked or a channel closed unexpectedly).
    Runtime(String),
    /// Configuration value out of range.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateComponent(name) => {
                write!(f, "component `{name}` declared more than once")
            }
            Error::UnknownComponent(name) => write!(f, "unknown component `{name}`"),
            Error::UnknownStream { component, stream } => {
                write!(
                    f,
                    "component `{component}` does not declare stream `{stream}`"
                )
            }
            Error::UnknownField {
                component,
                stream,
                field,
            } => write!(
                f,
                "stream `{stream}` of component `{component}` has no field `{field}`"
            ),
            Error::InvalidParallelism(name) => {
                write!(f, "component `{name}` must have parallelism >= 1")
            }
            Error::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            Error::SpoutCannotSubscribe(name) => {
                write!(f, "spout `{name}` cannot subscribe to a stream")
            }
            Error::InvalidSplitRatio(msg) => write!(f, "invalid split ratio: {msg}"),
            Error::Scheduling(msg) => write!(f, "scheduling error: {msg}"),
            Error::Runtime(msg) => write!(f, "runtime error: {msg}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offender() {
        let e = Error::DuplicateComponent("split".into());
        assert!(e.to_string().contains("split"));
        let e = Error::UnknownStream {
            component: "spout".into(),
            stream: "urls".into(),
        };
        assert!(e.to_string().contains("spout"));
        assert!(e.to_string().contains("urls"));
        let e = Error::UnknownField {
            component: "c".into(),
            stream: "s".into(),
            field: "url".into(),
        };
        assert!(e.to_string().contains("url"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::InvalidParallelism("x".into()),
            Error::InvalidParallelism("x".into())
        );
        assert_ne!(
            Error::InvalidParallelism("x".into()),
            Error::InvalidParallelism("y".into())
        );
    }
}

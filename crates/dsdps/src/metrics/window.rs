//! Streaming statistics primitives: EWMA, Welford online moments, and a
//! log-bucketed latency histogram with quantile queries.

use serde::{Deserialize, Serialize};

/// Exponentially weighted moving average.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    /// Larger alpha weights recent samples more.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Feeds one sample.
    pub fn update(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        });
    }

    /// Current smoothed value, or `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current value or a default.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// Welford's online algorithm for count/mean/variance plus min/max.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one sample.
    pub fn update(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = OnlineStats::new();
    }
}

/// Log-bucketed histogram for positive values (latencies in µs), supporting
/// approximate quantiles with bounded relative error.
///
/// Buckets grow geometrically by `2^(1/SUB)` with `SUB = 8` sub-buckets per
/// octave, giving ≤ ~9 % relative quantile error over `[1 µs, ~5·10^9 µs]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
}

const SUB: usize = 8;
const OCTAVES: usize = 40;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; SUB * OCTAVES],
            total: 0,
            underflow: 0,
        }
    }

    fn bucket_of(value: f64) -> Option<usize> {
        if value < 1.0 {
            return None;
        }
        let idx = (value.log2() * SUB as f64) as usize;
        Some(idx.min(SUB * OCTAVES - 1))
    }

    fn bucket_upper(idx: usize) -> f64 {
        2f64.powf((idx + 1) as f64 / SUB as f64)
    }

    /// Records one sample.  Values below 1.0 land in an underflow bucket
    /// reported as 1.0 by quantile queries.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        match Self::bucket_of(value) {
            Some(idx) => self.counts[idx] += 1,
            None => self.underflow += 1,
        }
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`).  `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(1.0);
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(idx));
            }
        }
        Some(Self::bucket_upper(SUB * OCTAVES - 1))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.underflow += other.underflow;
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.underflow = 0;
    }

    /// Histogram of samples recorded since `earlier` was captured, assuming
    /// `earlier` is a past snapshot of this histogram (counts monotone).
    pub fn diff(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let counts = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        LatencyHistogram {
            counts,
            total: self.total.saturating_sub(earlier.total),
            underflow: self.underflow.saturating_sub(earlier.underflow),
        }
    }

    /// Empirical CDF as `(value_upper_bound, cumulative_fraction)` points
    /// over non-empty buckets.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut cum = self.underflow;
        if self.underflow > 0 {
            out.push((1.0, cum as f64 / self.total as f64));
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((Self::bucket_upper(idx), cum as f64 / self.total as f64));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_initializes() {
        let mut e = Ewma::new(0.5);
        assert!(e.value().is_none());
        assert_eq!(e.value_or(9.0), 9.0);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.update(20.0);
        assert_eq!(e.value(), Some(15.0));
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn online_stats_matches_closed_form() {
        let mut s = OnlineStats::new();
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for x in data {
            s.update(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.update(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.update(x);
        }
        for &x in &data[37..] {
            right.update(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.update(5.0);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn histogram_quantiles_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 10_000);
        for (q, expected) in [(0.5, 5000.0), (0.9, 9000.0), (0.99, 9900.0)] {
            let got = h.quantile(q).unwrap();
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.10, "q={q}: got {got}, expected ~{expected}");
        }
    }

    #[test]
    fn histogram_empty_and_underflow() {
        let mut h = LatencyHistogram::new();
        assert!(h.quantile(0.5).is_none());
        h.record(0.25);
        assert_eq!(h.quantile(0.5), Some(1.0));
        h.record(f64::NAN);
        assert_eq!(h.count(), 1, "NaN is dropped");
    }

    #[test]
    fn histogram_merge_and_reset() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..100 {
            a.record(10.0 + i as f64);
            b.record(1000.0 + i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let median = a.quantile(0.5).unwrap();
        assert!(median > 100.0 && median < 1200.0);
        a.reset();
        assert_eq!(a.count(), 0);
        assert!(a.quantile(0.9).is_none());
    }

    #[test]
    fn histogram_monotone_quantiles() {
        let mut h = LatencyHistogram::new();
        for i in 0..1000 {
            h.record(((i * 7919) % 5000 + 1) as f64);
        }
        let mut last = 0.0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= last, "quantiles must be monotone");
            last = v;
        }
    }
}

#[cfg(test)]
mod diff_tests {
    use super::*;

    #[test]
    fn diff_isolates_window_samples() {
        let mut h = LatencyHistogram::new();
        for i in 0..100 {
            h.record(10.0 + i as f64);
        }
        let snapshot = h.clone();
        for _ in 0..50 {
            h.record(100_000.0);
        }
        let window = h.diff(&snapshot);
        assert_eq!(window.count(), 50);
        assert!(window.quantile(0.5).unwrap() > 50_000.0);
    }

    #[test]
    fn cdf_points_monotone_and_end_at_one() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let pts = h.cdf_points();
        assert!(!pts.is_empty());
        let mut last_frac = 0.0;
        let mut last_v = 0.0;
        for &(v, f) in &pts {
            assert!(v >= last_v && f >= last_frac, "CDF must be monotone");
            last_v = v;
            last_frac = f;
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(LatencyHistogram::new().cdf_points().is_empty());
    }
}

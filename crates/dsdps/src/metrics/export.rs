//! Metrics export: serialize snapshot streams to JSON Lines and CSV so
//! external tooling (plotting, dashboards) can consume a run's history.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use super::MetricsSnapshot;

/// Serializes snapshots as JSON Lines (one snapshot per line).
pub fn to_jsonl(snapshots: &[MetricsSnapshot]) -> String {
    let mut out = String::new();
    for s in snapshots {
        let line = serde_json::to_string(s).expect("snapshots are serializable");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parses JSON Lines back into snapshots (inverse of [`to_jsonl`]).
pub fn from_jsonl(data: &str) -> Result<Vec<MetricsSnapshot>, serde_json::Error> {
    data.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Writes snapshots to a `.jsonl` file.
pub fn write_jsonl(path: &Path, snapshots: &[MetricsSnapshot]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(to_jsonl(snapshots).as_bytes())
}

/// Flattens the topology-level series to CSV
/// (`interval,time_s,spout_emitted,acked,failed,timed_out,avg_ms,p99_ms,throughput`).
pub fn topology_csv(snapshots: &[MetricsSnapshot]) -> String {
    let mut out = String::from(
        "interval,time_s,spout_emitted,acked,failed,timed_out,avg_complete_ms,p99_complete_ms,throughput\n",
    );
    for s in snapshots {
        let t = &s.topology;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            s.interval,
            s.time_s,
            t.spout_emitted,
            t.acked,
            t.failed,
            t.timed_out,
            t.avg_complete_latency_ms,
            t.p99_complete_latency_ms,
            t.throughput
        );
    }
    out
}

/// Flattens the per-worker series to CSV
/// (`interval,worker,machine,cpu_cores,memory_mb,executed,avg_latency_us`).
pub fn workers_csv(snapshots: &[MetricsSnapshot]) -> String {
    let mut out =
        String::from("interval,worker,machine,cpu_cores,memory_mb,executed,avg_latency_us\n");
    for s in snapshots {
        for w in &s.workers {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                s.interval,
                w.worker.0,
                w.machine.0,
                w.cpu_cores_used,
                w.memory_mb,
                w.executed,
                w.avg_execute_latency_us
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MachineStats, TopologyStats, WorkerStats};
    use crate::scheduler::{MachineId, WorkerId};

    fn snap(i: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            interval: i,
            time_s: i as f64,
            interval_s: 1.0,
            tasks: vec![],
            workers: vec![WorkerStats {
                worker: WorkerId(0),
                machine: MachineId(0),
                cpu_cores_used: 0.5,
                memory_mb: 100.0,
                executed: 10 * i,
                tuples_in: 0,
                tuples_out: 0,
                avg_execute_latency_us: 100.0 + i as f64,
                num_tasks: 1,
            }],
            machines: vec![MachineStats {
                machine: MachineId(0),
                cpu_cores_used: 0.5,
                external_load_cores: 0.0,
                cores: 4,
                num_workers: 1,
            }],
            topology: TopologyStats {
                spout_emitted: i,
                acked: i,
                failed: 0,
                timed_out: 0,
                avg_complete_latency_ms: 1.0,
                p99_complete_latency_ms: 2.0,
                throughput: i as f64,
            },
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let snaps: Vec<MetricsSnapshot> = (0..5).map(snap).collect();
        let jsonl = to_jsonl(&snaps);
        assert_eq!(jsonl.lines().count(), 5);
        let back = from_jsonl(&jsonl).unwrap();
        assert_eq!(snaps, back);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let snaps: Vec<MetricsSnapshot> = (0..2).map(snap).collect();
        let jsonl = format!("\n{}\n\n", to_jsonl(&snaps));
        assert_eq!(from_jsonl(&jsonl).unwrap().len(), 2);
    }

    #[test]
    fn topology_csv_has_row_per_interval() {
        let snaps: Vec<MetricsSnapshot> = (0..3).map(snap).collect();
        let csv = topology_csv(&snaps);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("interval,"));
        assert!(lines[2].starts_with("1,"));
    }

    #[test]
    fn workers_csv_flattens_per_worker_rows() {
        let snaps: Vec<MetricsSnapshot> = (0..2).map(snap).collect();
        let csv = workers_csv(&snaps);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("0,0,0,0.5,100,0,100"));
    }

    #[test]
    fn write_jsonl_to_disk() {
        let dir = std::env::temp_dir().join("dsdps-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let snaps: Vec<MetricsSnapshot> = (0..4).map(snap).collect();
        write_jsonl(&path, &snaps).unwrap();
        let data = std::fs::read_to_string(&path).unwrap();
        assert_eq!(from_jsonl(&data).unwrap().len(), 4);
        let _ = std::fs::remove_file(&path);
    }
}

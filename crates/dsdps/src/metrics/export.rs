//! Metrics export: serialize snapshot streams to JSON Lines and CSV so
//! external tooling (plotting, dashboards) can consume a run's history.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use super::MetricsSnapshot;

/// Serializes snapshots as JSON Lines (one snapshot per line).
pub fn to_jsonl(snapshots: &[MetricsSnapshot]) -> String {
    let mut out = String::new();
    for s in snapshots {
        let line = serde_json::to_string(s).expect("snapshots are serializable");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parses JSON Lines back into snapshots (inverse of [`to_jsonl`]).
pub fn from_jsonl(data: &str) -> Result<Vec<MetricsSnapshot>, serde_json::Error> {
    data.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Writes snapshots to a `.jsonl` file.
pub fn write_jsonl(path: &Path, snapshots: &[MetricsSnapshot]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(to_jsonl(snapshots).as_bytes())
}

/// Flattens the topology-level series to CSV
/// (`interval,time_s,spout_emitted,acked,failed,timed_out,avg_ms,p99_ms,throughput`).
pub fn topology_csv(snapshots: &[MetricsSnapshot]) -> String {
    let mut out = String::from(
        "interval,time_s,spout_emitted,acked,failed,timed_out,avg_complete_ms,p99_complete_ms,throughput\n",
    );
    for s in snapshots {
        let t = &s.topology;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            s.interval,
            s.time_s,
            t.spout_emitted,
            t.acked,
            t.failed,
            t.timed_out,
            t.avg_complete_latency_ms,
            t.p99_complete_latency_ms,
            t.throughput
        );
    }
    out
}

/// Flattens the per-worker series to CSV
/// (`interval,worker,machine,cpu_cores,memory_mb,executed,avg_latency_us`).
pub fn workers_csv(snapshots: &[MetricsSnapshot]) -> String {
    let mut out =
        String::from("interval,worker,machine,cpu_cores,memory_mb,executed,avg_latency_us\n");
    for s in snapshots {
        for w in &s.workers {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                s.interval,
                w.worker.0,
                w.machine.0,
                w.cpu_cores_used,
                w.memory_mb,
                w.executed,
                w.avg_execute_latency_us
            );
        }
    }
    out
}

/// Flattens the full per-task series to CSV, one row per task per interval
/// — symmetric with [`topology_csv`], covering every [`TaskStats`] field
/// (`interval,time_s,task,component,worker,executed,emitted,acked,failed,
/// avg_execute_latency_us,queue_len,capacity,batches_flushed,linger_flushes,
/// panics,restarts`).
///
/// [`TaskStats`]: super::TaskStats
pub fn task_csv(snapshots: &[MetricsSnapshot]) -> String {
    let mut out = String::from(
        "interval,time_s,task,component,worker,executed,emitted,acked,failed,\
         avg_execute_latency_us,queue_len,capacity,batches_flushed,linger_flushes,\
         panics,restarts\n",
    );
    for s in snapshots {
        for t in &s.tasks {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                s.interval,
                s.time_s,
                t.task.0,
                t.component,
                t.worker.0,
                t.executed,
                t.emitted,
                t.acked,
                t.failed,
                t.avg_execute_latency_us,
                t.queue_len,
                t.capacity,
                t.batches_flushed,
                t.linger_flushes,
                t.panics,
                t.restarts
            );
        }
    }
    out
}

/// Flattens the full per-worker series to CSV, one row per worker per
/// interval — the complete [`WorkerStats`] counterpart of [`task_csv`]
/// (`interval,time_s,worker,machine,cpu_cores_used,memory_mb,executed,
/// tuples_in,tuples_out,avg_execute_latency_us,num_tasks`).  The narrower
/// [`workers_csv`] is kept for existing tooling.
///
/// [`WorkerStats`]: super::WorkerStats
pub fn worker_csv(snapshots: &[MetricsSnapshot]) -> String {
    let mut out = String::from(
        "interval,time_s,worker,machine,cpu_cores_used,memory_mb,executed,\
         tuples_in,tuples_out,avg_execute_latency_us,num_tasks\n",
    );
    for s in snapshots {
        for w in &s.workers {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                s.interval,
                s.time_s,
                w.worker.0,
                w.machine.0,
                w.cpu_cores_used,
                w.memory_mb,
                w.executed,
                w.tuples_in,
                w.tuples_out,
                w.avg_execute_latency_us,
                w.num_tasks
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MachineStats, TaskStats, TopologyStats, WorkerStats};
    use crate::scheduler::{MachineId, WorkerId};
    use crate::topology::TaskId;

    fn snap(i: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            interval: i,
            time_s: i as f64,
            interval_s: 1.0,
            tasks: vec![TaskStats {
                task: TaskId(1),
                component: "work".into(),
                worker: WorkerId(0),
                executed: 10 * i,
                emitted: 5 * i,
                acked: 10 * i,
                failed: 0,
                avg_execute_latency_us: 50.0 + i as f64,
                queue_len: 2,
                capacity: 0.25,
                batches_flushed: i,
                linger_flushes: 0,
                panics: 0,
                restarts: 0,
                last_panic: None,
                checkpoints_taken: 0,
                restores: 0,
                snapshot_bytes: 0,
            }],
            workers: vec![WorkerStats {
                worker: WorkerId(0),
                machine: MachineId(0),
                cpu_cores_used: 0.5,
                memory_mb: 100.0,
                executed: 10 * i,
                tuples_in: 0,
                tuples_out: 0,
                avg_execute_latency_us: 100.0 + i as f64,
                num_tasks: 1,
            }],
            machines: vec![MachineStats {
                machine: MachineId(0),
                cpu_cores_used: 0.5,
                external_load_cores: 0.0,
                cores: 4,
                num_workers: 1,
            }],
            topology: TopologyStats {
                spout_emitted: i,
                acked: i,
                failed: 0,
                timed_out: 0,
                avg_complete_latency_ms: 1.0,
                p99_complete_latency_ms: 2.0,
                throughput: i as f64,
            },
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let snaps: Vec<MetricsSnapshot> = (0..5).map(snap).collect();
        let jsonl = to_jsonl(&snaps);
        assert_eq!(jsonl.lines().count(), 5);
        let back = from_jsonl(&jsonl).unwrap();
        assert_eq!(snaps, back);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let snaps: Vec<MetricsSnapshot> = (0..2).map(snap).collect();
        let jsonl = format!("\n{}\n\n", to_jsonl(&snaps));
        assert_eq!(from_jsonl(&jsonl).unwrap().len(), 2);
    }

    #[test]
    fn topology_csv_has_row_per_interval() {
        let snaps: Vec<MetricsSnapshot> = (0..3).map(snap).collect();
        let csv = topology_csv(&snaps);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("interval,"));
        assert!(lines[2].starts_with("1,"));
    }

    #[test]
    fn workers_csv_flattens_per_worker_rows() {
        let snaps: Vec<MetricsSnapshot> = (0..2).map(snap).collect();
        let csv = workers_csv(&snaps);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("0,0,0,0.5,100,0,100"));
    }

    #[test]
    fn task_csv_flattens_every_field() {
        let snaps: Vec<MetricsSnapshot> = (0..2).map(snap).collect();
        let csv = task_csv(&snaps);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + one task row per interval");
        let header_cols = lines[0].split(',').count();
        assert_eq!(header_cols, 16);
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), header_cols, "ragged row: {row}");
        }
        assert!(lines[2].starts_with("1,1,1,work,0,10,5,10,0,51,2,0.25,1,0,0,0"));
    }

    #[test]
    fn worker_csv_flattens_every_field() {
        let snaps: Vec<MetricsSnapshot> = (0..2).map(snap).collect();
        let csv = worker_csv(&snaps);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        let header_cols = lines[0].split(',').count();
        assert_eq!(header_cols, 11);
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), header_cols, "ragged row: {row}");
        }
        assert!(lines[1].starts_with("0,0,0,0,0.5,100,0,0,0,100,1"));
    }

    #[test]
    fn csv_survives_jsonl_round_trip() {
        // JSONL is the lossless interchange format; every CSV flattener must
        // produce identical output from a round-tripped history.
        let snaps: Vec<MetricsSnapshot> = (0..4).map(snap).collect();
        let back = from_jsonl(&to_jsonl(&snaps)).unwrap();
        assert_eq!(topology_csv(&snaps), topology_csv(&back));
        assert_eq!(task_csv(&snaps), task_csv(&back));
        assert_eq!(worker_csv(&snaps), worker_csv(&back));
        assert_eq!(workers_csv(&snaps), workers_csv(&back));
    }

    #[test]
    fn write_jsonl_to_disk() {
        let dir = std::env::temp_dir().join("dsdps-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let snaps: Vec<MetricsSnapshot> = (0..4).map(snap).collect();
        write_jsonl(&path, &snaps).unwrap();
        let data = std::fs::read_to_string(&path).unwrap();
        assert_eq!(from_jsonl(&data).unwrap().len(), 4);
        let _ = std::fs::remove_file(&path);
    }
}

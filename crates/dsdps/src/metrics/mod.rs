//! Multilevel runtime statistics — the observation surface of the paper's
//! control framework.
//!
//! Per metrics interval the runtime produces a [`MetricsSnapshot`] holding
//! statistics at three levels, matching the paper's "multilevel runtime
//! statistics":
//!
//! * **task level** ([`TaskStats`]): executed/emitted counts, execute
//!   latency, input-queue length, capacity (busy fraction);
//! * **worker level** ([`WorkerStats`]): CPU utilization, memory footprint,
//!   aggregate tuple rates of the worker's tasks;
//! * **machine level** ([`MachineStats`]): total load, externally injected
//!   load (faults / co-located foreign processes), worker count.
//!
//! [`MetricsHistory`] keeps a bounded run of snapshots so the predictor can
//! assemble input sequences.

pub mod export;
pub mod window;

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::scheduler::{MachineId, WorkerId};
use crate::topology::TaskId;

pub use window::{Ewma, LatencyHistogram, OnlineStats};

/// Per-task statistics for one metrics interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// Global task id.
    pub task: TaskId,
    /// Component name the task belongs to.
    pub component: String,
    /// Worker hosting the task.
    pub worker: WorkerId,
    /// Tuples executed (bolts) or `next_tuple` calls producing output (spouts).
    pub executed: u64,
    /// Tuples emitted downstream.
    pub emitted: u64,
    /// Tuples acked by this task.
    pub acked: u64,
    /// Tuples failed by this task.
    pub failed: u64,
    /// Mean execute latency over the interval, µs.
    pub avg_execute_latency_us: f64,
    /// Input queue length sampled at the interval boundary.
    pub queue_len: usize,
    /// Fraction of the interval the task was busy executing (Storm's
    /// "capacity" metric).
    pub capacity: f64,
    /// Output batches flushed downstream (threaded runtime; 0 in the
    /// simulator, which delivers per tuple).
    pub batches_flushed: u64,
    /// Of those, batches flushed by the linger deadline rather than by
    /// reaching the configured batch size.
    pub linger_flushes: u64,
    /// Cumulative panics caught in the task's thread (threaded runtime; 0 in
    /// the simulator).
    pub panics: u64,
    /// Cumulative supervisor restarts of the task (threaded runtime; 0 in
    /// the simulator).
    pub restarts: u64,
    /// Message of the most recent caught panic, if any.
    pub last_panic: Option<String>,
    /// Cumulative checkpoints deposited by the task (threaded runtime with
    /// checkpointing on; 0 otherwise).
    pub checkpoints_taken: u64,
    /// Cumulative snapshot restores performed by restarted generations of
    /// the task.
    pub restores: u64,
    /// Cumulative serialized snapshot bytes deposited by the task.
    pub snapshot_bytes: u64,
}

/// Per-worker statistics for one metrics interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker id.
    pub worker: WorkerId,
    /// Machine hosting the worker.
    pub machine: MachineId,
    /// CPU utilization of the worker process in cores (sum of its tasks'
    /// busy fractions).
    pub cpu_cores_used: f64,
    /// Synthetic memory footprint in MB (base + queued tuples).
    pub memory_mb: f64,
    /// Tuples executed by the worker's tasks.
    pub executed: u64,
    /// Tuples entering the worker from upstream.
    pub tuples_in: u64,
    /// Tuples leaving the worker downstream.
    pub tuples_out: u64,
    /// Mean execute latency across the worker's tasks, µs (execution-count
    /// weighted).
    pub avg_execute_latency_us: f64,
    /// Number of tasks hosted.
    pub num_tasks: usize,
}

/// Per-machine statistics for one metrics interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Machine id.
    pub machine: MachineId,
    /// CPU cores in use by stream workers.
    pub cpu_cores_used: f64,
    /// CPU cores consumed by external (injected / foreign) load.
    pub external_load_cores: f64,
    /// Core count of the machine.
    pub cores: usize,
    /// Number of co-located workers.
    pub num_workers: usize,
}

impl MachineStats {
    /// Total utilization in `[0, ∞)` relative to capacity (can exceed 1
    /// when oversubscribed).
    pub fn utilization(&self) -> f64 {
        (self.cpu_cores_used + self.external_load_cores) / self.cores as f64
    }
}

/// Topology-level statistics for one metrics interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Spout tuples emitted during the interval.
    pub spout_emitted: u64,
    /// Tuple trees fully acked during the interval.
    pub acked: u64,
    /// Tuple trees failed during the interval.
    pub failed: u64,
    /// Tuple trees timed out during the interval.
    pub timed_out: u64,
    /// Mean complete latency (spout emit → tree acked) in ms.
    pub avg_complete_latency_ms: f64,
    /// 99th-percentile complete latency in ms.
    pub p99_complete_latency_ms: f64,
    /// Acked tuples per second.
    pub throughput: f64,
}

/// One metrics interval across all levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Interval index (0-based).
    pub interval: u64,
    /// End time of the interval on the runtime clock, seconds.
    pub time_s: f64,
    /// Length of the interval, seconds.
    pub interval_s: f64,
    /// Task-level rows.
    pub tasks: Vec<TaskStats>,
    /// Worker-level rows.
    pub workers: Vec<WorkerStats>,
    /// Machine-level rows.
    pub machines: Vec<MachineStats>,
    /// Topology-level row.
    pub topology: TopologyStats,
}

impl MetricsSnapshot {
    /// Worker row by id.
    pub fn worker(&self, id: WorkerId) -> Option<&WorkerStats> {
        self.workers.iter().find(|w| w.worker == id)
    }

    /// Machine row by id.
    pub fn machine(&self, id: MachineId) -> Option<&MachineStats> {
        self.machines.iter().find(|m| m.machine == id)
    }

    /// Task rows of one worker.
    pub fn tasks_of_worker(&self, id: WorkerId) -> impl Iterator<Item = &TaskStats> {
        self.tasks.iter().filter(move |t| t.worker == id)
    }

    /// Mean per-tuple processing time of a worker over the interval, µs —
    /// the quantity the paper's DRNN predicts.  `None` if the worker
    /// executed nothing.
    pub fn worker_avg_latency_us(&self, id: WorkerId) -> Option<f64> {
        let w = self.worker(id)?;
        (w.executed > 0).then_some(w.avg_execute_latency_us)
    }
}

/// Bounded history of snapshots.
#[derive(Debug, Clone, Default)]
pub struct MetricsHistory {
    snapshots: VecDeque<MetricsSnapshot>,
    capacity: usize,
}

impl MetricsHistory {
    /// History bounded to `capacity` snapshots (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        MetricsHistory {
            snapshots: VecDeque::new(),
            capacity,
        }
    }

    /// Appends a snapshot, evicting the oldest when over capacity.
    pub fn push(&mut self, snapshot: MetricsSnapshot) {
        self.snapshots.push_back(snapshot);
        if self.capacity > 0 && self.snapshots.len() > self.capacity {
            self.snapshots.pop_front();
        }
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when no snapshots are retained.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Most recent snapshot.
    pub fn latest(&self) -> Option<&MetricsSnapshot> {
        self.snapshots.back()
    }

    /// The last `n` snapshots, oldest first.  `None` if fewer are retained.
    pub fn last_n(&self, n: usize) -> Option<Vec<&MetricsSnapshot>> {
        if self.snapshots.len() < n {
            return None;
        }
        Some(
            self.snapshots
                .iter()
                .skip(self.snapshots.len() - n)
                .collect(),
        )
    }

    /// Iterates snapshots oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &MetricsSnapshot> {
        self.snapshots.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(interval: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            interval,
            time_s: interval as f64,
            interval_s: 1.0,
            tasks: vec![TaskStats {
                task: TaskId(0),
                component: "b".into(),
                worker: WorkerId(0),
                executed: 100,
                emitted: 100,
                acked: 100,
                failed: 0,
                avg_execute_latency_us: 120.0,
                queue_len: 3,
                capacity: 0.4,
                batches_flushed: 0,
                linger_flushes: 0,
                panics: 0,
                restarts: 0,
                last_panic: None,
                checkpoints_taken: 0,
                restores: 0,
                snapshot_bytes: 0,
            }],
            workers: vec![WorkerStats {
                worker: WorkerId(0),
                machine: MachineId(0),
                cpu_cores_used: 0.4,
                memory_mb: 128.0,
                executed: 100,
                tuples_in: 100,
                tuples_out: 100,
                avg_execute_latency_us: 120.0,
                num_tasks: 1,
            }],
            machines: vec![MachineStats {
                machine: MachineId(0),
                cpu_cores_used: 0.4,
                external_load_cores: 1.0,
                cores: 4,
                num_workers: 1,
            }],
            topology: TopologyStats {
                spout_emitted: 100,
                acked: 100,
                failed: 0,
                timed_out: 0,
                avg_complete_latency_ms: 5.0,
                p99_complete_latency_ms: 12.0,
                throughput: 100.0,
            },
        }
    }

    #[test]
    fn snapshot_lookups() {
        let s = snap(0);
        assert!(s.worker(WorkerId(0)).is_some());
        assert!(s.worker(WorkerId(9)).is_none());
        assert!(s.machine(MachineId(0)).is_some());
        assert_eq!(s.tasks_of_worker(WorkerId(0)).count(), 1);
        assert_eq!(s.worker_avg_latency_us(WorkerId(0)), Some(120.0));
        assert_eq!(s.worker_avg_latency_us(WorkerId(9)), None);
    }

    #[test]
    fn machine_utilization_includes_external_load() {
        let s = snap(0);
        let m = s.machine(MachineId(0)).unwrap();
        assert!((m.utilization() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn history_bounded_eviction() {
        let mut h = MetricsHistory::new(3);
        for i in 0..5 {
            h.push(snap(i));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.latest().unwrap().interval, 4);
        let intervals: Vec<u64> = h.iter().map(|s| s.interval).collect();
        assert_eq!(intervals, vec![2, 3, 4]);
    }

    #[test]
    fn history_last_n() {
        let mut h = MetricsHistory::new(0);
        assert!(h.is_empty());
        for i in 0..10 {
            h.push(snap(i));
        }
        assert_eq!(h.len(), 10, "capacity 0 = unbounded");
        let last3 = h.last_n(3).unwrap();
        assert_eq!(
            last3.iter().map(|s| s.interval).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert!(h.last_n(11).is_none());
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let s = snap(7);
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

//! Stream transport for the distributed runtime: TCP everywhere, Unix
//! domain sockets where the platform has them.
//!
//! The transport deals in [`Frame`]s.  Reading is incremental — a
//! [`FrameReader`] accumulates bytes into one reusable buffer and yields a
//! frame as soon as its length prefix is satisfied, returning `Ok(None)`
//! on a read timeout so callers can interleave periodic work.  Writing
//! goes through a [`BatchWriter`] that performs the encoder-side batching
//! the `RtConfig` knobs describe: tuple deliveries accumulate until
//! `batch_size` of them (or the `linger` deadline) and leave as a single
//! `TupleBatch` frame in one vectored write; control frames flush pending
//! tuples first so cross-frame ordering is preserved.

use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::codec::{self, Frame, WireTuple, MAX_FRAME_LEN};
use crate::error::{Error, Result};
use crate::telemetry::HOT_PATH_TELEMETRY;

/// Live per-connection transport counters, shared between the reader and
/// writer halves of one socket and whatever aggregates them (the
/// coordinator mirrors these into its metrics registry as
/// `dsdps_dist_conn_*` samples; the worker exports them in its
/// `MetricsPush`).  All fields are relaxed atomics — one store per frame,
/// nothing per tuple — and the µs timers are skipped entirely when
/// [`HOT_PATH_TELEMETRY`] is compiled out.
#[derive(Debug)]
pub struct ConnStats {
    /// Clock epoch for [`ConnStats::now_us`] / `last_rx_us`.
    epoch: Instant,
    /// Payload bytes received.
    pub bytes_in: AtomicU64,
    /// Frames decoded.
    pub frames_in: AtomicU64,
    /// Payload bytes written (including length prefixes).
    pub bytes_out: AtomicU64,
    /// Frames written.
    pub frames_out: AtomicU64,
    /// Cumulative frame-decode time, µs.
    pub decode_us: AtomicU64,
    /// Cumulative frame-encode time, µs.
    pub encode_us: AtomicU64,
    /// Cumulative time spent inside socket writes, µs.  A healthy
    /// connection keeps this near zero per frame; a peer that stops
    /// draining (the §15.4 deadlock class) makes it climb — which is the
    /// point of tracking it.
    pub write_block_us: AtomicU64,
    /// Epoch-relative µs of the most recent successfully decoded frame
    /// (the coordinator's heartbeat-lag detector reads this).
    pub last_rx_us: AtomicU64,
}

impl Default for ConnStats {
    fn default() -> Self {
        ConnStats {
            epoch: Instant::now(),
            bytes_in: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            decode_us: AtomicU64::new(0),
            encode_us: AtomicU64::new(0),
            write_block_us: AtomicU64::new(0),
            last_rx_us: AtomicU64::new(0),
        }
    }
}

impl ConnStats {
    /// A fresh zeroed stats block with its epoch at now.
    pub fn new() -> Arc<Self> {
        Arc::new(ConnStats::default())
    }

    /// µs elapsed since the stats block was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Seconds since the last decoded frame (`now - last_rx_us`); `None`
    /// before the first frame arrives.
    pub fn rx_silence_s(&self) -> Option<f64> {
        let last = self.last_rx_us.load(Ordering::Relaxed);
        if last == 0 {
            return None;
        }
        Some((self.now_us().saturating_sub(last)) as f64 / 1e6)
    }
}

/// Where a coordinator listens / a worker connects.
///
/// Rendered as `tcp:<addr>` or `unix:<path>` in the `DSDPS_DIST_ADDR`
/// environment variable handed to worker processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7410`.
    Tcp(String),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl Endpoint {
    /// Renders the endpoint for `DSDPS_DIST_ADDR`.
    pub fn to_env(&self) -> String {
        match self {
            Endpoint::Tcp(addr) => format!("tcp:{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => format!("unix:{}", path.display()),
        }
    }

    /// Parses a `DSDPS_DIST_ADDR` value.
    pub fn from_env(value: &str) -> Result<Endpoint> {
        if let Some(addr) = value.strip_prefix("tcp:") {
            return Ok(Endpoint::Tcp(addr.to_owned()));
        }
        #[cfg(unix)]
        if let Some(path) = value.strip_prefix("unix:") {
            return Ok(Endpoint::Unix(path.into()));
        }
        Err(Error::Config(format!("unparseable endpoint `{value}`")))
    }
}

/// A listening socket of either family.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener on an OS-assigned loopback port.
    pub fn tcp_loopback() -> Result<(Listener, Endpoint)> {
        let l =
            TcpListener::bind("127.0.0.1:0").map_err(|e| Error::Runtime(format!("bind: {e}")))?;
        let addr = l
            .local_addr()
            .map_err(|e| Error::Runtime(format!("local_addr: {e}")))?;
        Ok((Listener::Tcp(l), Endpoint::Tcp(addr.to_string())))
    }

    /// Binds a Unix-domain listener on a fresh socket path under the
    /// system temp directory.
    #[cfg(unix)]
    pub fn unix_temp() -> Result<(Listener, Endpoint)> {
        // Process id + monotonic counter keeps concurrent coordinators in
        // one test binary from colliding.
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "dsdps-dist-{}-{}.sock",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        let l = UnixListener::bind(&path)
            .map_err(|e| Error::Runtime(format!("bind {}: {e}", path.display())))?;
        Ok((Listener::Unix(l), Endpoint::Unix(path)))
    }

    /// Switches the listener between blocking and non-blocking accepts.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    /// Accepts one connection; `Ok(None)` when non-blocking and idle.
    pub fn accept(&self) -> io::Result<Option<Conn>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    let _ = s.set_nodelay(true);
                    Ok(Some(Conn::Tcp(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Conn::Unix(s))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// One established connection of either family.
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Connects to `endpoint`, retrying until `timeout` (the coordinator
    /// may not be listening yet when a worker launches).
    pub fn connect(endpoint: &Endpoint, timeout: Duration) -> Result<Conn> {
        let deadline = Instant::now() + timeout;
        loop {
            let attempt = match endpoint {
                Endpoint::Tcp(addr) => TcpStream::connect(addr).map(|s| {
                    let _ = s.set_nodelay(true);
                    Conn::Tcp(s)
                }),
                #[cfg(unix)]
                Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            };
            match attempt {
                Ok(conn) => return Ok(conn),
                Err(e) if Instant::now() >= deadline => {
                    return Err(Error::Runtime(format!(
                        "connect to {}: {e}",
                        endpoint.to_env()
                    )));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// An independently usable handle to the same socket (reader and
    /// writer sides of one connection live on different threads).
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Bounds how long a read blocks (`None` = forever).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Shuts down both directions, unblocking any reader.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write_vectored(bufs),
            #[cfg(unix)]
            Conn::Unix(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Incremental frame reader with one reusable receive buffer.
pub struct FrameReader {
    conn: Conn,
    buf: Vec<u8>,
    /// Bytes of `buf` that hold received-but-unparsed data.
    filled: usize,
    /// Parse offset within `buf[..filled]`.
    pos: usize,
    /// Total payload bytes received (telemetry).
    pub bytes_in: u64,
    /// Total frames decoded (telemetry).
    pub frames_in: u64,
    /// Shared live counters, when someone is watching.
    stats: Option<Arc<ConnStats>>,
}

impl FrameReader {
    /// Wraps a connection.
    pub fn new(conn: Conn) -> Self {
        FrameReader {
            conn,
            buf: vec![0; 64 * 1024],
            filled: 0,
            pos: 0,
            bytes_in: 0,
            frames_in: 0,
            stats: None,
        }
    }

    /// Attaches a shared stats block updated on every read/decode.
    pub fn set_stats(&mut self, stats: Arc<ConnStats>) {
        self.stats = Some(stats);
    }

    /// Bounds how long [`read_frame`](Self::read_frame) blocks.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.conn.set_read_timeout(t)
    }

    /// Tries to parse one complete frame out of the buffered bytes.
    fn parse_buffered(&mut self) -> Result<Option<Frame>> {
        let avail = &self.buf[self.pos..self.filled];
        let mut d = codec::Dec::new(avail);
        let len = match d.varint() {
            Ok(len) => len,
            // An incomplete varint at the buffer tail: need more bytes.
            Err(codec::CodecError::Truncated) => return Ok(None),
            Err(e) => return Err(Error::Runtime(format!("frame length: {e}"))),
        };
        if len as usize > MAX_FRAME_LEN {
            return Err(Error::Runtime(format!("oversized frame ({len} bytes)")));
        }
        if (len as usize) > d.remaining() {
            return Ok(None);
        }
        let header = avail.len() - d.remaining();
        let body_start = self.pos + header;
        let body_end = body_start + len as usize;
        let t0 = match &self.stats {
            Some(_) if HOT_PATH_TELEMETRY => Some(Instant::now()),
            _ => None,
        };
        let frame = codec::decode_frame(&self.buf[body_start..body_end])
            .map_err(|e| Error::Runtime(format!("decode frame: {e}")))?;
        self.pos = body_end;
        self.frames_in += 1;
        if let Some(stats) = &self.stats {
            stats.frames_in.fetch_add(1, Ordering::Relaxed);
            stats.last_rx_us.store(stats.now_us(), Ordering::Relaxed);
            if let Some(t0) = t0 {
                stats
                    .decode_us
                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            }
        }
        Ok(Some(frame))
    }

    /// Reads the next frame.  `Ok(None)` means the read timed out (per the
    /// connection's read timeout) with no complete frame buffered; an EOF
    /// or socket error is `Err`.
    pub fn read_frame(&mut self) -> Result<Option<Frame>> {
        loop {
            if let Some(frame) = self.parse_buffered()? {
                return Ok(Some(frame));
            }
            // Compact consumed bytes to the front before growing.
            if self.pos > 0 {
                self.buf.copy_within(self.pos..self.filled, 0);
                self.filled -= self.pos;
                self.pos = 0;
            }
            if self.filled == self.buf.len() {
                self.buf
                    .resize((self.buf.len() * 2).min(MAX_FRAME_LEN + 16), 0);
            }
            match self.conn.read(&mut self.buf[self.filled..]) {
                Ok(0) => return Err(Error::Runtime("connection closed".into())),
                Ok(n) => {
                    self.filled += n;
                    self.bytes_in += n as u64;
                    if let Some(stats) = &self.stats {
                        stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::Runtime(format!("read: {e}"))),
            }
        }
    }
}

/// Batching frame writer: the wire-side half of `batch_size`/`linger`.
///
/// Tuple deliveries pushed with [`push_tuple`](Self::push_tuple) are held
/// until `batch_size` of them accumulate or `linger` elapses, then leave
/// as one `TupleBatch` frame.  Control frames sent with
/// [`send`](Self::send) flush pending tuples first, so the byte stream
/// never reorders across frame kinds.  All frame bytes go out as a single
/// vectored write of `[length-prefix, body]` from one reusable buffer.
pub struct BatchWriter {
    conn: Conn,
    items: Vec<WireTuple>,
    scratch: Vec<u8>,
    batch_size: usize,
    linger: Duration,
    oldest_item: Option<Instant>,
    /// Total payload bytes written (telemetry).
    pub bytes_out: u64,
    /// Total frames written (telemetry).
    pub frames_out: u64,
    /// Shared live counters, when someone is watching.
    stats: Option<Arc<ConnStats>>,
}

impl BatchWriter {
    /// Wraps a connection with the given batching knobs.
    pub fn new(conn: Conn, batch_size: usize, linger: Duration) -> Self {
        BatchWriter {
            conn,
            items: Vec::with_capacity(batch_size.max(1)),
            scratch: Vec::with_capacity(8 * 1024),
            batch_size: batch_size.max(1),
            linger,
            oldest_item: None,
            bytes_out: 0,
            frames_out: 0,
            stats: None,
        }
    }

    /// Attaches a shared stats block updated on every encode/write.
    pub fn set_stats(&mut self, stats: Arc<ConnStats>) {
        self.stats = Some(stats);
    }

    /// Queues one tuple delivery, flushing if the batch is now full.
    pub fn push_tuple(&mut self, item: WireTuple) -> Result<()> {
        self.items.push(item);
        if self.oldest_item.is_none() {
            self.oldest_item = Some(Instant::now());
        }
        if self.items.len() >= self.batch_size {
            self.flush_items()?;
        }
        Ok(())
    }

    /// Sends a control frame, flushing pending tuple deliveries first.
    pub fn send(&mut self, frame: &Frame) -> Result<()> {
        self.flush_items()?;
        self.write_frame_body(|buf| codec::encode_frame_body(frame, buf))
    }

    /// Flushes pending tuples if the linger deadline has passed; returns
    /// the deadline of the oldest still-pending tuple otherwise.
    pub fn poll_linger(&mut self) -> Result<Option<Instant>> {
        match self.oldest_item {
            Some(t0) if t0.elapsed() >= self.linger => {
                self.flush_items()?;
                Ok(None)
            }
            Some(t0) => Ok(Some(t0 + self.linger)),
            None => Ok(None),
        }
    }

    /// Flushes any pending tuple batch immediately.
    pub fn flush_items(&mut self) -> Result<()> {
        if self.items.is_empty() {
            self.oldest_item = None;
            return Ok(());
        }
        let t0 = self.encode_clock();
        self.scratch.clear();
        self.scratch.push(super::codec::TUPLE_BATCH_TAG);
        codec::write_varint(&mut self.scratch, self.items.len() as u64);
        for item in self.items.drain(..) {
            codec::write_tuple_item(&mut self.scratch, &item);
        }
        self.note_encode(t0);
        self.oldest_item = None;
        self.write_scratch()
    }

    fn write_frame_body(&mut self, encode: impl FnOnce(&mut Vec<u8>)) -> Result<()> {
        let t0 = self.encode_clock();
        self.scratch.clear();
        encode(&mut self.scratch);
        self.note_encode(t0);
        self.write_scratch()
    }

    fn encode_clock(&self) -> Option<Instant> {
        match &self.stats {
            Some(_) if HOT_PATH_TELEMETRY => Some(Instant::now()),
            _ => None,
        }
    }

    fn note_encode(&self, t0: Option<Instant>) {
        if let (Some(stats), Some(t0)) = (&self.stats, t0) {
            stats
                .encode_us
                .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        }
    }

    /// Writes `[varint(len), scratch]` as one vectored write.
    fn write_scratch(&mut self) -> Result<()> {
        let mut prefix = Vec::with_capacity(10);
        codec::write_varint(&mut prefix, self.scratch.len() as u64);
        let total = prefix.len() + self.scratch.len();
        let t0 = self.encode_clock();
        let mut written = 0usize;
        while written < total {
            let bufs = if written < prefix.len() {
                [
                    IoSlice::new(&prefix[written..]),
                    IoSlice::new(&self.scratch),
                ]
            } else {
                [
                    IoSlice::new(&self.scratch[written - prefix.len()..]),
                    IoSlice::new(&[]),
                ]
            };
            match self.conn.write_vectored(&bufs) {
                Ok(0) => return Err(Error::Runtime("connection closed on write".into())),
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::Runtime(format!("write: {e}"))),
            }
        }
        self.bytes_out += total as u64;
        self.frames_out += 1;
        if let Some(stats) = &self.stats {
            stats.bytes_out.fetch_add(total as u64, Ordering::Relaxed);
            stats.frames_out.fetch_add(1, Ordering::Relaxed);
            if let Some(t0) = t0 {
                stats
                    .write_block_us
                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Shuts the underlying socket down (unblocks the peer's reader).
    pub fn shutdown(&self) {
        self.conn.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    fn pair() -> (Conn, Conn) {
        let (listener, ep) = Listener::tcp_loopback().unwrap();
        let client = Conn::connect(&ep, Duration::from_secs(5)).unwrap();
        listener.set_nonblocking(false).unwrap();
        let server = listener.accept().unwrap().unwrap();
        (client, server)
    }

    #[test]
    fn endpoint_env_round_trips() {
        let e = Endpoint::Tcp("127.0.0.1:9999".into());
        assert_eq!(Endpoint::from_env(&e.to_env()).unwrap(), e);
        #[cfg(unix)]
        {
            let u = Endpoint::Unix("/tmp/x.sock".into());
            assert_eq!(Endpoint::from_env(&u.to_env()).unwrap(), u);
        }
        assert!(Endpoint::from_env("carrier-pigeon:coop7").is_err());
    }

    #[test]
    fn frames_survive_the_socket() {
        let (client, server) = pair();
        let mut w = BatchWriter::new(client, 4, Duration::from_millis(1));
        let mut r = FrameReader::new(server);
        r.conn
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        let hello = Frame::Hello {
            worker: 1,
            pid: 42,
            clock_us: 17,
        };
        w.send(&hello).unwrap();
        for i in 0..4 {
            w.push_tuple(WireTuple {
                token: i,
                dest_task: 2,
                stream: 0,
                dedup: None,
                trace_root: Some(i + 1),
                values: vec![Value::from(i as i64)],
            })
            .unwrap();
        }
        w.send(&Frame::Shutdown).unwrap();

        assert_eq!(r.read_frame().unwrap().unwrap(), hello);
        match r.read_frame().unwrap().unwrap() {
            Frame::TupleBatch { items } => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[3].token, 3);
            }
            other => panic!("expected tuple batch, got {}", other.kind()),
        }
        assert_eq!(r.read_frame().unwrap().unwrap(), Frame::Shutdown);
    }

    #[test]
    fn linger_flushes_partial_batches() {
        let (client, server) = pair();
        let mut w = BatchWriter::new(client, 64, Duration::from_millis(5));
        let mut r = FrameReader::new(server);
        r.conn
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        w.push_tuple(WireTuple {
            token: 7,
            dest_task: 0,
            stream: 0,
            dedup: Some(9),
            trace_root: None,
            values: vec![],
        })
        .unwrap();
        // Not full: nothing on the wire until the linger deadline passes.
        std::thread::sleep(Duration::from_millis(10));
        w.poll_linger().unwrap();
        match r.read_frame().unwrap().unwrap() {
            Frame::TupleBatch { items } => assert_eq!(items[0].token, 7),
            other => panic!("expected tuple batch, got {}", other.kind()),
        }
    }

    #[test]
    fn conn_stats_track_frames_and_bytes() {
        let (client, server) = pair();
        let mut w = BatchWriter::new(client, 1, Duration::ZERO);
        let mut r = FrameReader::new(server);
        r.conn
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let ws = ConnStats::new();
        let rs = ConnStats::new();
        w.set_stats(Arc::clone(&ws));
        r.set_stats(Arc::clone(&rs));
        assert!(rs.rx_silence_s().is_none());

        w.send(&Frame::Flush { seq: 1 }).unwrap();
        w.send(&Frame::Flushed { seq: 1 }).unwrap();
        assert_eq!(r.read_frame().unwrap().unwrap(), Frame::Flush { seq: 1 });
        assert_eq!(r.read_frame().unwrap().unwrap(), Frame::Flushed { seq: 1 });

        assert_eq!(ws.frames_out.load(Ordering::Relaxed), 2);
        assert_eq!(rs.frames_in.load(Ordering::Relaxed), 2);
        let sent = ws.bytes_out.load(Ordering::Relaxed);
        assert_eq!(sent, rs.bytes_in.load(Ordering::Relaxed));
        assert!(sent > 0);
        assert!(rs.rx_silence_s().is_some());
    }

    #[test]
    fn read_timeout_returns_none() {
        let (_client, server) = pair();
        let mut r = FrameReader::new(server);
        r.conn
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        assert!(r.read_frame().unwrap().is_none());
    }
}

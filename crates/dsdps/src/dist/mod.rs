//! The distributed runtime: worker *processes* connected over TCP (Unix
//! domain sockets where available).
//!
//! This is the third backend next to the simulator ([`crate::sim`]) and
//! the threaded runtime ([`crate::rt`]).  The spout/bolt/grouping API and
//! the [`RtConfig`](crate::rt::RtConfig) knobs are identical — the same
//! topology runs unmodified on all three.  What changes is placement:
//!
//! * the **coordinator** (this process) runs the spouts, the sharded
//!   acker, the replay buffers, the credit ledger, the checkpoint store,
//!   all routing, and the process supervisor;
//! * **workers** are separate OS processes that execute bolts and speak
//!   the compact binary wire protocol of [`codec`] over [`transport`].
//!
//! Workers are spawned from a command line ([`DistConfig::worker_cmd`])
//! that must start a binary hosting the same [`TopologyRegistry`] — the
//! worker rebuilds the topology from its registered name, which is how
//! both sides derive identical routing and stream-intern tables.  A
//! killed worker is respawned, reconnected and restored from the latest
//! checkpoint; see `DESIGN.md` §15 for the protocol walk-through.
//!
//! ```no_run
//! # use dsdps::dist::{self, TopologyRegistry, DistConfig};
//! # use dsdps::config::EngineConfig;
//! # use dsdps::rt::RtConfig;
//! let mut registry = TopologyRegistry::new();
//! registry.register("wordcount", |_args| {
//!     # let build: fn() -> dsdps::error::Result<dsdps::topology::Topology> =
//!     #     || unreachable!();
//!     build()
//! });
//! // In the worker binary's main(): if dist::maybe_worker_from_env(&registry) { return; }
//! let running = dist::submit(
//!     &registry,
//!     "wordcount",
//!     "",
//!     EngineConfig::default(),
//!     RtConfig::default().with_batch_size(64),
//!     DistConfig::new(2, dist::self_worker_cmd()),
//! ).unwrap();
//! let report = running.shutdown();
//! assert!(report.conservation_holds());
//! ```

pub mod codec;
pub mod coordinator;
pub mod transport;
pub mod worker;

pub use coordinator::{submit, DistReport, RunningDist};
pub use worker::{maybe_worker_from_env, worker_main, TopologyRegistry};

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::rt::RecoveryMode;
use crate::telemetry::SpanKind;

/// Which socket family connects coordinator and workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Unix domain sockets where the platform has them, TCP otherwise.
    #[default]
    Auto,
    /// Loopback TCP.
    Tcp,
    /// Unix domain sockets (unix platforms only).
    #[cfg(unix)]
    Unix,
}

/// Deployment knobs of the distributed backend.  Everything about *what*
/// runs (batching, credit windows, checkpoints, recovery guarantee) stays
/// in [`RtConfig`](crate::rt::RtConfig); this only describes the worker
/// fleet.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Number of worker processes.  Bolt tasks are assigned round-robin
    /// across them; spouts stay on the coordinator.
    pub workers: usize,
    /// Command line (argv) that starts one worker process.  The
    /// coordinator adds `DSDPS_DIST_ADDR` / `DSDPS_DIST_WORKER` to its
    /// environment; the binary must call
    /// [`maybe_worker_from_env`] with a registry containing the topology.
    pub worker_cmd: Vec<String>,
    /// Socket family.
    pub transport: TransportKind,
    /// How long spawn + connect + hello may take per worker.
    pub connect_timeout: Duration,
    /// Respawn budget per worker slot; beyond it the slot stays down and
    /// its in-flight trees fail into replay/`permanently_failed`.
    pub max_worker_restarts: u32,
    /// How long shutdown waits for in-flight trees to drain to zero.
    pub drain_timeout: Duration,
}

impl DistConfig {
    /// A fleet of `workers` processes started by `worker_cmd`.
    pub fn new(workers: usize, worker_cmd: Vec<String>) -> Self {
        DistConfig {
            workers: workers.max(1),
            worker_cmd,
            transport: TransportKind::Auto,
            connect_timeout: Duration::from_secs(10),
            max_worker_restarts: 3,
            drain_timeout: Duration::from_secs(10),
        }
    }

    /// Selects the socket family.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the per-worker spawn/connect budget.
    pub fn with_connect_timeout(mut self, t: Duration) -> Self {
        self.connect_timeout = t;
        self
    }

    /// Sets the respawn budget per worker slot.
    pub fn with_max_worker_restarts(mut self, n: u32) -> Self {
        self.max_worker_restarts = n;
        self
    }

    /// Sets the shutdown drain budget.
    pub fn with_drain_timeout(mut self, t: Duration) -> Self {
        self.drain_timeout = t;
        self
    }
}

/// The worker command that re-runs the current executable (the common
/// case: one binary hosts both coordinator and workers and dispatches on
/// [`maybe_worker_from_env`] at the top of `main`).
pub fn self_worker_cmd() -> Vec<String> {
    vec![std::env::current_exe()
        .expect("current_exe")
        .to_string_lossy()
        .into_owned()]
}

/// Wire discriminant of a [`RecoveryMode`] (the `recovery` byte of the
/// `Assign` frame).
pub(crate) fn recovery_to_byte(mode: RecoveryMode) -> u8 {
    match mode {
        RecoveryMode::ExactlyOnceEffect => 0,
        RecoveryMode::AtLeastOnce => 1,
        RecoveryMode::Approximate => 2,
    }
}

/// Inverse of [`recovery_to_byte`].
pub(crate) fn recovery_from_byte(b: u8) -> Option<RecoveryMode> {
    match b {
        0 => Some(RecoveryMode::ExactlyOnceEffect),
        1 => Some(RecoveryMode::AtLeastOnce),
        2 => Some(RecoveryMode::Approximate),
        _ => None,
    }
}

/// Wire discriminant of a [`SpanKind`] (the `kind` byte of a
/// [`codec::WireSpan`]).
pub(crate) fn span_kind_to_byte(kind: SpanKind) -> u8 {
    match kind {
        SpanKind::SpoutEmit => 0,
        SpanKind::Hop => 1,
        SpanKind::Ack => 2,
        SpanKind::Fail => 3,
        SpanKind::Timeout => 4,
    }
}

/// Inverse of [`span_kind_to_byte`].
pub(crate) fn span_kind_from_byte(b: u8) -> Option<SpanKind> {
    match b {
        0 => Some(SpanKind::SpoutEmit),
        1 => Some(SpanKind::Hop),
        2 => Some(SpanKind::Ack),
        3 => Some(SpanKind::Fail),
        4 => Some(SpanKind::Timeout),
        _ => None,
    }
}

/// Structured "last words" a dying worker prints to stderr as one JSONL
/// line, mirroring the best-effort [`codec::Frame::LastWords`] it also
/// attempts over the socket.  The coordinator's stderr pump parses these
/// and the supervisor attaches the cause to the `worker_died` journal
/// event on respawn; ordinary stderr lines never carry the marker field
/// and are forwarded verbatim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct LastWordsLine {
    /// Marker so ordinary stderr output can never parse as last words.
    pub dsdps_last_words: bool,
    /// Worker slot index.
    pub worker: u32,
    /// Short machine-readable cause (`panic`, `decode_error`, `io_error`).
    pub cause: String,
    /// Human-readable detail (panic payload, error text).
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_bytes_round_trip() {
        for mode in [
            RecoveryMode::ExactlyOnceEffect,
            RecoveryMode::AtLeastOnce,
            RecoveryMode::Approximate,
        ] {
            assert_eq!(recovery_from_byte(recovery_to_byte(mode)), Some(mode));
        }
        assert_eq!(recovery_from_byte(9), None);
    }

    #[test]
    fn span_kind_bytes_round_trip() {
        for kind in [
            SpanKind::SpoutEmit,
            SpanKind::Hop,
            SpanKind::Ack,
            SpanKind::Fail,
            SpanKind::Timeout,
        ] {
            assert_eq!(span_kind_from_byte(span_kind_to_byte(kind)), Some(kind));
        }
        assert_eq!(span_kind_from_byte(5), None);
    }
}

//! Worker-process side of the distributed runtime.
//!
//! A worker is a single-threaded bolt-execution server.  It connects to
//! the coordinator, introduces itself with `Hello`, receives an `Assign`
//! naming a topology from its [`TopologyRegistry`] and the bolt tasks it
//! owns, then loops: execute delivered tuples, answer with results and
//! credit grants, checkpoint stateful tasks on the configured interval,
//! tick bolts, and obey `Flush`/`RestoreState`/`Shutdown`.
//!
//! Acks under `ExactlyOnceEffect` / `AtLeastOnce` recovery are
//! **deferred**: a stateful task's input is reported `deferred` and its
//! ack withheld until a `CheckpointDeposit` covering it has been sent
//! (frames are processed in order on both sides, so deposit-then-ack-flush
//! guarantees the coordinator never acks an input whose effect could be
//! lost with the worker).  `ExactlyOnceEffect` additionally keeps a
//! replay-dedup set of applied spout message ids so a redelivered tuple is
//! acknowledged without being applied twice.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::codec::{Frame, InternTable, WireEmission, WireMetric, WireResult, WireSpan};
use super::transport::{BatchWriter, Conn, ConnStats, Endpoint, FrameReader};
use super::{recovery_from_byte, span_kind_to_byte, DistConfig, LastWordsLine};
use crate::component::{Bolt, BoltOutput, Emission, TopologyContext};
use crate::error::{Error, Result};
use crate::rt::{RecoveryMode, SnapshotKind, StateSnapshot};
use crate::telemetry::{Counter, Gauge, Registry, SampleValue, Tracer, HOT_PATH_TELEMETRY};
use crate::topology::{ComponentKind, TaskId, Topology};

/// Replay-dedup sets are FIFO-capped at this many message ids (matches the
/// threaded runtime's bound).
const DEDUP_CAP: usize = 65_536;

/// Builds a topology from a registered name plus an opaque argument
/// string.  Coordinator and workers run the same builder, which is what
/// makes their routing and stream-intern tables identical.
pub type TopologyBuilderFn = Arc<dyn Fn(&str) -> Result<Topology> + Send + Sync>;

/// Name → topology builder map shared by the coordinator and the worker
/// binary.
#[derive(Default, Clone)]
pub struct TopologyRegistry {
    builders: HashMap<String, TopologyBuilderFn>,
}

impl TopologyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name`; the builder receives the `args` string passed to
    /// [`submit`](super::submit) verbatim.
    pub fn register<F>(&mut self, name: &str, builder: F)
    where
        F: Fn(&str) -> Result<Topology> + Send + Sync + 'static,
    {
        self.builders.insert(name.to_owned(), Arc::new(builder));
    }

    /// Builds the named topology.
    pub fn build(&self, name: &str, args: &str) -> Result<Topology> {
        match self.builders.get(name) {
            Some(f) => f(args),
            None => Err(Error::Config(format!("topology `{name}` not registered"))),
        }
    }

    /// Registered topology names, unordered.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.builders.keys().map(String::as_str)
    }
}

/// Serializes a [`StateSnapshot`] into a `CheckpointDeposit` payload
/// (1 kind byte + snapshot bytes).
pub(crate) fn snapshot_to_payload(snap: &StateSnapshot) -> Vec<u8> {
    let mut payload = Vec::with_capacity(snap.bytes.len() + 1);
    payload.push(match snap.kind {
        SnapshotKind::Full => 0,
        SnapshotKind::Delta => 1,
    });
    payload.extend_from_slice(&snap.bytes);
    payload
}

/// Inverse of [`snapshot_to_payload`].
pub(crate) fn snapshot_from_payload(payload: &[u8]) -> Result<StateSnapshot> {
    let (&kind, bytes) = payload
        .split_first()
        .ok_or_else(|| Error::Runtime("empty snapshot payload".into()))?;
    Ok(StateSnapshot {
        kind: match kind {
            0 => SnapshotKind::Full,
            1 => SnapshotKind::Delta,
            _ => return Err(Error::Runtime("bad snapshot kind".into())),
        },
        bytes: bytes.to_vec(),
    })
}

/// One bolt task hosted by this worker.
struct TaskState {
    task: u32,
    component: usize,
    bolt: Box<dyn Bolt>,
    stateful: bool,
    /// Delivery tokens whose acks wait for the next checkpoint.
    deferred: Vec<u64>,
    /// Applied spout message ids (`ExactlyOnceEffect` only).
    dedup_set: HashSet<u64>,
    dedup_fifo: VecDeque<u64>,
    last_ckpt: Instant,
}

impl TaskState {
    fn remember_applied(&mut self, id: u64) {
        if self.dedup_set.insert(id) {
            self.dedup_fifo.push_back(id);
            if self.dedup_fifo.len() > DEDUP_CAP {
                if let Some(old) = self.dedup_fifo.pop_front() {
                    self.dedup_set.remove(&old);
                }
            }
        }
    }
}

/// Runs the worker loop if `DSDPS_DIST_ADDR` is set, i.e. if this process
/// was launched as a distributed worker.  Call this at the top of the
/// worker binary's `main` (or inside a dedicated test entry point) and
/// return immediately when it yields `true`.  Exits the process with a
/// nonzero status on a worker-side error.
pub fn maybe_worker_from_env(registry: &TopologyRegistry) -> bool {
    let Ok(addr) = std::env::var("DSDPS_DIST_ADDR") else {
        return false;
    };
    let worker: u32 = std::env::var("DSDPS_DIST_WORKER")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let endpoint = match Endpoint::from_env(&addr) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("dsdps worker: bad DSDPS_DIST_ADDR: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = worker_main(registry, &endpoint, worker) {
        eprintln!("dsdps worker {worker}: {e}");
        std::process::exit(1);
    }
    true
}

/// Connects to the coordinator at `endpoint` and serves bolt tasks until
/// `Shutdown` (or the connection drops).
pub fn worker_main(registry: &TopologyRegistry, endpoint: &Endpoint, worker: u32) -> Result<()> {
    // Span-clock epoch: every worker-side timestamp is µs since this
    // instant.  Its reading travels in `Hello` so the coordinator can
    // estimate the offset to its own span clock and re-base shipped spans.
    let t0 = Instant::now();
    let conn = Conn::connect(endpoint, DistConfig::new(1, vec![]).connect_timeout)?;
    let writer_conn = conn
        .try_clone()
        .map_err(|e| Error::Runtime(format!("clone socket: {e}")))?;
    let stats = ConnStats::new();
    let mut reader = FrameReader::new(conn);
    reader.set_stats(Arc::clone(&stats));
    // Workers only send control frames (results, grants, deposits), so the
    // writer's tuple-batching path is idle; batch_size 1 keeps it honest.
    let mut writer = BatchWriter::new(writer_conn, 1, Duration::ZERO);
    writer.set_stats(Arc::clone(&stats));
    writer.send(&Frame::Hello {
        worker,
        pid: std::process::id(),
        clock_us: t0.elapsed().as_micros() as u64,
    })?;

    reader
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| Error::Runtime(format!("set timeout: {e}")))?;
    let Some(assign) = reader.read_frame()? else {
        return Err(Error::Runtime("timed out waiting for assignment".into()));
    };
    let Frame::Assign {
        worker: assigned_to,
        topology: topo_name,
        args,
        tasks,
        recovery,
        ckpt_interval_us,
        tick_interval_us,
        metrics_interval_us,
        task_count,
        stream_count,
    } = assign
    else {
        return Err(Error::Runtime(format!(
            "expected assign, got {}",
            assign.kind()
        )));
    };
    if assigned_to != worker {
        return Err(Error::Runtime(format!(
            "assignment for worker {assigned_to} delivered to worker {worker}"
        )));
    }
    let recovery = recovery_from_byte(recovery)
        .ok_or_else(|| Error::Runtime("unknown recovery mode".into()))?;
    let topology = registry.build(&topo_name, &args)?;
    let intern = InternTable::new(&topology);
    if topology.task_count() != task_count as usize || intern.len() != stream_count as usize {
        return Err(Error::Runtime(format!(
            "topology fingerprint mismatch for `{topo_name}`: worker built \
             {} tasks / {} streams, coordinator has {task_count} / {stream_count}",
            topology.task_count(),
            intern.len()
        )));
    }

    let mut states: HashMap<u32, TaskState> = HashMap::new();
    for &task in &tasks {
        let comp_id = topology.component_of_task(TaskId(task as usize));
        let comp = topology.component(comp_id);
        let ComponentKind::Bolt(factory) = &comp.kind else {
            return Err(Error::Runtime(format!(
                "spout task t{task} assigned to a worker"
            )));
        };
        let mut bolt = factory();
        bolt.prepare(&TopologyContext {
            component: comp.name.clone(),
            task_index: task as usize - comp.base_task.0,
            parallelism: comp.parallelism,
        });
        let stateful = bolt.stateful().is_some();
        states.insert(
            task,
            TaskState {
                task,
                component: comp_id.0,
                bolt,
                stateful,
                deferred: Vec::new(),
                dedup_set: HashSet::new(),
                dedup_fifo: VecDeque::new(),
                last_ckpt: Instant::now(),
            },
        );
    }

    let ckpt_interval = Duration::from_micros(ckpt_interval_us.max(1));
    let tick_interval = (tick_interval_us > 0).then(|| Duration::from_micros(tick_interval_us));
    let push_interval = (HOT_PATH_TELEMETRY && metrics_interval_us > 0)
        .then(|| Duration::from_micros(metrics_interval_us));
    let mut last_tick = Instant::now();
    let mut last_push = Instant::now();
    reader
        .set_read_timeout(Some(Duration::from_millis(10)))
        .map_err(|e| Error::Runtime(format!("set timeout: {e}")))?;

    // Local telemetry: hop spans are recorded for exactly the trees the
    // coordinator sampled (the decision arrives as `WireTuple::trace_root`)
    // into per-task ring buffers drained by every `SpanBatch` push; the
    // label-free registry ships counter deltas on the same cadence.
    let span_meta: Vec<(String, usize)> = (0..topology.task_count())
        .map(|t| {
            let comp = topology.component(topology.component_of_task(TaskId(t)));
            (comp.name.clone(), worker as usize)
        })
        .collect();
    let tracer = Tracer::new(1.0, topology.task_count() + 1, span_meta);
    let local_registry = Registry::new();
    let metrics = WorkerMetrics::new(&local_registry);
    let mut last_pushed: HashMap<(String, String), u64> = HashMap::new();
    let mut batch_seq: u64 = 0;

    let serve = AssertUnwindSafe(|| -> Result<()> {
        loop {
            match reader.read_frame()? {
                Some(Frame::TupleBatch { items }) => {
                    batch_seq += 1;
                    let batch_recv = Instant::now();
                    if HOT_PATH_TELEMETRY {
                        metrics.batches.inc();
                    }
                    let mut results = Vec::with_capacity(items.len());
                    let mut credits: HashMap<u32, u64> = HashMap::new();
                    for item in items {
                        *credits.entry(item.dest_task).or_insert(0) += 1;
                        let Some(ts) = states.get_mut(&item.dest_task) else {
                            results.push(WireResult {
                                token: item.token,
                                failed: true,
                                deferred: false,
                                emissions: vec![],
                            });
                            continue;
                        };
                        // Exactly-once: a replay of an already-applied input is
                        // acknowledged (deferred, like any stateful input) but
                        // not applied again.
                        if ts.stateful && recovery == RecoveryMode::ExactlyOnceEffect {
                            if let Some(id) = item.dedup {
                                if ts.dedup_set.contains(&id) {
                                    ts.deferred.push(item.token);
                                    results.push(WireResult {
                                        token: item.token,
                                        failed: false,
                                        deferred: true,
                                        emissions: vec![],
                                    });
                                    continue;
                                }
                            }
                        }
                        let tuple = match intern.tuple(item.stream, item.values) {
                            Ok(t) => t,
                            Err(_) => {
                                results.push(WireResult {
                                    token: item.token,
                                    failed: true,
                                    deferred: false,
                                    emissions: vec![],
                                });
                                continue;
                            }
                        };
                        let mut out = BoltOutput::new();
                        out.set_now(t0.elapsed().as_secs_f64());
                        let exec_t =
                            (HOT_PATH_TELEMETRY && item.trace_root.is_some()).then(Instant::now);
                        ts.bolt.execute(&tuple, &mut out);
                        let (emissions, failed) = out.drain();
                        if let (Some(root), Some(started)) = (item.trace_root, exec_t) {
                            tracer.record_hop(
                                item.dest_task as usize,
                                root,
                                item.dest_task as usize,
                                started.duration_since(t0).as_micros() as u64,
                                started.duration_since(batch_recv).as_micros() as u64,
                                started.elapsed().as_micros() as u64,
                                batch_seq,
                            );
                        }
                        if HOT_PATH_TELEMETRY {
                            metrics.executed.inc();
                            metrics.emitted.add(emissions.len() as u64);
                        }
                        let deferred =
                            !failed && ts.stateful && recovery != RecoveryMode::Approximate;
                        if deferred {
                            ts.deferred.push(item.token);
                            if recovery == RecoveryMode::ExactlyOnceEffect {
                                if let Some(id) = item.dedup {
                                    ts.remember_applied(id);
                                }
                            }
                        }
                        let component = ts.component;
                        results.push(WireResult {
                            token: item.token,
                            failed,
                            deferred,
                            emissions: convert_emissions(&intern, component, emissions),
                        });
                    }
                    writer.send(&Frame::ResultBatch { items: results })?;
                    for (task, amount) in credits {
                        writer.send(&Frame::CreditGrant { task, amount })?;
                    }
                }
                Some(Frame::RestoreState {
                    task,
                    payload,
                    dedup,
                }) => {
                    let start = Instant::now();
                    let ok = match states.get_mut(&task) {
                        Some(ts) => {
                            ts.dedup_set = dedup.iter().copied().collect();
                            ts.dedup_fifo = dedup.into();
                            match payload {
                                Some(p) => match (snapshot_from_payload(&p), ts.bolt.stateful()) {
                                    (Ok(snap), Some(state)) => state.restore(&snap, &[]).is_ok(),
                                    _ => false,
                                },
                                // Nothing checkpointed yet: fresh state is the
                                // correct restore target.
                                None => true,
                            }
                        }
                        None => false,
                    };
                    writer.send(&Frame::StateRestored {
                        task,
                        ok,
                        latency_us: start.elapsed().as_micros() as u64,
                    })?;
                }
                Some(Frame::Flush { seq }) => {
                    for ts in states.values_mut() {
                        checkpoint_task(ts, &mut writer, ckpt_interval, true, &metrics)?;
                    }
                    writer.send(&Frame::Flushed { seq })?;
                }
                Some(Frame::Shutdown) => {
                    // Final push so spans and deltas recorded since the last
                    // interval still reach the coordinator's merged view.
                    if push_interval.is_some() {
                        push_telemetry(
                            worker,
                            &mut writer,
                            &tracer,
                            &local_registry,
                            &metrics,
                            &stats,
                            t0,
                            &mut last_pushed,
                        )?;
                    }
                    break;
                }
                Some(_) => {} // Unexpected direction: ignore.
                None => {}    // Read timeout: fall through to periodic work.
            }

            for ts in states.values_mut() {
                checkpoint_task(ts, &mut writer, ckpt_interval, false, &metrics)?;
            }
            if let Some(interval) = tick_interval {
                if last_tick.elapsed() >= interval {
                    last_tick = Instant::now();
                    for ts in states.values_mut() {
                        let mut out = BoltOutput::new();
                        out.set_now(t0.elapsed().as_secs_f64());
                        ts.bolt.tick(&mut out);
                        let (emissions, _) = out.drain();
                        if !emissions.is_empty() {
                            let component = ts.component;
                            writer.send(&Frame::TickEmissions {
                                task: ts.task,
                                emissions: convert_emissions(&intern, component, emissions),
                            })?;
                        }
                    }
                }
            }
            if let Some(interval) = push_interval {
                if last_push.elapsed() >= interval {
                    last_push = Instant::now();
                    push_telemetry(
                        worker,
                        &mut writer,
                        &tracer,
                        &local_registry,
                        &metrics,
                        &stats,
                        t0,
                        &mut last_pushed,
                    )?;
                }
            }
        }
        Ok(())
    });

    match std::panic::catch_unwind(serve) {
        Ok(Ok(())) => {
            for ts in states.values_mut() {
                ts.bolt.cleanup();
            }
            Ok(())
        }
        Ok(Err(e)) => {
            emit_last_words(&mut writer, worker, classify_error(&e), &e.to_string());
            Err(e)
        }
        Err(payload) => {
            let detail = panic_detail(payload.as_ref());
            emit_last_words(&mut writer, worker, "panic", &detail);
            Err(Error::Runtime(format!("worker panicked: {detail}")))
        }
    }
}

/// Cached handles of the worker's label-free local registry.  The
/// coordinator re-registers everything pushed here under
/// `worker`/`generation` labels, so names stay collision-free with the
/// coordinator's own families.
struct WorkerMetrics {
    executed: Counter,
    emitted: Counter,
    batches: Counter,
    checkpoints: Counter,
    uptime: Gauge,
    conn_bytes_in: Counter,
    conn_bytes_out: Counter,
    conn_frames_in: Counter,
    conn_frames_out: Counter,
    conn_decode_us: Counter,
    conn_encode_us: Counter,
    conn_write_block_us: Counter,
}

impl WorkerMetrics {
    fn new(reg: &Registry) -> Self {
        WorkerMetrics {
            executed: reg.counter("dsdps_worker_executed_total", &[]),
            emitted: reg.counter("dsdps_worker_emitted_total", &[]),
            batches: reg.counter("dsdps_worker_batches_total", &[]),
            checkpoints: reg.counter("dsdps_worker_checkpoints_total", &[]),
            uptime: reg.gauge("dsdps_worker_uptime_seconds", &[]),
            conn_bytes_in: reg.counter("dsdps_worker_conn_bytes_in_total", &[]),
            conn_bytes_out: reg.counter("dsdps_worker_conn_bytes_out_total", &[]),
            conn_frames_in: reg.counter("dsdps_worker_conn_frames_in_total", &[]),
            conn_frames_out: reg.counter("dsdps_worker_conn_frames_out_total", &[]),
            conn_decode_us: reg.counter("dsdps_worker_conn_decode_us_total", &[]),
            conn_encode_us: reg.counter("dsdps_worker_conn_encode_us_total", &[]),
            conn_write_block_us: reg.counter("dsdps_worker_conn_write_block_us_total", &[]),
        }
    }

    /// Copies the transport counters and uptime gauge into the registry so
    /// the next `export_samples` sees them; runs at push cadence, never on
    /// the tuple path.
    fn sync(&self, stats: &ConnStats, t0: Instant) {
        use std::sync::atomic::Ordering::Relaxed;
        self.uptime.set(t0.elapsed().as_secs_f64());
        self.conn_bytes_in.set(stats.bytes_in.load(Relaxed));
        self.conn_bytes_out.set(stats.bytes_out.load(Relaxed));
        self.conn_frames_in.set(stats.frames_in.load(Relaxed));
        self.conn_frames_out.set(stats.frames_out.load(Relaxed));
        self.conn_decode_us.set(stats.decode_us.load(Relaxed));
        self.conn_encode_us.set(stats.encode_us.load(Relaxed));
        self.conn_write_block_us
            .set(stats.write_block_us.load(Relaxed));
    }
}

/// Drains the local tracer into a `SpanBatch` and the local registry into a
/// `MetricsPush` (counters as deltas since the last push, gauges as current
/// values).  Skips empty frames entirely.
#[allow(clippy::too_many_arguments)]
fn push_telemetry(
    worker: u32,
    writer: &mut BatchWriter,
    tracer: &Tracer,
    registry: &Registry,
    metrics: &WorkerMetrics,
    stats: &ConnStats,
    t0: Instant,
    last_pushed: &mut HashMap<(String, String), u64>,
) -> Result<()> {
    let (spans, dropped) = tracer.drain();
    if !spans.is_empty() || dropped > 0 {
        let spans = spans
            .into_iter()
            .map(|s| WireSpan {
                kind: span_kind_to_byte(s.kind),
                root: s.root,
                task: s.task as u32,
                start_us: s.start_us,
                queue_wait_us: s.queue_wait_us,
                exec_us: s.exec_us,
                batch_id: s.batch_id,
            })
            .collect();
        writer.send(&Frame::SpanBatch {
            worker,
            dropped,
            spans,
        })?;
    }
    metrics.sync(stats, t0);
    let mut samples = Vec::new();
    for (family, labels, value) in registry.export_samples() {
        match value {
            SampleValue::Counter(v) => {
                let key = (family, labels);
                let prev = last_pushed.get(&key).copied();
                let delta = v.saturating_sub(prev.unwrap_or(0));
                // First push includes zero deltas so the coordinator's
                // endpoint exposes the full family set immediately.
                if delta > 0 || prev.is_none() {
                    samples.push(WireMetric {
                        kind: 0,
                        name: key.0.clone(),
                        value: delta,
                    });
                }
                last_pushed.insert(key, v);
            }
            SampleValue::Gauge(g) => samples.push(WireMetric {
                kind: 1,
                name: family,
                value: g.to_bits(),
            }),
        }
    }
    if !samples.is_empty() {
        writer.send(&Frame::MetricsPush { worker, samples })?;
    }
    Ok(())
}

/// Maps a serve-loop error to the machine-readable last-words cause.
fn classify_error(e: &Error) -> &'static str {
    let text = e.to_string();
    if text.contains("decode frame") || text.contains("frame length") || text.contains("oversized")
    {
        "decode_error"
    } else {
        "io_error"
    }
}

/// Extracts a printable panic payload (`&str` / `String`, else a stub).
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Structured last words while dying: one JSONL line on stderr (the
/// supervisor's stderr pump parses it even when the socket is gone) plus a
/// best-effort [`Frame::LastWords`] over the connection.
fn emit_last_words(writer: &mut BatchWriter, worker: u32, cause: &str, detail: &str) {
    let line = LastWordsLine {
        dsdps_last_words: true,
        worker,
        cause: cause.to_owned(),
        detail: detail.to_owned(),
    };
    if let Ok(json) = serde_json::to_string(&line) {
        eprintln!("{json}");
    }
    let _ = writer.send(&Frame::LastWords {
        worker,
        cause: cause.to_owned(),
        detail: detail.to_owned(),
    });
}

/// Checkpoints one stateful task: deposit the snapshot, then release the
/// acks it covers.  In-order frame processing on the coordinator is what
/// aligns the two.
fn checkpoint_task(
    ts: &mut TaskState,
    writer: &mut BatchWriter,
    interval: Duration,
    force: bool,
    metrics: &WorkerMetrics,
) -> Result<()> {
    if !ts.stateful || (!force && ts.last_ckpt.elapsed() < interval) {
        return Ok(());
    }
    ts.last_ckpt = Instant::now();
    let snap = ts
        .bolt
        .stateful()
        .expect("stateful flag implies stateful()")
        .snapshot();
    writer.send(&Frame::CheckpointDeposit {
        task: ts.task,
        payload: snapshot_to_payload(&snap),
        dedup: ts.dedup_fifo.iter().copied().collect(),
    })?;
    if HOT_PATH_TELEMETRY {
        metrics.checkpoints.inc();
    }
    if !ts.deferred.is_empty() {
        writer.send(&Frame::AckFlush {
            tokens: std::mem::take(&mut ts.deferred),
        })?;
    }
    Ok(())
}

fn convert_emissions(
    intern: &InternTable,
    component: usize,
    emissions: Vec<Emission>,
) -> Vec<WireEmission> {
    emissions
        .into_iter()
        .filter_map(|e| {
            // Undeclared stream: nothing can subscribe, drop it (matches
            // the threaded router, which has no route for it).
            let stream = intern.lookup(component, e.stream.as_str())?;
            Some(WireEmission {
                stream,
                anchored: e.anchored,
                direct_task: e.direct_task.map(|t| t as u32),
                values: e.tuple.values().to_vec(),
            })
        })
        .collect()
}

//! Coordinator side of the distributed runtime.
//!
//! The coordinator is the reliability brain: it runs the spouts, the
//! sharded acker, the per-spout replay buffers, the credit ledger, the
//! checkpoint store and all routing.  Worker processes only execute
//! bolts.  One reader thread per worker connection applies results and
//! control frames; a supervisor thread respawns dead workers, expires
//! timed-out trees and drains credit-starved overflow queues; a completer
//! thread fans tree outcomes back to the owning spout threads.
//!
//! Delivery accounting mirrors the threaded runtime exactly —
//! `tracked == acked + permanently_failed + in_flight` holds at shutdown
//! ([`DistReport::conservation_holds`]) — with one extra failure source:
//! a dying connection fails every delivery pending on it into replay.

use std::collections::{HashMap, VecDeque};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::codec::{Frame, InternTable, WireEmission, WireTuple};
use super::transport::{BatchWriter, Conn, ConnStats, Endpoint, FrameReader, Listener};
use super::worker::{snapshot_from_payload, snapshot_to_payload, TopologyRegistry};
use super::{recovery_to_byte, span_kind_from_byte, DistConfig, LastWordsLine, TransportKind};
use crate::acker::{splitmix64, Completion, RootId, ShardedAcker, TreeOutcome};
use crate::component::{Emission, MessageId, SpoutOutput, TopologyContext};
use crate::config::EngineConfig;
use crate::error::{Error, Result};
use crate::grouping::{make_grouping, Grouping, GroupingSpec};
use crate::rt::checkpoint::CheckpointStore;
use crate::rt::replay::{FailDecision, ReplayBuffer};
use crate::rt::{CreditLedger, CreditTotals, RtConfig, StateSnapshot};
use crate::telemetry::journal::{Journal, JournalEvent};
use crate::telemetry::{
    chrome_trace_json_named, normalize_start_us, trace::trace_id, Counter, Gauge, MetricsServer,
    Registry, Span, SpanKind, Tracer, HOT_PATH_TELEMETRY,
};
use crate::topology::{ComponentId, ComponentKind, TaskId, Topology};
use crate::tuple::{Tuple, Value};

/// Credit window (tuples per task) used when `RtConfig::credit_flow` is
/// off.  The wire always needs *some* bound: the coordinator writes frames
/// with the slot's state lock held, the worker is single-threaded, and
/// both directions ride finite kernel socket buffers — if the outstanding
/// tuples toward one connection can exceed what those buffers absorb, a
/// flooded run wedges with the worker blocked writing results, the
/// coordinator's writer blocked sending tuples, and the reader parked on
/// the slot lock (see DESIGN.md §15.4).  The window must therefore stay
/// comfortably below the socket capacity divided by the wire size of a
/// tuple; 1 024 small tuples is tens of kilobytes per task against the
/// ~200 KiB a default Unix socket buffers.  Topologies that want a wider
/// (or per-task-tuned) window enable `credit_flow`, which sizes windows as
/// `credit_window × batch_size` and re-grants per processed batch.
const DEFAULT_WINDOW_TUPLES: u64 = 1_024;

/// How often the supervisor refreshes the cluster-view gauges (outstanding
/// windows, overflow depth, connection counters).  Off the tuple path.
const GAUGE_SYNC_INTERVAL: Duration = Duration::from_millis(250);

/// One delivery awaiting its result (or its deferred ack).
struct Delivery {
    /// Tree anchor: `(root, edge)` of this delivery's edge, if tracked.
    anchor: Option<(RootId, u64)>,
    /// Destination task (whose credit the delivery consumed).
    task: u32,
}

/// Mutable per-worker-slot state, all under one lock.
#[derive(Default)]
struct SlotState {
    writer: Option<BatchWriter>,
    connected: bool,
    pending: HashMap<u64, Delivery>,
    deferred: HashMap<u64, Delivery>,
    child: Option<Child>,
    pid: u32,
    generation: u64,
    respawns: u32,
    /// Snapshot age (s) per task with a restore in flight, for journaling
    /// the worker's `state_restored` reply.
    restore_age: HashMap<u32, Option<f64>>,
    /// `coordinator_now_us − worker_clock_us`, estimated at the `Hello`
    /// handshake; re-bases every span this connection ships.
    clock_offset_us: i64,
    /// Transport counters of the live connection (reader + writer share
    /// one instance).
    conn_stats: Option<Arc<ConnStats>>,
    /// Structured cause of death captured from the worker's `LastWords`
    /// frame or its stderr JSONL line; consumed by the supervisor when it
    /// reaps the child.
    last_words: Option<(String, String)>,
    /// A heartbeat-lag journal event was already emitted for the current
    /// silence episode.
    hb_lagged: bool,
}

struct WorkerSlot {
    state: Mutex<SlotState>,
    /// Bolt tasks owned by this slot.
    tasks: Vec<u32>,
}

/// An emission parked because its destination task was out of credits.
struct Overflow {
    stream: u32,
    values: Vec<Value>,
    anchor: Option<(RootId, u64)>,
    dedup: Option<u64>,
}

/// One route of the coordinator-side router (centralized equivalent of
/// the threaded runtime's per-task router).
struct RouteEntry {
    stream: u32,
    subscriber_base: usize,
    parallelism: usize,
    grouping: Mutex<Box<dyn Grouping>>,
    is_direct: bool,
}

struct DistRouter {
    /// Routes indexed by producing component id.
    per_component: Vec<Vec<RouteEntry>>,
}

impl DistRouter {
    fn new(topology: &Topology, intern: &InternTable) -> Self {
        let mut per_component = Vec::new();
        for component in topology.components() {
            let mut routes = Vec::new();
            for decl in &component.outputs {
                let stream = intern
                    .lookup(component.id.0, decl.id.as_str())
                    .expect("declared stream is interned");
                for (sub, spec) in topology.subscribers_of(component.id, &decl.id) {
                    let handle = match spec {
                        GroupingSpec::Dynamic(_) => {
                            topology.dynamic_handle(&component.name, &decl.id, &sub.name)
                        }
                        _ => None,
                    };
                    routes.push(RouteEntry {
                        stream,
                        subscriber_base: sub.base_task.0,
                        parallelism: sub.parallelism,
                        grouping: Mutex::new(make_grouping(
                            spec,
                            sub.parallelism,
                            &decl.fields,
                            0,
                            handle,
                        )),
                        is_direct: matches!(spec, GroupingSpec::Direct),
                    });
                }
            }
            per_component.push(routes);
        }
        DistRouter { per_component }
    }

    /// Destination task ids for one emission of `component` on interned
    /// stream `stream`.
    fn select(
        &self,
        component: usize,
        stream: u32,
        tuple: &Tuple,
        direct_task: Option<u32>,
        dests: &mut Vec<usize>,
    ) {
        dests.clear();
        let mut locals = Vec::new();
        for route in &self.per_component[component] {
            if route.stream != stream {
                continue;
            }
            match (direct_task, route.is_direct) {
                (Some(local), true) => {
                    let local = local as usize;
                    if local < route.parallelism {
                        dests.push(route.subscriber_base + local);
                    }
                }
                (None, false) => {
                    locals.clear();
                    route.grouping.lock().unwrap().select(tuple, &mut locals);
                    dests.extend(locals.iter().map(|l| route.subscriber_base + l));
                }
                // Direct emissions only travel direct routes and vice versa.
                _ => {}
            }
        }
    }
}

#[derive(Default)]
struct Counters {
    spout_emitted: AtomicU64,
    tracked: AtomicU64,
    acked: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    permanently_failed: AtomicU64,
    replays_scheduled: AtomicU64,
    replays_emitted: AtomicU64,
    checkpoints_taken: AtomicU64,
    restores: AtomicU64,
    snapshot_bytes: AtomicU64,
    worker_restarts: AtomicU64,
    worker_disconnects: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
}

/// Completion-latency reservoir (ms): exact mean plus a fixed-size sample
/// for p99 so long benches don't accumulate unbounded latency vectors.
#[derive(Default)]
struct LatencyStats {
    count: u64,
    sum_ms: f64,
    sample: Vec<f64>,
}

const LATENCY_SAMPLE_CAP: usize = 8_192;

impl LatencyStats {
    fn record(&mut self, ms: f64) {
        self.count += 1;
        self.sum_ms += ms;
        if self.sample.len() < LATENCY_SAMPLE_CAP {
            self.sample.push(ms);
        } else {
            let idx = (splitmix64(self.count) % LATENCY_SAMPLE_CAP as u64) as usize;
            self.sample[idx] = ms;
        }
    }

    fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    fn p99(&self) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        let mut s = self.sample.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[((s.len() - 1) as f64 * 0.99) as usize]
    }
}

/// Cached handles of the per-slot transport/flow families the supervisor
/// refreshes at gauge cadence (never on the tuple path).
struct SlotGauges {
    /// §15.4 deadlock class as a live gauge: deliveries on the wire
    /// awaiting results.
    outstanding: Gauge,
    /// Emissions parked in this slot's overflow queues (credit stall).
    parked: Gauge,
    /// Seconds since the last frame arrived on the connection.
    rx_silence: Gauge,
    bytes_in: Counter,
    bytes_out: Counter,
    frames_in: Counter,
    frames_out: Counter,
    decode_us: Counter,
    encode_us: Counter,
    write_block_us: Counter,
}

impl SlotGauges {
    fn new(reg: &Registry, slot: usize) -> Self {
        let s = slot.to_string();
        let labels: [(&str, &str); 1] = [("worker", s.as_str())];
        SlotGauges {
            outstanding: reg.gauge("dsdps_dist_outstanding_window", &labels),
            parked: reg.gauge("dsdps_dist_overflow_parked", &labels),
            rx_silence: reg.gauge("dsdps_dist_conn_rx_silence_seconds", &labels),
            bytes_in: reg.counter("dsdps_dist_conn_bytes_in_total", &labels),
            bytes_out: reg.counter("dsdps_dist_conn_bytes_out_total", &labels),
            frames_in: reg.counter("dsdps_dist_conn_frames_in_total", &labels),
            frames_out: reg.counter("dsdps_dist_conn_frames_out_total", &labels),
            decode_us: reg.counter("dsdps_dist_conn_decode_us_total", &labels),
            encode_us: reg.counter("dsdps_dist_conn_encode_us_total", &labels),
            write_block_us: reg.counter("dsdps_dist_conn_write_block_us_total", &labels),
        }
    }

    fn sync_conn(&self, stats: &ConnStats) {
        use std::sync::atomic::Ordering::Relaxed;
        self.bytes_in.set(stats.bytes_in.load(Relaxed));
        self.bytes_out.set(stats.bytes_out.load(Relaxed));
        self.frames_in.set(stats.frames_in.load(Relaxed));
        self.frames_out.set(stats.frames_out.load(Relaxed));
        self.decode_us.set(stats.decode_us.load(Relaxed));
        self.encode_us.set(stats.encode_us.load(Relaxed));
        self.write_block_us.set(stats.write_block_us.load(Relaxed));
        self.rx_silence.set(stats.rx_silence_s().unwrap_or(0.0));
    }
}

/// Cached handles of the coordinator-level reliability families.
struct CoordMetrics {
    tracked: Counter,
    acked: Counter,
    failed: Counter,
    timed_out: Counter,
    permanently_failed: Counter,
    replays_emitted: Counter,
    worker_restarts: Counter,
    worker_disconnects: Counter,
    pending_trees: Gauge,
}

impl CoordMetrics {
    fn new(reg: &Registry) -> Self {
        CoordMetrics {
            tracked: reg.counter("dsdps_coord_tracked_total", &[]),
            acked: reg.counter("dsdps_coord_acked_total", &[]),
            failed: reg.counter("dsdps_coord_failed_total", &[]),
            timed_out: reg.counter("dsdps_coord_timed_out_total", &[]),
            permanently_failed: reg.counter("dsdps_coord_permanently_failed_total", &[]),
            replays_emitted: reg.counter("dsdps_coord_replays_emitted_total", &[]),
            worker_restarts: reg.counter("dsdps_coord_worker_restarts_total", &[]),
            worker_disconnects: reg.counter("dsdps_coord_worker_disconnects_total", &[]),
            pending_trees: reg.gauge("dsdps_coord_pending_trees", &[]),
        }
    }

    fn sync(&self, c: &Counters, pending: usize) {
        self.tracked.set(c.tracked.load(Ordering::Relaxed));
        self.acked.set(c.acked.load(Ordering::Relaxed));
        self.failed.set(c.failed.load(Ordering::Relaxed));
        self.timed_out.set(c.timed_out.load(Ordering::Relaxed));
        self.permanently_failed
            .set(c.permanently_failed.load(Ordering::Relaxed));
        self.replays_emitted
            .set(c.replays_emitted.load(Ordering::Relaxed));
        self.worker_restarts
            .set(c.worker_restarts.load(Ordering::Relaxed));
        self.worker_disconnects
            .set(c.worker_disconnects.load(Ordering::Relaxed));
        self.pending_trees.set(pending as f64);
    }
}

struct Shared {
    topology: Topology,
    /// The registry key the topology was submitted under (what workers
    /// rebuild from; not necessarily the topology's display name).
    topology_key: String,
    cfg_args_str: String,
    intern: InternTable,
    router: DistRouter,
    engine: EngineConfig,
    rt: RtConfig,
    cfg: DistConfig,
    endpoint: Endpoint,
    ackers: ShardedAcker,
    ledger: CreditLedger,
    store: CheckpointStore,
    journal: Journal,
    counters: Counters,
    /// Coordinator-side tracer: spout-emit + terminal spans, sampled by
    /// `RtConfig::trace_sample_rate`.  The per-tree decision also rides
    /// each delivery as `WireTuple::trace_root`, so workers record hops
    /// for exactly the trees traced here.
    tracer: Tracer,
    /// Worker hop spans, already clock-normalized and stamped with
    /// pid/generation at receipt.
    worker_spans: Mutex<Vec<Span>>,
    /// Spans rejected by worker-side ring buffers (shipped in `SpanBatch`).
    worker_spans_dropped: AtomicU64,
    /// One registry for the whole cluster: coordinator families plus every
    /// worker push re-registered under `worker`/`generation` labels; served
    /// at `RtConfig::metrics_addr`.
    metrics: Arc<Registry>,
    coord_metrics: CoordMetrics,
    slot_gauges: Vec<SlotGauges>,
    /// Coordinator OS pid, stamped into coordinator-side spans at merge.
    coord_pid: u32,
    latency: Mutex<LatencyStats>,
    start: Instant,
    /// Set at shutdown: spouts stop emitting fresh tuples.
    stop: AtomicBool,
    /// Set after the drain: every background thread exits.
    terminate: AtomicBool,
    next_token: AtomicU64,
    flush_seq: AtomicU64,
    /// Owning worker slot per global task (`None` for spout tasks).
    task_owner: Vec<Option<usize>>,
    /// Component id per global task.
    task_component: Vec<usize>,
    /// Whether each component's bolt reports state (probed at submit).
    component_stateful: Vec<bool>,
    slots: Vec<WorkerSlot>,
    overflow: Vec<Mutex<VecDeque<Overflow>>>,
    /// Live replay-buffer length per spout task (drain check).
    spout_inflight: Vec<AtomicUsize>,
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn now_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Sends one delivery to its owner if the slot is up.  Returns `false`
    /// when the slot has no live connection (caller fails the tree).
    /// Assumes the destination credit was already acquired.
    fn send_now(
        &self,
        dest: usize,
        stream: u32,
        values: Vec<Value>,
        anchor: Option<(RootId, u64)>,
        dedup: Option<u64>,
    ) -> bool {
        let Some(slot_idx) = self.task_owner[dest] else {
            return false;
        };
        let mut state = self.slots[slot_idx].state.lock().unwrap();
        if !state.connected || state.writer.is_none() {
            return false;
        }
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        // The sampling decision travels with the tuple: workers record hop
        // spans iff `trace_root` is set, so worker traces line up with the
        // coordinator's spout-emit/terminal spans for the same trees.
        let trace_root = anchor
            .map(|(root, _)| root)
            .filter(|&root| self.tracer.enabled() && self.tracer.sampled(root));
        let item = WireTuple {
            token,
            dest_task: dest as u32,
            stream,
            dedup,
            trace_root,
            values,
        };
        state.pending.insert(
            token,
            Delivery {
                anchor,
                task: dest as u32,
            },
        );
        let failed = state
            .writer
            .as_mut()
            .expect("checked above")
            .push_tuple(item)
            .is_err();
        if failed {
            // Socket died mid-write.  Leave the pending entry: the reader
            // thread observes the same failure and fails every pending
            // delivery (including this one) into replay.
            state.connected = false;
        }
        true
    }

    /// Delivers or parks one emission instance for `dest`.
    fn enqueue(
        &self,
        dest: usize,
        stream: u32,
        values: Vec<Value>,
        anchor: Option<(RootId, u64)>,
        dedup: Option<u64>,
    ) {
        if self.ledger.try_acquire(dest) {
            if !self.send_now(dest, stream, values, anchor, dedup) {
                self.ledger.grant(dest, 1);
                if let Some((root, _)) = anchor {
                    self.ackers.on_fail(root, self.now_s());
                }
            }
        } else {
            self.overflow[dest].lock().unwrap().push_back(Overflow {
                stream,
                values,
                anchor,
                dedup,
            });
        }
    }

    /// Moves credit-starved emissions onto the wire as credits permit.
    fn drain_overflow(&self, task: usize) {
        loop {
            let item = {
                let mut q = self.overflow[task].lock().unwrap();
                if q.is_empty() || !self.ledger.try_acquire(task) {
                    break;
                }
                q.pop_front().expect("checked non-empty")
            };
            if !self.send_now(task, item.stream, item.values, item.anchor, item.dedup) {
                self.ledger.grant(task, 1);
                if let Some((root, _)) = item.anchor {
                    self.ackers.on_fail(root, self.now_s());
                }
            }
        }
    }

    /// Routes one emission whose tuple is already schema-attached.
    /// Registers every new edge on the tree *before* any delivery leaves,
    /// then enqueues.  With `track_as` set, the first edge opens a fresh
    /// tree for that spout message.
    #[allow(clippy::too_many_arguments)]
    fn route_tuple(
        &self,
        component: usize,
        stream: u32,
        tuple: &Tuple,
        direct_task: Option<u32>,
        anchor_root: Option<RootId>,
        track_as: Option<(TaskId, MessageId)>,
        dedup: Option<u64>,
    ) -> (usize, Option<RootId>) {
        let mut dests = Vec::new();
        self.router
            .select(component, stream, tuple, direct_task, &mut dests);
        if dests.is_empty() {
            return (0, None);
        }
        let now = self.now_s();
        // Register every new edge on the tree before any delivery leaves,
        // so a fast worker's acks cannot XOR the tree to zero early.
        let mut new_root = None;
        let anchors: Vec<Option<(RootId, u64)>> = match (anchor_root, track_as) {
            (Some(root), _) => dests
                .iter()
                .map(|_| {
                    let edge = self.ackers.new_edge_id();
                    self.ackers.on_emit(root, edge);
                    Some((root, edge))
                })
                .collect(),
            (None, Some((spout_task, message_id))) => {
                let root = self.ackers.new_edge_id();
                new_root = Some(root);
                dests
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let edge = self.ackers.new_edge_id();
                        if i == 0 {
                            self.ackers.track(root, edge, spout_task, message_id, now);
                        } else {
                            self.ackers.on_emit(root, edge);
                        }
                        Some((root, edge))
                    })
                    .collect()
            }
            (None, None) => dests.iter().map(|_| None).collect(),
        };
        let n = dests.len();
        for (dest, anchor) in dests.into_iter().zip(anchors) {
            self.enqueue(dest, stream, tuple.values().to_vec(), anchor, dedup);
        }
        (n, new_root)
    }

    /// Routes a worker-produced emission (bolt output or tick output).
    fn route_wire_emission(
        &self,
        producer_component: usize,
        emission: WireEmission,
        anchor_root: Option<RootId>,
    ) {
        let Ok(tuple) = self.intern.tuple(emission.stream, emission.values) else {
            return;
        };
        let _ = self.route_tuple(
            producer_component,
            emission.stream,
            &tuple,
            emission.direct_task,
            anchor_root,
            None,
            None,
        );
    }

    /// Fails every in-flight delivery of a dead connection into replay and
    /// returns the connection's credits.  Idempotent per connection.
    fn cleanup_slot(&self, slot_idx: usize, reason: &str) {
        let (pending, deferred, was_connected) = {
            let mut state = self.slots[slot_idx].state.lock().unwrap();
            if !state.connected && state.writer.is_none() {
                return;
            }
            state.connected = false;
            if let Some(writer) = state.writer.take() {
                let c = &self.counters;
                c.bytes_out.fetch_add(writer.bytes_out, Ordering::Relaxed);
                c.frames_out.fetch_add(writer.frames_out, Ordering::Relaxed);
            }
            state.restore_age.clear();
            state.conn_stats = None;
            state.hb_lagged = false;
            if let Some(child) = state.child.as_mut() {
                // A dead socket with a live process is a zombie worker:
                // take it down so the supervisor can respawn cleanly.
                let _ = child.kill();
            }
            (
                std::mem::take(&mut state.pending),
                std::mem::take(&mut state.deferred),
                true,
            )
        };
        let _ = was_connected;
        let now = self.now_s();
        self.counters
            .worker_disconnects
            .fetch_add(1, Ordering::Relaxed);
        // Sampled trees that die with the connection, capped so a flooded
        // window cannot bloat the journal; cross-references the span log.
        const LOST_TRACE_CAP: usize = 32;
        let lost_trace_ids: Vec<u64> = pending
            .values()
            .chain(deferred.values())
            .filter_map(|d| d.anchor.map(|(root, _)| root))
            .filter(|&root| self.tracer.enabled() && self.tracer.sampled(root))
            .map(trace_id)
            .take(LOST_TRACE_CAP)
            .collect();
        self.journal.append(JournalEvent::WorkerDisconnected {
            time_s: now,
            worker: slot_idx,
            reason: reason.to_owned(),
            lost_trace_ids,
        });
        for (_, d) in pending {
            // The delivery never completed: return its credit and fail its
            // tree into replay.
            self.ledger.grant(d.task as usize, 1);
            if let Some((root, _)) = d.anchor {
                self.ackers.on_fail(root, now);
            }
        }
        for (_, d) in deferred {
            // Processed but not yet covered by a checkpoint: its effect
            // died with the worker, so the tree must replay.  (The worker
            // already re-granted this delivery's credit.)
            if let Some((root, _)) = d.anchor {
                self.ackers.on_fail(root, now);
            }
        }
    }

    fn spawn_worker(self: &Arc<Self>, slot_idx: usize) -> Result<()> {
        let mut state = self.slots[slot_idx].state.lock().unwrap();
        let mut cmd = Command::new(&self.cfg.worker_cmd[0]);
        cmd.args(&self.cfg.worker_cmd[1..])
            .env("DSDPS_DIST_ADDR", self.endpoint.to_env())
            .env("DSDPS_DIST_WORKER", slot_idx.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let mut child = cmd
            .spawn()
            .map_err(|e| Error::Runtime(format!("spawn worker: {e}")))?;
        // Stderr pump: structured last-words JSONL lines are captured for
        // the supervisor's `worker_died` cause; everything else is
        // forwarded verbatim.  The thread exits at stderr EOF (process
        // death), so it never needs joining.
        if let Some(stderr) = child.stderr.take() {
            let shared = Arc::clone(self);
            let _ = std::thread::Builder::new()
                .name(format!("dist-stderr-{slot_idx}"))
                .spawn(move || {
                    for line in std::io::BufReader::new(stderr).lines() {
                        let Ok(line) = line else { break };
                        if let Ok(lw) = serde_json::from_str::<LastWordsLine>(&line) {
                            if lw.dsdps_last_words {
                                let mut state = shared.slots[slot_idx].state.lock().unwrap();
                                state.last_words = Some((lw.cause, lw.detail));
                                continue;
                            }
                        }
                        eprintln!("dsdps worker {slot_idx}: {line}");
                    }
                });
        }
        self.journal.append(JournalEvent::WorkerSpawned {
            time_s: self.now_s(),
            worker: slot_idx,
            pid: child.id(),
            generation: state.generation,
        });
        state.pid = child.id();
        state.child = Some(child);
        Ok(())
    }

    /// All spout replay buffers, worker pendings/deferreds and overflow
    /// queues are empty and no tree is in flight.
    fn quiesced(&self) -> bool {
        if self.ackers.pending_count() != 0 {
            return false;
        }
        if self
            .spout_inflight
            .iter()
            .any(|c| c.load(Ordering::Acquire) != 0)
        {
            return false;
        }
        if self.overflow.iter().any(|q| !q.lock().unwrap().is_empty()) {
            return false;
        }
        for slot in &self.slots {
            let state = slot.state.lock().unwrap();
            if !state.pending.is_empty() || !state.deferred.is_empty() {
                return false;
            }
        }
        true
    }
}

// --- reader thread ------------------------------------------------------

fn reader_loop(
    shared: Arc<Shared>,
    slot_idx: usize,
    generation: u64,
    pid: u32,
    mut reader: FrameReader,
) {
    let reason = loop {
        let frame = match reader.read_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                if shared.terminate.load(Ordering::Acquire) {
                    break "shutdown".to_owned();
                }
                continue;
            }
            Err(e) => break e.to_string(),
        };
        match frame {
            Frame::ResultBatch { items } => {
                for item in items {
                    let delivery = {
                        let mut state = shared.slots[slot_idx].state.lock().unwrap();
                        state.pending.remove(&item.token)
                    };
                    // Stale token (delivered before a reconnect): already
                    // failed into replay by cleanup.
                    let Some(delivery) = delivery else { continue };
                    let component = shared.task_component[delivery.task as usize];
                    let root = delivery.anchor.map(|(r, _)| r);
                    for emission in item.emissions {
                        let anchor = if emission.anchored { root } else { None };
                        shared.route_wire_emission(component, emission, anchor);
                    }
                    let now = shared.now_s();
                    if let Some((root, edge)) = delivery.anchor {
                        if item.failed {
                            shared.ackers.on_fail(root, now);
                        } else if item.deferred {
                            let mut state = shared.slots[slot_idx].state.lock().unwrap();
                            state.deferred.insert(item.token, delivery);
                        } else {
                            shared.ackers.on_ack(root, edge, now);
                        }
                    }
                }
            }
            Frame::CreditGrant { task, amount } => {
                shared.ledger.grant(task as usize, amount);
                shared.drain_overflow(task as usize);
            }
            Frame::AckFlush { tokens } => {
                let now = shared.now_s();
                for token in tokens {
                    let delivery = {
                        let mut state = shared.slots[slot_idx].state.lock().unwrap();
                        state.deferred.remove(&token)
                    };
                    if let Some(Delivery {
                        anchor: Some((root, edge)),
                        ..
                    }) = delivery
                    {
                        shared.ackers.on_ack(root, edge, now);
                    }
                }
            }
            Frame::CheckpointDeposit {
                task,
                payload,
                dedup,
            } => {
                if let Ok(snap) = snapshot_from_payload(&payload) {
                    let kind = match snap.kind {
                        crate::rt::SnapshotKind::Full => "full",
                        crate::rt::SnapshotKind::Delta => "delta",
                    };
                    let now = shared.now_s();
                    if let Some(bytes) =
                        shared
                            .store
                            .deposit_full(task as usize, generation, now, snap, dedup)
                    {
                        shared
                            .counters
                            .checkpoints_taken
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .counters
                            .snapshot_bytes
                            .fetch_add(bytes, Ordering::Relaxed);
                        shared.journal.append(JournalEvent::CheckpointTaken {
                            time_s: now,
                            task: task as usize,
                            generation,
                            kind: kind.to_owned(),
                            bytes,
                            duration_us: 0,
                        });
                    }
                }
            }
            Frame::StateRestored {
                task,
                ok,
                latency_us,
            } => {
                let age = {
                    let mut state = shared.slots[slot_idx].state.lock().unwrap();
                    state.restore_age.remove(&task).flatten()
                };
                let now = shared.now_s();
                if ok {
                    shared.counters.restores.fetch_add(1, Ordering::Relaxed);
                    shared.journal.append(JournalEvent::StateRestored {
                        time_s: now,
                        task: task as usize,
                        generation,
                        snapshot_age_s: age,
                        latency_us,
                    });
                } else {
                    shared.journal.append(JournalEvent::StateLost {
                        time_s: now,
                        task: task as usize,
                        generation,
                        snapshot_age_s: age,
                    });
                }
            }
            Frame::TickEmissions { task, emissions } => {
                let component = shared.task_component[task as usize];
                for emission in emissions {
                    // Tick output has no input tuple: never anchored.
                    shared.route_wire_emission(component, emission, None);
                }
            }
            Frame::SpanBatch {
                worker: _,
                dropped,
                spans,
            } => {
                // Stamp what the worker could not know (component names,
                // slot, pid, generation), re-base the worker-clock
                // timestamps with the handshake offset, then merge.
                let offset = {
                    let state = shared.slots[slot_idx].state.lock().unwrap();
                    state.clock_offset_us
                };
                let mut converted: Vec<Span> = spans
                    .into_iter()
                    .filter_map(|ws| {
                        let kind = span_kind_from_byte(ws.kind)?;
                        let task = ws.task as usize;
                        let component = shared
                            .task_component
                            .get(task)
                            .map(|&c| shared.topology.component(ComponentId(c)).name.clone())
                            .unwrap_or_default();
                        Some(Span {
                            trace_id: trace_id(ws.root),
                            root: ws.root,
                            kind,
                            component,
                            task,
                            worker: slot_idx,
                            start_us: ws.start_us,
                            queue_wait_us: ws.queue_wait_us,
                            exec_us: ws.exec_us,
                            batch_id: ws.batch_id,
                            replay_attempt: 0,
                            message_id: None,
                            pid,
                            generation,
                        })
                    })
                    .collect();
                normalize_start_us(&mut converted, offset);
                shared
                    .worker_spans_dropped
                    .fetch_add(dropped, Ordering::Relaxed);
                shared.worker_spans.lock().unwrap().extend(converted);
            }
            Frame::MetricsPush { worker: _, samples } => {
                let w = slot_idx.to_string();
                let g = generation.to_string();
                let labels: [(&str, &str); 2] =
                    [("worker", w.as_str()), ("generation", g.as_str())];
                for sample in samples {
                    match sample.kind {
                        0 => shared
                            .metrics
                            .counter(&sample.name, &labels)
                            .add(sample.value),
                        1 => shared
                            .metrics
                            .gauge(&sample.name, &labels)
                            .set(f64::from_bits(sample.value)),
                        _ => {}
                    }
                }
            }
            Frame::LastWords {
                worker: _,
                cause,
                detail,
            } => {
                let mut state = shared.slots[slot_idx].state.lock().unwrap();
                state.last_words = Some((cause, detail));
            }
            Frame::Flushed { .. } => {}
            // Worker→coordinator direction only carries the frames above.
            _ => {}
        }
    };
    let c = &shared.counters;
    c.bytes_in.fetch_add(reader.bytes_in, Ordering::Relaxed);
    c.frames_in.fetch_add(reader.frames_in, Ordering::Relaxed);
    shared.cleanup_slot(slot_idx, &reason);
}

// --- listener / handshake thread ----------------------------------------

fn listener_loop(shared: Arc<Shared>, listener: Listener) {
    let _ = listener.set_nonblocking(true);
    while !shared.terminate.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(Some(conn)) => {
                if let Err(e) = handshake(&shared, conn) {
                    shared.journal.append(JournalEvent::WorkerDisconnected {
                        time_s: shared.now_s(),
                        worker: usize::MAX,
                        reason: format!("handshake failed: {e}"),
                        lost_trace_ids: Vec::new(),
                    });
                }
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(5)),
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handshake(shared: &Arc<Shared>, conn: Conn) -> Result<()> {
    let handshake_start = Instant::now();
    conn.set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| Error::Runtime(format!("set timeout: {e}")))?;
    let writer_conn = conn
        .try_clone()
        .map_err(|e| Error::Runtime(format!("clone socket: {e}")))?;
    let stats = ConnStats::new();
    let mut reader = FrameReader::new(conn);
    reader.set_stats(Arc::clone(&stats));
    let hello = reader
        .read_frame()?
        .ok_or_else(|| Error::Runtime("timed out waiting for hello".into()))?;
    let Frame::Hello {
        worker,
        pid,
        clock_us,
    } = hello
    else {
        return Err(Error::Runtime(format!(
            "expected hello, got {}",
            hello.kind()
        )));
    };
    // Clock-offset estimation: the worker's span clock read `clock_us` at
    // send time, which is "now" minus (uncorrected) one-way latency on
    // loopback — good to well under a millisecond, enough to merge span
    // timelines.  Workers re-send `Hello` after a respawn, so the offset
    // is re-estimated per generation.
    let clock_offset_us = shared.start.elapsed().as_micros() as i64 - clock_us as i64;
    let slot_idx = worker as usize;
    if slot_idx >= shared.slots.len() {
        return Err(Error::Runtime(format!("unknown worker slot {worker}")));
    }
    let mut writer = BatchWriter::new(writer_conn, shared.rt.batch_size, shared.rt.linger);
    writer.set_stats(Arc::clone(&stats));
    let slot = &shared.slots[slot_idx];
    writer.send(&Frame::Assign {
        worker,
        topology: shared.topology_key.clone(),
        args: shared.cfg_args().to_owned(),
        tasks: slot.tasks.clone(),
        recovery: recovery_to_byte(shared.rt.recovery_mode),
        ckpt_interval_us: shared.rt.checkpoint_interval.as_micros() as u64,
        tick_interval_us: (shared.engine.tick_interval_s.max(0.0) * 1e6) as u64,
        metrics_interval_us: (shared.engine.metrics_interval_s.max(0.0) * 1e6) as u64,
        task_count: shared.topology.task_count() as u32,
        stream_count: shared.intern.len() as u32,
    })?;

    let mut state = slot.state.lock().unwrap();
    state.generation += 1;
    let generation = state.generation;
    let now = shared.now_s();
    let restore_start = Instant::now();
    // Restore stateful tasks from the store *before* the writer is
    // published: frames are processed in order, so every restore lands
    // before the first tuple delivery of this connection.
    for &task in &slot.tasks {
        if !shared.component_stateful[shared.task_component[task as usize]] {
            continue;
        }
        let Some(restored) = shared.store.load(task as usize, generation) else {
            continue;
        };
        match restored.base {
            Some(base) => {
                let age = restored.taken_at_s.map(|t| now - t);
                state.restore_age.insert(task, age);
                writer.send(&Frame::RestoreState {
                    task,
                    payload: Some(snapshot_to_payload(&base)),
                    dedup: restored.dedup,
                })?;
            }
            None => {
                if generation > 1 {
                    shared.journal.append(JournalEvent::StateLost {
                        time_s: now,
                        task: task as usize,
                        generation,
                        snapshot_age_s: None,
                    });
                }
            }
        }
    }
    let restore_us = restore_start.elapsed().as_micros() as u64;
    state.pid = pid;
    state.connected = true;
    state.writer = Some(writer);
    state.clock_offset_us = clock_offset_us;
    state.conn_stats = Some(Arc::clone(&stats));
    state.last_words = None;
    state.hb_lagged = false;
    let task_count = slot.tasks.len();
    drop(state);

    shared.journal.append(JournalEvent::WorkerConnected {
        time_s: now,
        worker: slot_idx,
        pid,
    });
    // The restore-timing decomposition: `handshake_us` covers
    // accept→hello→assign→restores end to end, `restore_us` just the
    // restore-frame leg.
    shared.journal.append(JournalEvent::WorkerAssigned {
        time_s: now,
        worker: slot_idx,
        pid,
        generation,
        tasks: task_count,
        clock_offset_us,
        handshake_us: handshake_start.elapsed().as_micros() as u64,
        restore_us,
    });
    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("dist-reader-{slot_idx}"))
        .spawn(move || reader_loop(shared2, slot_idx, generation, pid, reader))
        .map_err(|e| Error::Runtime(format!("spawn reader: {e}")))?;
    shared.reader_threads.lock().unwrap().push(handle);
    // New connection, fresh capacity: anything parked for this slot's
    // tasks can move now.
    for &task in &slot.tasks {
        shared.drain_overflow(task as usize);
    }
    Ok(())
}

impl Shared {
    fn cfg_args(&self) -> &str {
        &self.cfg_args_str
    }
}

// --- supervisor thread --------------------------------------------------

fn supervisor_loop(shared: Arc<Shared>) {
    let mut last_expire = Instant::now();
    let mut last_gauge_sync = Instant::now();
    // Heartbeat-lag threshold: a live worker touches the connection at
    // least every metrics interval, so 2× the interval of rx silence is a
    // worker that is wedged (or a connection the OS has not failed yet).
    let hb_threshold_s = if shared.engine.metrics_interval_s > 0.0 {
        Some(2.0 * shared.engine.metrics_interval_s)
    } else {
        None
    };
    while !shared.terminate.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(5));
        let now = shared.now_s();
        if last_expire.elapsed() >= Duration::from_millis(50) {
            last_expire = Instant::now();
            shared
                .ackers
                .expire(now, shared.engine.message_timeout_s.max(0.001));
        }
        let sync_gauges = HOT_PATH_TELEMETRY && last_gauge_sync.elapsed() >= GAUGE_SYNC_INTERVAL;
        if sync_gauges {
            last_gauge_sync = Instant::now();
            shared
                .coord_metrics
                .sync(&shared.counters, shared.ackers.pending_count());
        }
        for (idx, slot) in shared.slots.iter().enumerate() {
            let mut state = slot.state.lock().unwrap();
            // Reap exited children, attaching the captured cause of death
            // (last-words frame / stderr line, else the raw exit status).
            let exit_status = match state.child.as_mut() {
                Some(child) => child.try_wait().ok().flatten(),
                None => None,
            };
            if let Some(status) = exit_status {
                state.child = None;
                let cause = match state.last_words.take() {
                    Some((cause, detail)) => format!("{cause}: {detail}"),
                    None => format!("exit: {status}"),
                };
                shared.journal.append(JournalEvent::WorkerDied {
                    time_s: now,
                    worker: idx,
                    pid: state.pid,
                    generation: state.generation,
                    cause,
                });
            }
            if sync_gauges {
                shared.slot_gauges[idx]
                    .outstanding
                    .set(state.pending.len() as f64);
                let parked: usize = slot
                    .tasks
                    .iter()
                    .map(|&t| shared.overflow[t as usize].lock().unwrap().len())
                    .sum();
                shared.slot_gauges[idx].parked.set(parked as f64);
                if let Some(stats) = state.conn_stats.as_ref() {
                    shared.slot_gauges[idx].sync_conn(stats);
                }
            }
            // Heartbeat lag: journaled once per silence episode.
            if let (Some(threshold), true) = (hb_threshold_s, state.connected) {
                let silence = state
                    .conn_stats
                    .as_ref()
                    .and_then(|s| s.rx_silence_s())
                    .unwrap_or(0.0);
                if silence > threshold {
                    if !state.hb_lagged {
                        state.hb_lagged = true;
                        shared.journal.append(JournalEvent::WorkerHeartbeatLag {
                            time_s: now,
                            worker: idx,
                            lag_s: silence,
                        });
                    }
                } else {
                    state.hb_lagged = false;
                }
            }
            // Respawn a dead, disconnected slot within budget.
            if state.child.is_none()
                && !state.connected
                && state.generation > 0
                && state.respawns < shared.cfg.max_worker_restarts
                && !shared.terminate.load(Ordering::Acquire)
            {
                state.respawns += 1;
                shared
                    .counters
                    .worker_restarts
                    .fetch_add(1, Ordering::Relaxed);
                drop(state);
                let _ = shared.spawn_worker(idx);
                continue;
            }
            // Linger: flush partial tuple batches past their deadline.
            if let Some(writer) = state.writer.as_mut() {
                if writer.poll_linger().is_err() {
                    state.connected = false;
                }
            }
        }
        for task in 0..shared.task_owner.len() {
            if shared.task_owner[task].is_some() {
                shared.drain_overflow(task);
            }
        }
    }
}

// --- completer thread ---------------------------------------------------

fn completer_loop(shared: Arc<Shared>, feedback: HashMap<usize, Sender<TreeOutcome>>) {
    loop {
        let outcomes = shared.ackers.drain_outcomes();
        if outcomes.is_empty() {
            if shared.terminate.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        for outcome in outcomes {
            // Terminal span for sampled trees, recorded into the trailing
            // tracer slot (the completer is the dist counterpart of the
            // threaded runtime's metrics-thread slot).
            if shared.tracer.enabled() && shared.tracer.sampled(outcome.root) {
                let kind = match outcome.completion {
                    Completion::Acked => SpanKind::Ack,
                    Completion::Failed => SpanKind::Fail,
                    Completion::TimedOut => SpanKind::Timeout,
                };
                let latency_us = outcome.complete_latency() * 1e6;
                shared.tracer.record_terminal(
                    shared.topology.task_count(),
                    outcome.root,
                    kind,
                    outcome.spout_task.0,
                    (outcome.completed_at * 1e6) as u64,
                    latency_us.max(0.0) as u64,
                    outcome.message_id,
                );
            }
            if let Some(tx) = feedback.get(&outcome.spout_task.0) {
                let _ = tx.send(outcome);
            }
        }
    }
}

// --- spout thread -------------------------------------------------------

struct SpoutThreadResult {
    in_flight: usize,
}

#[allow(clippy::too_many_arguments)]
fn spout_loop(
    shared: Arc<Shared>,
    component_id: usize,
    task: usize,
    task_index: usize,
    spout_index: usize,
    feedback: Receiver<TreeOutcome>,
) -> SpoutThreadResult {
    let component = shared
        .topology
        .component(crate::topology::ComponentId(component_id));
    let ComponentKind::Spout(factory) = &component.kind else {
        unreachable!("spout thread for a bolt component");
    };
    let mut spout = factory();
    spout.open(&TopologyContext {
        component: component.name.clone(),
        task_index,
        parallelism: component.parallelism,
    });
    let mut replay = ReplayBuffer::default();
    let mut out = SpoutOutput::new();
    let mut idle_spins = 0u32;
    let mut exhausted = false;
    loop {
        let now = shared.now_s();
        // 1. Feedback: completed trees → acks/fails/replay schedule.
        while let Ok(outcome) = feedback.try_recv() {
            let id = outcome.message_id;
            match outcome.completion {
                Completion::Acked => {
                    if replay.on_ack(id) {
                        shared.counters.acked.fetch_add(1, Ordering::Relaxed);
                        shared
                            .latency
                            .lock()
                            .unwrap()
                            .record(outcome.complete_latency() * 1e3);
                        spout.ack(id);
                    }
                }
                Completion::Failed | Completion::TimedOut => {
                    let counter = if outcome.completion == Completion::Failed {
                        &shared.counters.failed
                    } else {
                        &shared.counters.timed_out
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    match replay.on_fail(
                        id,
                        shared.rt.max_replays,
                        shared.rt.replay_backoff,
                        Instant::now(),
                    ) {
                        FailDecision::Scheduled { attempt, delay } => {
                            shared
                                .counters
                                .replays_scheduled
                                .fetch_add(1, Ordering::Relaxed);
                            shared.journal.append(JournalEvent::ReplayScheduled {
                                time_s: now,
                                message_id: id,
                                attempt,
                                delay_ms: delay.as_secs_f64() * 1e3,
                            });
                        }
                        FailDecision::Exhausted { attempts } => {
                            shared
                                .counters
                                .permanently_failed
                                .fetch_add(1, Ordering::Relaxed);
                            shared.journal.append(JournalEvent::ReplayExhausted {
                                time_s: now,
                                message_id: id,
                                attempts,
                            });
                            spout.fail(id);
                        }
                        FailDecision::Untracked | FailDecision::Doomed => {}
                    }
                }
            }
        }
        // 2. Due replays: re-emit under a fresh tree.
        for (id, emission, attempt) in replay.take_due(Instant::now()) {
            let (delivered, root) =
                route_spout_emission(&shared, component_id, task, &emission, Some(id));
            let root = root.unwrap_or(0);
            shared
                .counters
                .replays_emitted
                .fetch_add(1, Ordering::Relaxed);
            shared.journal.append(JournalEvent::ReplayEmitted {
                time_s: now,
                message_id: id,
                attempt,
                root,
                trace_id: splitmix64(root),
            });
            if shared.tracer.enabled() && shared.tracer.sampled(root) {
                shared
                    .tracer
                    .record_emit(task, root, task, (now * 1e6) as u64, attempt, id);
            }
            if delivered == 0 {
                // Routed to nothing (subscriber set changed?): complete it.
                if replay.on_ack(id) {
                    shared.counters.acked.fetch_add(1, Ordering::Relaxed);
                    spout.ack(id);
                }
            }
        }
        // 3. Fresh emission, gated on max_spout_pending.
        let stopped = shared.stop.load(Ordering::Acquire) || exhausted;
        let mut emitted_any = false;
        if !stopped && replay.len() < shared.engine.max_spout_pending {
            out.set_now(now);
            if !spout.next_tuple(&mut out) {
                exhausted = true;
            }
            for emission in out.drain() {
                emitted_any = true;
                shared
                    .counters
                    .spout_emitted
                    .fetch_add(1, Ordering::Relaxed);
                match emission.message_id {
                    Some(id) => {
                        let emission = Arc::new(emission);
                        if replay.on_track(id, Arc::clone(&emission), now) {
                            shared.counters.tracked.fetch_add(1, Ordering::Relaxed);
                        }
                        let (delivered, root) =
                            route_spout_emission(&shared, component_id, task, &emission, Some(id));
                        if let Some(root) = root {
                            if shared.tracer.enabled() && shared.tracer.sampled(root) {
                                shared.tracer.record_emit(
                                    task,
                                    root,
                                    task,
                                    (now * 1e6) as u64,
                                    0,
                                    id,
                                );
                            }
                        }
                        if delivered == 0 {
                            // No subscriber: immediately complete.
                            if replay.on_ack(id) {
                                shared.counters.acked.fetch_add(1, Ordering::Relaxed);
                                spout.ack(id);
                            }
                        }
                    }
                    None => {
                        let _ = route_spout_emission(&shared, component_id, task, &emission, None);
                    }
                }
            }
        }
        shared.spout_inflight[spout_index].store(replay.len(), Ordering::Release);
        if shared.terminate.load(Ordering::Acquire) {
            break;
        }
        if emitted_any {
            idle_spins = 0;
        } else {
            idle_spins = (idle_spins + 1).min(20);
            std::thread::sleep(Duration::from_micros(50 * u64::from(idle_spins)));
        }
    }
    spout.close();
    SpoutThreadResult {
        in_flight: replay.len(),
    }
}

/// Routes one spout emission.  `tracked_as` carries the spout message id
/// for tree tracking + replay dedup; `None` emits untracked.
fn route_spout_emission(
    shared: &Shared,
    component_id: usize,
    task: usize,
    emission: &Emission,
    tracked_as: Option<MessageId>,
) -> (usize, Option<RootId>) {
    let Some(stream) = shared.intern.lookup(component_id, emission.stream.as_str()) else {
        return (0, None);
    };
    let (_, fields) = shared.intern.entry(stream).expect("interned");
    let tuple = if emission.tuple.fields().ptr_eq(fields) {
        emission.tuple.clone()
    } else {
        emission.tuple.rekeyed(fields.clone())
    };
    shared.route_tuple(
        component_id,
        stream,
        &tuple,
        emission.direct_task.map(|t| t as u32),
        None,
        tracked_as.map(|id| (TaskId(task), id)),
        tracked_as,
    )
}

// --- submit / running handle --------------------------------------------

/// Submits `topology_name` (resolved through `registry`, exactly as each
/// worker will resolve it) to a fleet of worker processes.
///
/// Blocks until every worker has connected and been assigned, or
/// [`DistConfig::connect_timeout`] expires.
pub fn submit(
    registry: &TopologyRegistry,
    topology_name: &str,
    args: &str,
    engine: EngineConfig,
    rt: RtConfig,
    cfg: DistConfig,
) -> Result<RunningDist> {
    if cfg.worker_cmd.is_empty() {
        return Err(Error::Config("worker_cmd must not be empty".into()));
    }
    crate::rt::checkpoint::set_json_snapshot_fallback(rt.json_snapshots);
    let topology = registry.build(topology_name, args)?;
    let intern = InternTable::new(&topology);
    let router = DistRouter::new(&topology, &intern);
    let n_tasks = topology.task_count();

    // Placement: spouts on the coordinator, bolt tasks round-robin over
    // worker slots.  Probe one instance per bolt component for state.
    let mut task_owner = vec![None; n_tasks];
    let mut task_component = vec![0usize; n_tasks];
    let mut component_stateful = Vec::new();
    let mut slot_tasks: Vec<Vec<u32>> = vec![Vec::new(); cfg.workers];
    let mut next_slot = 0usize;
    let mut spout_tasks: Vec<(usize, usize, usize)> = Vec::new(); // (component, task, task_index)
    for component in topology.components() {
        let stateful = match &component.kind {
            ComponentKind::Bolt(factory) => factory().stateful().is_some(),
            ComponentKind::Spout(_) => false,
        };
        component_stateful.push(stateful);
        for (task_index, task) in component.tasks().enumerate() {
            task_component[task.0] = component.id.0;
            match &component.kind {
                ComponentKind::Spout(_) => {
                    spout_tasks.push((component.id.0, task.0, task_index));
                }
                ComponentKind::Bolt(_) => {
                    task_owner[task.0] = Some(next_slot);
                    slot_tasks[next_slot].push(task.0 as u32);
                    next_slot = (next_slot + 1) % cfg.workers;
                }
            }
        }
    }
    if spout_tasks.is_empty() {
        return Err(Error::Config("topology has no spout".into()));
    }

    let ledger = CreditLedger::new(n_tasks);
    let window = if rt.credit_flow {
        (rt.credit_window.max(1) * rt.batch_size.max(1)) as u64
    } else {
        DEFAULT_WINDOW_TUPLES
    };
    for (task, owner) in task_owner.iter().enumerate() {
        if owner.is_some() {
            ledger.set_window(task, window);
        }
    }

    let (listener, endpoint) = match cfg.transport {
        TransportKind::Tcp => Listener::tcp_loopback()?,
        #[cfg(unix)]
        TransportKind::Auto | TransportKind::Unix => Listener::unix_temp()?,
        #[cfg(not(unix))]
        TransportKind::Auto => Listener::tcp_loopback()?,
    };

    let store = CheckpointStore::new(
        n_tasks,
        rt.checkpoint_spill_threshold,
        rt.checkpoint_spill_dir.clone(),
    );
    let journal = Journal::default();
    if rt.checkpoints {
        journal.append(JournalEvent::RecoveryMode {
            time_s: 0.0,
            mode: rt.recovery_mode.as_str().to_owned(),
        });
    }

    // Coordinator-side tracer meta: component name per task, worker = the
    // owning slot (spout tasks live on the coordinator and get the
    // one-past-the-fleet pseudo-slot).
    let span_meta: Vec<(String, usize)> = (0..n_tasks)
        .map(|t| {
            let comp = topology.component(ComponentId(task_component[t]));
            (comp.name.clone(), task_owner[t].unwrap_or(cfg.workers))
        })
        .collect();
    let tracer = Tracer::new(rt.trace_sample_rate, n_tasks + 1, span_meta);
    let metrics = Arc::new(Registry::new());
    let coord_metrics = CoordMetrics::new(&metrics);
    let slot_gauges = (0..cfg.workers)
        .map(|i| SlotGauges::new(&metrics, i))
        .collect();
    let metrics_server = match rt.metrics_addr {
        Some(addr) => Some(
            MetricsServer::bind(addr, Arc::clone(&metrics))
                .map_err(|e| Error::Config(format!("metrics_addr {addr} bind failed: {e}")))?,
        ),
        None => None,
    };

    let shared = Arc::new(Shared {
        topology_key: topology_name.to_owned(),
        cfg_args_str: args.to_owned(),
        intern,
        router,
        ackers: ShardedAcker::new(rt.acker_shards.max(1)),
        ledger,
        store,
        journal,
        counters: Counters::default(),
        tracer,
        worker_spans: Mutex::new(Vec::new()),
        worker_spans_dropped: AtomicU64::new(0),
        metrics,
        coord_metrics,
        slot_gauges,
        coord_pid: std::process::id(),
        latency: Mutex::new(LatencyStats::default()),
        start: Instant::now(),
        stop: AtomicBool::new(false),
        terminate: AtomicBool::new(false),
        next_token: AtomicU64::new(1),
        flush_seq: AtomicU64::new(1),
        task_owner,
        task_component,
        component_stateful,
        slots: slot_tasks
            .into_iter()
            .map(|tasks| WorkerSlot {
                state: Mutex::new(SlotState::default()),
                tasks,
            })
            .collect(),
        overflow: (0..n_tasks).map(|_| Mutex::new(VecDeque::new())).collect(),
        spout_inflight: spout_tasks.iter().map(|_| AtomicUsize::new(0)).collect(),
        reader_threads: Mutex::new(Vec::new()),
        topology,
        engine,
        rt,
        cfg,
        endpoint,
    });

    let listener_handle = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("dist-listener".into())
            .spawn(move || listener_loop(shared, listener))
            .map_err(|e| Error::Runtime(format!("spawn listener: {e}")))?
    };
    let supervisor_handle = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("dist-supervisor".into())
            .spawn(move || supervisor_loop(shared))
            .map_err(|e| Error::Runtime(format!("spawn supervisor: {e}")))?
    };

    // Launch the fleet.
    for slot_idx in 0..shared.slots.len() {
        shared.spawn_worker(slot_idx)?;
    }
    // Wait for every worker to finish its handshake.
    let deadline = Instant::now() + shared.cfg.connect_timeout;
    loop {
        let connected = shared
            .slots
            .iter()
            .filter(|s| s.state.lock().unwrap().connected)
            .count();
        if connected == shared.slots.len() {
            break;
        }
        if Instant::now() >= deadline {
            shared.terminate.store(true, Ordering::Release);
            for slot in &shared.slots {
                let mut state = slot.state.lock().unwrap();
                if let Some(child) = state.child.as_mut() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
            let _ = listener_handle.join();
            let _ = supervisor_handle.join();
            return Err(Error::Runtime(format!(
                "only {connected}/{} workers connected within {:?}",
                shared.slots.len(),
                shared.cfg.connect_timeout
            )));
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Spout threads + outcome fan-out.
    let mut feedback = HashMap::new();
    let mut spout_handles = Vec::new();
    for (spout_index, (component, task, task_index)) in spout_tasks.iter().copied().enumerate() {
        let (tx, rx) = mpsc::channel();
        feedback.insert(task, tx);
        let shared2 = Arc::clone(&shared);
        spout_handles.push(
            std::thread::Builder::new()
                .name(format!("dist-spout-{task}"))
                .spawn(move || spout_loop(shared2, component, task, task_index, spout_index, rx))
                .map_err(|e| Error::Runtime(format!("spawn spout: {e}")))?,
        );
    }
    let completer_handle = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("dist-completer".into())
            .spawn(move || completer_loop(shared, feedback))
            .map_err(|e| Error::Runtime(format!("spawn completer: {e}")))?
    };

    Ok(RunningDist {
        shared,
        listener_handle: Some(listener_handle),
        supervisor_handle: Some(supervisor_handle),
        completer_handle: Some(completer_handle),
        spout_handles,
        metrics_server,
    })
}

/// Handle on a running distributed topology.
pub struct RunningDist {
    shared: Arc<Shared>,
    listener_handle: Option<JoinHandle<()>>,
    supervisor_handle: Option<JoinHandle<()>>,
    completer_handle: Option<JoinHandle<()>>,
    spout_handles: Vec<JoinHandle<SpoutThreadResult>>,
    metrics_server: Option<MetricsServer>,
}

impl RunningDist {
    /// OS process ids of the current worker fleet (0 = not connected).
    pub fn worker_pids(&self) -> Vec<u32> {
        self.shared
            .slots
            .iter()
            .map(|s| s.state.lock().unwrap().pid)
            .collect()
    }

    /// The coordinator's OS process id (spout-emit and terminal spans are
    /// stamped with it in the merged trace).
    pub fn coordinator_pid(&self) -> u32 {
        self.shared.coord_pid
    }

    /// Address of the unified Prometheus endpoint, when
    /// [`RtConfig::metrics_addr`] was set (resolves port 0).  It serves
    /// the coordinator's families plus every worker's pushed metrics under
    /// `worker`/`generation` labels.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_server.as_ref().map(|s| s.local_addr())
    }

    /// Kills worker `idx`'s OS process (SIGKILL), as a fault-injection
    /// hook.  The supervisor respawns it within the restart budget.
    pub fn kill_worker(&self, idx: usize) -> Result<()> {
        let slot = self
            .shared
            .slots
            .get(idx)
            .ok_or_else(|| Error::Config(format!("no worker slot {idx}")))?;
        let mut state = slot.state.lock().unwrap();
        match state.child.as_mut() {
            Some(child) => {
                child
                    .kill()
                    .map_err(|e| Error::Runtime(format!("kill worker {idx}: {e}")))?;
                Ok(())
            }
            None => Err(Error::Runtime(format!("worker {idx} has no process"))),
        }
    }

    /// Seconds since submit.
    pub fn uptime_s(&self) -> f64 {
        self.shared.now_s()
    }

    /// Messages fully acked so far.
    pub fn acked(&self) -> u64 {
        self.shared.counters.acked.load(Ordering::Relaxed)
    }

    /// Distinct messages tracked so far.
    pub fn tracked(&self) -> u64 {
        self.shared.counters.tracked.load(Ordering::Relaxed)
    }

    /// Spout emissions so far (fresh, not counting replays).
    pub fn spout_emitted(&self) -> u64 {
        self.shared.counters.spout_emitted.load(Ordering::Relaxed)
    }

    /// Tuple trees currently pending in the acker.
    pub fn pending_trees(&self) -> usize {
        self.shared.ackers.pending_count()
    }

    /// Stops the spouts, drains in-flight trees (forcing checkpoints and
    /// deferred-ack flushes), tears the fleet down and reports.
    pub fn shutdown(mut self) -> DistReport {
        let shared = &self.shared;
        shared.stop.store(true, Ordering::Release);
        // Drain: nudge workers to checkpoint + flush deferred acks until
        // every tree settles or the budget expires.
        let deadline = Instant::now() + shared.cfg.drain_timeout;
        let mut drained_clean = false;
        loop {
            if shared.quiesced() {
                drained_clean = true;
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            let seq = shared.flush_seq.fetch_add(1, Ordering::Relaxed);
            for slot in &shared.slots {
                let mut state = slot.state.lock().unwrap();
                if let Some(writer) = state.writer.as_mut() {
                    if writer.send(&Frame::Flush { seq }).is_err() {
                        state.connected = false;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        shared.terminate.store(true, Ordering::Release);
        // Spouts exit first (they drain their feedback channels on the
        // way out), then the fan-out machinery.
        let mut in_flight = 0u64;
        for handle in self.spout_handles.drain(..) {
            if let Ok(result) = handle.join() {
                in_flight += result.in_flight as u64;
            }
        }
        if let Some(h) = self.completer_handle.take() {
            let _ = h.join();
        }
        // Stop the fleet.
        for slot in &shared.slots {
            let mut state = slot.state.lock().unwrap();
            if let Some(writer) = state.writer.as_mut() {
                let _ = writer.send(&Frame::Shutdown);
            }
        }
        for slot in &shared.slots {
            let mut state = slot.state.lock().unwrap();
            if let Some(mut child) = state.child.take() {
                // Give the worker a moment to exit cleanly, then force it.
                let deadline = Instant::now() + Duration::from_secs(2);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(5))
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            if let Some(writer) = state.writer.take() {
                let c = &shared.counters;
                c.bytes_out.fetch_add(writer.bytes_out, Ordering::Relaxed);
                c.frames_out.fetch_add(writer.frames_out, Ordering::Relaxed);
                writer.shutdown();
            }
            state.connected = false;
        }
        if let Some(h) = self.listener_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor_handle.take() {
            let _ = h.join();
        }
        let readers = std::mem::take(&mut *shared.reader_threads.lock().unwrap());
        for h in readers {
            let _ = h.join();
        }
        if let Some(server) = self.metrics_server.take() {
            server.shutdown();
        }

        // One merged trace: the coordinator's spout-emit/terminal spans
        // (stamped with its own pid; worker spans arrived pre-stamped and
        // clock-normalized in the reader threads).
        let (mut spans, own_dropped) = shared.tracer.snapshot();
        for s in &mut spans {
            s.pid = shared.coord_pid;
        }
        spans.extend(shared.worker_spans.lock().unwrap().drain(..));
        spans.sort_by(|a, b| {
            (a.trace_id, a.start_us, a.kind.is_terminal()).cmp(&(
                b.trace_id,
                b.start_us,
                b.kind.is_terminal(),
            ))
        });
        let spans_dropped = own_dropped + shared.worker_spans_dropped.load(Ordering::Relaxed);

        let c = &shared.counters;
        let latency = shared.latency.lock().unwrap();
        let final_snapshots = (0..shared.topology.task_count())
            .map(|task| {
                shared
                    .store
                    .load(task, u64::MAX)
                    .and_then(|restored| restored.base)
            })
            .collect();
        DistReport {
            uptime_s: shared.now_s(),
            spout_emitted: c.spout_emitted.load(Ordering::Relaxed),
            tracked: c.tracked.load(Ordering::Relaxed),
            acked: c.acked.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            permanently_failed: c.permanently_failed.load(Ordering::Relaxed),
            replays_scheduled: c.replays_scheduled.load(Ordering::Relaxed),
            replays_emitted: c.replays_emitted.load(Ordering::Relaxed),
            in_flight,
            avg_complete_latency_ms: latency.avg(),
            p99_complete_latency_ms: latency.p99(),
            credits: shared.ledger.totals(),
            checkpoints_taken: c.checkpoints_taken.load(Ordering::Relaxed),
            restores: c.restores.load(Ordering::Relaxed),
            snapshot_bytes: c.snapshot_bytes.load(Ordering::Relaxed),
            worker_pids: shared
                .slots
                .iter()
                .map(|s| s.state.lock().unwrap().pid)
                .collect(),
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            worker_disconnects: c.worker_disconnects.load(Ordering::Relaxed),
            bytes_sent: c.bytes_out.load(Ordering::Relaxed),
            bytes_received: c.bytes_in.load(Ordering::Relaxed),
            frames_sent: c.frames_out.load(Ordering::Relaxed),
            frames_received: c.frames_in.load(Ordering::Relaxed),
            journal: shared.journal.events(),
            spans,
            spans_dropped,
            coordinator_pid: shared.coord_pid,
            final_snapshots,
            drained_clean,
        }
    }
}

/// Final accounting of a distributed run; the cross-process counterpart
/// of the threaded runtime's `ThreadedReport`.
#[derive(Debug)]
pub struct DistReport {
    /// Wall-clock seconds from submit to shutdown.
    pub uptime_s: f64,
    /// Tuple emissions out of spouts (fresh, not counting replays).
    pub spout_emitted: u64,
    /// Distinct tracked messages (fresh spout message ids).
    pub tracked: u64,
    /// Messages fully acked.
    pub acked: u64,
    /// Tree-failure events (per tree, not per message).
    pub failed: u64,
    /// Tree-timeout events (per tree, not per message).
    pub timed_out: u64,
    /// Messages that exhausted their replay budget.
    pub permanently_failed: u64,
    /// Replays scheduled (backoff timers armed).
    pub replays_scheduled: u64,
    /// Replays re-emitted under fresh trees.
    pub replays_emitted: u64,
    /// Messages still in replay buffers at shutdown.
    pub in_flight: u64,
    /// Mean tree-completion latency, milliseconds.
    pub avg_complete_latency_ms: f64,
    /// p99 tree-completion latency, milliseconds (reservoir-sampled).
    pub p99_complete_latency_ms: f64,
    /// Flow-control ledger totals.
    pub credits: CreditTotals,
    /// Checkpoints deposited by workers.
    pub checkpoints_taken: u64,
    /// Successful state restores after reconnects.
    pub restores: u64,
    /// Total checkpoint payload bytes deposited.
    pub snapshot_bytes: u64,
    /// Last known OS pid per worker slot.
    pub worker_pids: Vec<u32>,
    /// Worker processes respawned by the supervisor.
    pub worker_restarts: u64,
    /// Worker connections lost (kill, crash, or socket error).
    pub worker_disconnects: u64,
    /// Payload bytes written to workers.
    pub bytes_sent: u64,
    /// Payload bytes read from workers.
    pub bytes_received: u64,
    /// Frames written to workers.
    pub frames_sent: u64,
    /// Frames read from workers.
    pub frames_received: u64,
    /// Control-plane event journal.
    pub journal: Vec<JournalEvent>,
    /// Merged sampled trace: coordinator spout-emit/terminal spans plus
    /// clock-normalized worker hop spans, ordered by `(trace_id,
    /// start_us)` and stamped with real pids and connection generations.
    pub spans: Vec<Span>,
    /// Spans rejected on ring-buffer overflow (coordinator + workers).
    pub spans_dropped: u64,
    /// The coordinator's OS pid (distinguishes its spans from worker
    /// spans in the merged trace).
    pub coordinator_pid: u32,
    /// Latest checkpointed snapshot per task at shutdown (`None` for
    /// stateless/spout tasks).
    pub final_snapshots: Vec<Option<StateSnapshot>>,
    /// Whether the shutdown drain reached a fully quiesced state within
    /// its budget.
    pub drained_clean: bool,
}

impl DistReport {
    /// The message-conservation identity:
    /// `tracked == acked + permanently_failed + in_flight`.
    pub fn conservation_holds(&self) -> bool {
        self.tracked == self.acked + self.permanently_failed + self.in_flight
    }

    /// The credit-conservation identity over the ledger.
    pub fn credit_conservation_holds(&self) -> bool {
        self.credits.conservation_holds()
    }

    /// Journal events of one kind.
    pub fn journal_of_kind(&self, kind: &str) -> Vec<&JournalEvent> {
        self.journal.iter().filter(|e| e.kind() == kind).collect()
    }

    /// Distinct sampled trace ids in the merged span log.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.spans.iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Chrome `trace_event` JSON of the merged trace, with process-name
    /// metadata records so the coordinator and each worker process land in
    /// separate named tracks in `chrome://tracing` / Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let mut names: Vec<(u64, String)> = Vec::new();
        for s in &self.spans {
            let pid = u64::from(s.pid);
            if pid == 0 || names.iter().any(|(p, _)| *p == pid) {
                continue;
            }
            let name = if s.pid == self.coordinator_pid {
                "coordinator".to_owned()
            } else {
                format!("worker {} (gen {})", s.worker, s.generation)
            };
            names.push((pid, name));
        }
        chrome_trace_json_named(&self.spans, &names)
    }
}
